//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the narrow API subset it actually uses: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range`, and `gen_bool`. The generator is SplitMix64 —
//! deterministic and statistically fine for synthetic workloads, not
//! cryptographic.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(1024u16..65535);
            assert!((1024..65535).contains(&v));
            let n = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
