//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the criterion API its benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `sample_size`,
//! and the `criterion_group!` / `criterion_main!` macros. Timing is a
//! simple wall-clock median over a fixed number of samples — adequate for
//! the relative comparisons the benches make, without criterion's
//! statistical machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A named benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id.into());
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times a closure over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    median_ns: Option<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            median_ns: None,
        }
    }

    /// Measures `f`, recording the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size the batch to ~1ms per sample.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(per_iter[per_iter.len() / 2]);
    }

    fn report(&self, group: &str, id: &str) {
        match self.median_ns {
            Some(ns) if ns >= 1_000_000.0 => {
                println!("{group}/{id}: {:.3} ms/iter", ns / 1_000_000.0)
            }
            Some(ns) if ns >= 1_000.0 => println!("{group}/{id}: {:.3} µs/iter", ns / 1_000.0),
            Some(ns) => println!("{group}/{id}: {ns:.1} ns/iter"),
            None => println!("{group}/{id}: no measurement"),
        }
    }
}

/// An identity function opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
