//! Test-case configuration, errors, and the deterministic RNG.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed.
    Fail(String),
    /// The case was rejected by `prop_assume!`.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from an arbitrary label (e.g. the test name), so
    /// different tests see different but reproducible streams.
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
