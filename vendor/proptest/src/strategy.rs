//! Value-generation strategies and the combinator macros.

use crate::test_runner::TestRng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy: 'static {
    /// The generated type.
    type Value: Clone + fmt::Debug + 'static;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + fmt::Debug + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// strictly smaller instances. `depth` bounds the nesting; the other
    /// two size hints are accepted for API compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            // Mix the leaf back in at every level so generated depths
            // vary instead of always reaching the bound.
            cur = Union::new_weighted(vec![(1, leaf.clone()), (3, recurse(cur).boxed())]).boxed();
        }
        cur
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Clone + fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + fmt::Debug + 'static,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A weighted choice between strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Clone + fmt::Debug + 'static> Union<T> {
    /// An equally weighted union.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// A union choosing each arm proportionally to its weight.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T: Clone + fmt::Debug + 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < u64::from(*w) {
                return arm.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// String strategies from a small regex subset: a single character class
/// (`[a-z ]`, with ranges and literals, or `\PC` for printable ASCII)
/// followed by a `{min,max}` repetition. Anything else generates the
/// pattern text literally.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, rest) = match parse_class(self) {
            Some(parsed) => parsed,
            None => return (*self).to_string(),
        };
        let (lo, hi) = parse_repeat(rest).unwrap_or((1, 1));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

fn parse_class(pat: &str) -> Option<(Vec<char>, &str)> {
    if let Some(rest) = pat.strip_prefix("\\PC") {
        return Some(((' '..='~').collect(), rest));
    }
    let body = pat.strip_prefix('[')?;
    let close = body.find(']')?;
    let mut chars = Vec::new();
    let items: Vec<char> = body[..close].chars().collect();
    let mut i = 0;
    while i < items.len() {
        if i + 2 < items.len() && items[i + 1] == '-' {
            let (a, b) = (items[i], items[i + 2]);
            chars.extend(a..=b);
            i += 3;
        } else {
            chars.push(items[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, &body[close + 1..]))
}

fn parse_repeat(rest: &str) -> Option<(usize, usize)> {
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    (lo <= hi).then_some((lo, hi))
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Clone + fmt::Debug + Sized + 'static {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Chooses uniformly (or per `weight => arm`) between strategies of the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        let _ = $body;
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
