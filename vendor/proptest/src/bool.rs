//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy type behind [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// A uniform boolean strategy.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
