//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API subset its property tests use: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_recursive` / `boxed`, strategies for
//! integer ranges, tuples, [`strategy::Just`], vectors
//! ([`collection::vec`]), booleans ([`bool::ANY`]), `any::<T>()`, a tiny
//! character-class subset of the string-regex strategies, and the
//! [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are reported but **not shrunk**, and no regression files are
//! read or written (`*.proptest-regressions` files in the tree are
//! ignored). Generation is deterministic per test name, so failures
//! reproduce across runs.

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("compose");
        let s = (0i64..10, 5u8..6).prop_map(|(a, b)| a + i64::from(b));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_runner::TestRng::deterministic("arms");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        let mut rng = crate::test_runner::TestRng::deterministic("rec");
        let leaf = (0i64..10).prop_map(|n| n.to_string()).boxed();
        let s = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty());
        }
    }

    #[test]
    fn string_classes_generate_members() {
        let mut rng = crate::test_runner::TestRng::deterministic("str");
        for _ in 0..100 {
            let v = "[a-z ]{0,6}".generate(&mut rng);
            assert!(v.len() <= 6);
            assert!(v.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            let p = "\\PC{0,10}".generate(&mut rng);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn collection_vec_respects_length_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("vec");
        let s = crate::collection::vec(0i64..5, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_binds_and_loops(a in 0i64..50, b in 0i64..50) {
            prop_assume!(a != 49);
            prop_assert!(a + b >= a);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
