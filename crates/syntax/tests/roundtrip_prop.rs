//! Property: pretty-printing a surface AST and re-parsing yields the same
//! AST (modulo spans) — checked by comparing pretty-printed forms, which
//! are injective on the generated fragment.

use mlbox_syntax::ast::{BinOp, Expr, ExprS, Pat, PatS};
use mlbox_syntax::parser::parse_expr;
use mlbox_syntax::pretty::pretty_expr;
use mlbox_syntax::span::{Span, Spanned};
use proptest::prelude::*;

fn sp<T>(node: T) -> Spanned<T> {
    Spanned::new(node, Span::SYNTH)
}

fn var_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("x".to_string()),
        Just("y".to_string()),
        Just("zed".to_string()),
        Just("a'".to_string()),
    ]
}

fn pat_strategy() -> impl Strategy<Value = PatS> {
    prop_oneof![
        var_name().prop_map(|v| sp(Pat::Var(v))),
        Just(sp(Pat::Wild)),
        Just(sp(Pat::Unit)),
        (var_name(), var_name())
            .prop_map(|(a, b)| sp(Pat::Tuple(vec![sp(Pat::Var(a)), sp(Pat::Var(b))]))),
    ]
}

fn expr_strategy() -> impl Strategy<Value = ExprS> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(|n| sp(Expr::Int(n as i64))),
        proptest::bool::ANY.prop_map(|b| sp(Expr::Bool(b))),
        Just(sp(Expr::Unit)),
        var_name().prop_map(|v| sp(Expr::Var(v))),
        "[a-z ]{0,6}".prop_map(|s| sp(Expr::Str(s))),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        let op = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Mul),
            Just(BinOp::Eq),
            Just(BinOp::Lt),
            Just(BinOp::Concat),
        ];
        prop_oneof![
            (op, inner.clone(), inner.clone()).prop_map(|(o, a, b)| sp(Expr::BinOp(
                o,
                Box::new(a),
                Box::new(b)
            ))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| sp(Expr::App(Box::new(a), Box::new(b)))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| sp(Expr::If(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            ))),
            (pat_strategy(), inner.clone()).prop_map(|(p, b)| sp(Expr::Fn(p, Box::new(b)))),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(|v| sp(Expr::Tuple(v))),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(|v| sp(Expr::List(v))),
            (inner.clone(), inner.clone())
                .prop_map(|(h, t)| sp(Expr::Cons(Box::new(h), Box::new(t)))),
            inner.clone().prop_map(|e| sp(Expr::Code(Box::new(e)))),
            inner.clone().prop_map(|e| sp(Expr::Lift(Box::new(e)))),
            inner.clone().prop_map(|e| sp(Expr::Neg(Box::new(e)))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| sp(Expr::Andalso(Box::new(a), Box::new(b)))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_parse_round_trip(e in expr_strategy()) {
        let printed = pretty_expr(&e.node);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|d| panic!("reparse failed on {printed:?}: {d}"));
        prop_assert_eq!(pretty_expr(&reparsed.node), printed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(src in "\\PC{0,60}") {
        // Errors are fine; panics are not.
        let _ = parse_expr(&src);
        let _ = mlbox_syntax::parser::parse_program(&src);
    }

    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("fn"), Just("=>"), Just("let"), Just("in"), Just("end"),
                Just("code"), Just("lift"), Just("cogen"), Just("("), Just(")"),
                Just("["), Just("]"), Just("::"), Just("+"), Just("*"),
                Just("case"), Just("of"), Just("|"), Just("val"), Just("="),
                Just("x"), Just("1"), Just("while"), Just("do"), Just("~"),
                Just("$"), Just(":"), Just("rec"), Just("fun"), Just("and"),
            ],
            0..25
        )
    ) {
        let src = tokens.join(" ");
        let _ = mlbox_syntax::parser::parse_program(&src);
    }
}
