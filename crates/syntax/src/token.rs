//! Token kinds for the MLbox lexer.

use std::fmt;

/// A lexical token kind.
///
/// Identifier and literal payloads are stored out-of-band (the lexer
/// produces [`crate::lexer::Token`] values carrying the source span, from
/// which text is recovered); integer and string literals carry their decoded
/// values directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // ---- literals and names ----
    /// An integer literal (decoded; SML `~` negation is applied by the parser).
    Int(i64),
    /// A string literal with escapes decoded.
    Str(String),
    /// An alphanumeric identifier (may denote a variable, constructor, or
    /// type name depending on context).
    Ident(String),
    /// A type variable such as `'a`.
    TyVar(String),

    // ---- keywords ----
    /// `val`
    Val,
    /// `fun`
    Fun,
    /// `and`
    And,
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `in`
    In,
    /// `end`
    End,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `case`
    Case,
    /// `of`
    Of,
    /// `datatype`
    Datatype,
    /// `type`
    Type,
    /// `andalso`
    Andalso,
    /// `orelse`
    Orelse,
    /// `true`
    True,
    /// `false`
    False,
    /// `code` — introduces a code generator (modal □ introduction).
    Code,
    /// `lift` — residualizes a value into a generator.
    Lift,
    /// `cogen` — `let cogen u = M in N end` binds a code variable.
    Cogen,
    /// `while`
    While,
    /// `do`
    Do,
    /// `rec`
    Rec,

    // ---- punctuation and operators ----
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `=>`
    DArrow,
    /// `->`
    Arrow,
    /// `|`
    Bar,
    /// `_`
    Underscore,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `^` (string concatenation)
    Caret,
    /// `::` (list cons)
    ColonColon,
    /// `:` (type ascription)
    Colon,
    /// `$` (postfix □ type operator)
    Dollar,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<>`
    Ne,
    /// `:=` (reference assignment)
    Assign,
    /// `!` (reference dereference)
    Bang,
    /// `~` (unary negation)
    Tilde,
    /// `div`
    Div,
    /// `mod`
    Mod,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        Some(match s {
            "val" => TokenKind::Val,
            "fun" => TokenKind::Fun,
            "and" => TokenKind::And,
            "fn" => TokenKind::Fn,
            "let" => TokenKind::Let,
            "in" => TokenKind::In,
            "end" => TokenKind::End,
            "if" => TokenKind::If,
            "then" => TokenKind::Then,
            "else" => TokenKind::Else,
            "case" => TokenKind::Case,
            "of" => TokenKind::Of,
            "datatype" => TokenKind::Datatype,
            "type" => TokenKind::Type,
            "andalso" => TokenKind::Andalso,
            "orelse" => TokenKind::Orelse,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "code" => TokenKind::Code,
            "lift" => TokenKind::Lift,
            "cogen" => TokenKind::Cogen,
            "while" => TokenKind::While,
            "do" => TokenKind::Do,
            "rec" => TokenKind::Rec,
            "div" => TokenKind::Div,
            "mod" => TokenKind::Mod,
            _ => return None,
        })
    }

    /// Human-readable description used in parse-error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(n) => format!("integer literal `{n}`"),
            TokenKind::Str(s) => format!("string literal {s:?}"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::TyVar(s) => format!("type variable `'{s}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{other}`"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Int(n) => return write!(f, "{n}"),
            TokenKind::Str(s) => return write!(f, "{s:?}"),
            TokenKind::Ident(s) => return f.write_str(s),
            TokenKind::TyVar(s) => return write!(f, "'{s}"),
            TokenKind::Val => "val",
            TokenKind::Fun => "fun",
            TokenKind::And => "and",
            TokenKind::Fn => "fn",
            TokenKind::Let => "let",
            TokenKind::In => "in",
            TokenKind::End => "end",
            TokenKind::If => "if",
            TokenKind::Then => "then",
            TokenKind::Else => "else",
            TokenKind::Case => "case",
            TokenKind::Of => "of",
            TokenKind::Datatype => "datatype",
            TokenKind::Type => "type",
            TokenKind::Andalso => "andalso",
            TokenKind::Orelse => "orelse",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::Code => "code",
            TokenKind::Lift => "lift",
            TokenKind::Cogen => "cogen",
            TokenKind::While => "while",
            TokenKind::Do => "do",
            TokenKind::Rec => "rec",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Eq => "=",
            TokenKind::DArrow => "=>",
            TokenKind::Arrow => "->",
            TokenKind::Bar => "|",
            TokenKind::Underscore => "_",
            TokenKind::Star => "*",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Caret => "^",
            TokenKind::ColonColon => "::",
            TokenKind::Colon => ":",
            TokenKind::Dollar => "$",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::Ne => "<>",
            TokenKind::Assign => ":=",
            TokenKind::Bang => "!",
            TokenKind::Tilde => "~",
            TokenKind::Div => "div",
            TokenKind::Mod => "mod",
            TokenKind::Eof => "<eof>",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("cogen"), Some(TokenKind::Cogen));
        assert_eq!(TokenKind::keyword("code"), Some(TokenKind::Code));
        assert_eq!(TokenKind::keyword("lift"), Some(TokenKind::Lift));
        assert_eq!(TokenKind::keyword("polyl"), None);
    }

    #[test]
    fn display_round_trips_punctuation() {
        assert_eq!(TokenKind::DArrow.to_string(), "=>");
        assert_eq!(TokenKind::ColonColon.to_string(), "::");
        assert_eq!(TokenKind::Dollar.to_string(), "$");
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(TokenKind::Int(7).describe(), "integer literal `7`");
        assert!(TokenKind::Eof.describe().contains("end of input"));
    }
}
