//! Lexer, parser, surface AST, and pretty-printer for **MLbox** — the
//! SML-like language with modal staging operators from *Run-time Code
//! Generation and Modal-ML* (Wickline, Lee, Pfenning; PLDI 1998).
//!
//! The concrete syntax is core SML (no modules) extended with:
//!
//! - `code e` — introduce a generator for code of `e` (the paper's `code`),
//! - `lift e` — evaluate `e` now and build a generator that quotes it,
//! - `let cogen u = e in ... end` — bind a *code variable* `u`,
//! - the postfix type operator `$` — the modal type `□A` of code generators.
//!
//! # Examples
//!
//! ```
//! use mlbox_syntax::parser::parse_expr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let e = parse_expr("let cogen f = compPoly p in code (fn x => f x) end")?;
//! let printed = mlbox_syntax::pretty::pretty_expr(&e.node);
//! assert!(printed.contains("cogen"));
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::{Decl, Expr, Pat, Program, Ty};
pub use diag::{Diagnostic, Phase};
pub use parser::{parse_expr, parse_program, parse_ty};
pub use span::{Span, Spanned};
