//! Surface abstract syntax for MLbox: core SML (no modules) extended with
//! the modal staging constructs `code`, `lift`, and `let cogen`.

use crate::span::{Span, Spanned};

/// A spanned expression.
pub type ExprS = Spanned<Expr>;
/// A spanned pattern.
pub type PatS = Spanned<Pat>;
/// A spanned declaration.
pub type DeclS = Spanned<Decl>;
/// A spanned type expression.
pub type TyS = Spanned<Ty>;

/// A complete program: a sequence of top-level declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level declarations, in source order.
    pub decls: Vec<DeclS>,
}

/// Surface type expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Ty {
    /// A type variable, e.g. `'a`.
    Var(String),
    /// A (possibly applied) type constructor, e.g. `int`, `int list`,
    /// `(int, bool) table`. Arguments precede the constructor in the
    /// concrete syntax.
    Con(String, Vec<TyS>),
    /// Function type `A -> B`.
    Arrow(Box<TyS>, Box<TyS>),
    /// Tuple type `A * B * C` (n >= 2).
    Tuple(Vec<TyS>),
    /// The modal type `A $` (the paper's `□A`): generators for code of
    /// type `A`.
    Box(Box<TyS>),
}

/// Surface patterns.
#[derive(Debug, Clone, PartialEq)]
pub enum Pat {
    /// Wildcard `_`.
    Wild,
    /// A lowercase identifier; resolved to a variable binding or a nullary
    /// datatype constructor during elaboration.
    Var(String),
    /// Integer literal pattern.
    Int(i64),
    /// String literal pattern.
    Str(String),
    /// Boolean literal pattern.
    Bool(bool),
    /// Unit pattern `()`.
    Unit,
    /// Tuple pattern `(p1, ..., pn)` with n >= 2.
    Tuple(Vec<PatS>),
    /// List pattern `[p1, ..., pn]`.
    List(Vec<PatS>),
    /// Cons pattern `p :: q`.
    Cons(Box<PatS>, Box<PatS>),
    /// Constructor application pattern `C p`.
    Con(String, Box<PatS>),
    /// Type-ascribed pattern `p : ty`.
    Ascribe(Box<PatS>, TyS),
}

/// Primitive binary operators (resolved during parsing from infix syntax).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition `+`.
    Add,
    /// Integer subtraction `-`.
    Sub,
    /// Integer multiplication `*`.
    Mul,
    /// Integer division `div`.
    Div,
    /// Integer remainder `mod`.
    Mod,
    /// Polymorphic-by-shape equality `=` (ints, bools, strings, unit).
    Eq,
    /// Inequality `<>`.
    Ne,
    /// Less-than `<`.
    Lt,
    /// Less-or-equal `<=`.
    Le,
    /// Greater-than `>`.
    Gt,
    /// Greater-or-equal `>=`.
    Ge,
    /// String concatenation `^`.
    Concat,
    /// Reference assignment `:=`.
    Assign,
}

impl BinOp {
    /// The operator's concrete syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Concat => "^",
            BinOp::Assign => ":=",
        }
    }
}

/// Surface expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Unit `()`.
    Unit,
    /// Identifier; resolved to a value variable, code variable, constructor,
    /// or builtin during elaboration.
    Var(String),
    /// Tuple `(e1, ..., en)` with n >= 2.
    Tuple(Vec<ExprS>),
    /// List literal `[e1, ..., en]`.
    List(Vec<ExprS>),
    /// Cons `e :: f`.
    Cons(Box<ExprS>, Box<ExprS>),
    /// Application `f x`.
    App(Box<ExprS>, Box<ExprS>),
    /// Primitive binary operator.
    BinOp(BinOp, Box<ExprS>, Box<ExprS>),
    /// Unary negation `~e`.
    Neg(Box<ExprS>),
    /// Dereference `!e`.
    Deref(Box<ExprS>),
    /// Short-circuit conjunction `e andalso f`.
    Andalso(Box<ExprS>, Box<ExprS>),
    /// Short-circuit disjunction `e orelse f`.
    Orelse(Box<ExprS>, Box<ExprS>),
    /// Anonymous function `fn p => e`.
    Fn(PatS, Box<ExprS>),
    /// Conditional `if c then t else e`.
    If(Box<ExprS>, Box<ExprS>, Box<ExprS>),
    /// Loop `while c do e` (unit-valued).
    While(Box<ExprS>, Box<ExprS>),
    /// Case analysis `case e of p1 => e1 | ...`.
    Case(Box<ExprS>, Vec<(PatS, ExprS)>),
    /// `let decls in e1; ...; en end` (the body sequence evaluates left to
    /// right, yielding the final expression).
    Let(Vec<DeclS>, Vec<ExprS>),
    /// Parenthesized sequence `(e1; ...; en)`.
    Seq(Vec<ExprS>),
    /// The modal introduction `code e`: a generator for code of `e`.
    Code(Box<ExprS>),
    /// `lift e`: evaluate `e` now, produce a generator that quotes the value.
    Lift(Box<ExprS>),
    /// Type ascription `e : ty`.
    Ascribe(Box<ExprS>, TyS),
}

/// One clause of a clausal `fun` definition:
/// `fun f p1 ... pn = rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// Curried argument patterns (at least one).
    pub params: Vec<PatS>,
    /// Right-hand side.
    pub rhs: ExprS,
}

/// One function in a (possibly mutually recursive) `fun ... and ...` group.
#[derive(Debug, Clone, PartialEq)]
pub struct FunBind {
    /// Function name.
    pub name: String,
    /// Name's source span.
    pub name_span: Span,
    /// Clauses, all with the same arity.
    pub clauses: Vec<Clause>,
}

/// A datatype constructor declaration: name and optional argument type.
#[derive(Debug, Clone, PartialEq)]
pub struct ConBind {
    /// Constructor name.
    pub name: String,
    /// Argument type, if the constructor carries a payload.
    pub arg: Option<TyS>,
}

/// Declarations (top level or within `let`).
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `val p = e`.
    Val(PatS, ExprS),
    /// `fun f ... and g ...` — a mutually recursive group.
    Fun(Vec<FunBind>),
    /// `cogen u = e` — binds the code variable `u` to the generator `e`
    /// (usable inside `let ... in ... end` and at top level).
    Cogen(String, ExprS),
    /// `datatype ('a, ...) t = C1 of ty | C2 | ...`.
    Datatype {
        /// Bound type variables.
        tyvars: Vec<String>,
        /// Datatype name.
        name: String,
        /// Constructors.
        cons: Vec<ConBind>,
    },
    /// `type ('a, ...) t = ty` — a transparent abbreviation.
    TypeAbbrev {
        /// Bound type variables.
        tyvars: Vec<String>,
        /// Abbreviation name.
        name: String,
        /// Expansion.
        body: TyS,
    },
    /// A bare top-level expression (evaluated for its result; the driver
    /// reports the value of the last one). Written `e;` at top level.
    Expr(ExprS),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_symbols() {
        assert_eq!(BinOp::Add.symbol(), "+");
        assert_eq!(BinOp::Assign.symbol(), ":=");
        assert_eq!(BinOp::Div.symbol(), "div");
    }

    #[test]
    fn program_default_is_empty() {
        assert!(Program::default().decls.is_empty());
    }
}
