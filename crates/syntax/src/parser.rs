//! Recursive-descent parser for the MLbox concrete syntax.
//!
//! The grammar is the core-SML subset described in DESIGN.md §3.4 plus the
//! modal constructs. Operator precedence follows SML: `orelse` < `andalso`
//! < `:=` < comparisons < `::` (right) < `+ - ^` < `* div mod` <
//! application < atomic. `fn`, `if`, `case`, `code`, and `lift` parse at
//! the outermost expression level and extend as far right as possible.

use crate::ast::*;
use crate::diag::{Diagnostic, Phase};
use crate::lexer::{lex, Token};
use crate::span::{Span, Spanned};
use crate::token::TokenKind;

/// Parses a complete program (a sequence of declarations).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_program(src: &str) -> Result<Program, Diagnostic> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let mut decls = Vec::new();
    while !p.at(&TokenKind::Eof) {
        decls.push(p.decl(true)?);
        // Optional separating/terminating semicolons between top-level decls.
        while p.eat(&TokenKind::Semi) {}
    }
    Ok(Program { decls })
}

/// Parses a single expression (the whole input must be one expression,
/// optionally followed by semicolons).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_expr(src: &str) -> Result<ExprS, Diagnostic> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    while p.eat(&TokenKind::Semi) {}
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

/// Parses a single type expression.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_ty(src: &str) -> Result<TyS, Diagnostic> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let t = p.ty()?;
    p.expect(TokenKind::Eof)?;
    Ok(t)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, Diagnostic> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Phase::Parse, msg, self.span())
    }

    fn ident(&mut self) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let sp = self.span();
                self.bump();
                Ok((name, sp))
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    // ---------------- declarations ----------------

    fn decl(&mut self, top_level: bool) -> Result<DeclS, Diagnostic> {
        let start = self.span();
        match self.peek() {
            TokenKind::Val => {
                self.bump();
                if self.eat(&TokenKind::Rec) {
                    // `val rec f = fn p => e` — sugar for a single-function
                    // recursive group.
                    let (name, name_span) = self.ident()?;
                    self.expect(TokenKind::Eq)?;
                    let rhs = self.expr()?;
                    let Expr::Fn(param, body) = rhs.node else {
                        return Err(Diagnostic::new(
                            Phase::Parse,
                            "the right-hand side of `val rec` must be an fn-expression",
                            rhs.span,
                        ));
                    };
                    let span = start.merge(body.span);
                    return Ok(Spanned::new(
                        Decl::Fun(vec![FunBind {
                            name,
                            name_span,
                            clauses: vec![Clause {
                                params: vec![param],
                                rhs: *body,
                            }],
                        }]),
                        span,
                    ));
                }
                let pat = self.pat()?;
                self.expect(TokenKind::Eq)?;
                let rhs = self.expr()?;
                let span = start.merge(rhs.span);
                Ok(Spanned::new(Decl::Val(pat, rhs), span))
            }
            TokenKind::Fun => {
                self.bump();
                let mut binds = vec![self.fun_bind()?];
                while self.eat(&TokenKind::And) {
                    binds.push(self.fun_bind()?);
                }
                let span = start.merge(self.prev_span());
                Ok(Spanned::new(Decl::Fun(binds), span))
            }
            TokenKind::Cogen => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(TokenKind::Eq)?;
                let rhs = self.expr()?;
                let span = start.merge(rhs.span);
                Ok(Spanned::new(Decl::Cogen(name, rhs), span))
            }
            TokenKind::Datatype => {
                self.bump();
                let tyvars = self.tyvar_seq()?;
                let (name, _) = self.ident()?;
                self.expect(TokenKind::Eq)?;
                let mut cons = vec![self.con_bind()?];
                while self.eat(&TokenKind::Bar) {
                    cons.push(self.con_bind()?);
                }
                let span = start.merge(self.prev_span());
                Ok(Spanned::new(Decl::Datatype { tyvars, name, cons }, span))
            }
            TokenKind::Type => {
                self.bump();
                let tyvars = self.tyvar_seq()?;
                let (name, _) = self.ident()?;
                self.expect(TokenKind::Eq)?;
                let body = self.ty()?;
                let span = start.merge(body.span);
                Ok(Spanned::new(Decl::TypeAbbrev { tyvars, name, body }, span))
            }
            _ if top_level => {
                let e = self.expr()?;
                let span = e.span;
                Ok(Spanned::new(Decl::Expr(e), span))
            }
            other => Err(self.err(format!("expected declaration, found {}", other.describe()))),
        }
    }

    /// Parses `('a, 'b)` / `'a` / nothing before a type-constructor name.
    fn tyvar_seq(&mut self) -> Result<Vec<String>, Diagnostic> {
        match self.peek().clone() {
            TokenKind::TyVar(v) => {
                self.bump();
                Ok(vec![v])
            }
            TokenKind::LParen if matches!(self.peek2(), TokenKind::TyVar(_)) => {
                self.bump();
                let mut vars = Vec::new();
                loop {
                    match self.peek().clone() {
                        TokenKind::TyVar(v) => {
                            self.bump();
                            vars.push(v);
                        }
                        other => {
                            return Err(self.err(format!(
                                "expected type variable, found {}",
                                other.describe()
                            )))
                        }
                    }
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
                Ok(vars)
            }
            _ => Ok(Vec::new()),
        }
    }

    fn con_bind(&mut self) -> Result<ConBind, Diagnostic> {
        let (name, _) = self.ident()?;
        let arg = if self.eat(&TokenKind::Of) {
            Some(self.ty()?)
        } else {
            None
        };
        Ok(ConBind { name, arg })
    }

    fn fun_bind(&mut self) -> Result<FunBind, Diagnostic> {
        let (name, name_span) = self.ident()?;
        let mut clauses = vec![self.fun_clause()?];
        // Further clauses: `| name pats = rhs`.
        while self.at(&TokenKind::Bar) {
            // Only continue if the token after `|` repeats the function name;
            // otherwise the bar belongs to an enclosing `case`.
            if let TokenKind::Ident(next) = self.peek2() {
                if *next != name {
                    break;
                }
            } else {
                break;
            }
            self.bump(); // `|`
            let (_, _) = self.ident()?;
            clauses.push(self.fun_clause()?);
        }
        let arity = clauses[0].params.len();
        if clauses.iter().any(|c| c.params.len() != arity) {
            return Err(Diagnostic::new(
                Phase::Parse,
                format!("clauses of `{name}` have inconsistent numbers of arguments"),
                name_span,
            ));
        }
        Ok(FunBind {
            name,
            name_span,
            clauses,
        })
    }

    fn fun_clause(&mut self) -> Result<Clause, Diagnostic> {
        let mut params = vec![self.atpat()?];
        while self.starts_atpat() {
            params.push(self.atpat()?);
        }
        self.expect(TokenKind::Eq)?;
        let rhs = self.expr()?;
        Ok(Clause { params, rhs })
    }

    // ---------------- patterns ----------------

    fn pat(&mut self) -> Result<PatS, Diagnostic> {
        let p = self.cons_pat()?;
        if self.eat(&TokenKind::Colon) {
            let ty = self.ty()?;
            let span = p.span.merge(ty.span);
            Ok(Spanned::new(Pat::Ascribe(Box::new(p), ty), span))
        } else {
            Ok(p)
        }
    }

    fn cons_pat(&mut self) -> Result<PatS, Diagnostic> {
        // cons is right-associative: p :: q :: r = p :: (q :: r)
        let head = self.app_pat()?;
        if self.eat(&TokenKind::ColonColon) {
            let tail = self.cons_pat()?;
            let span = head.span.merge(tail.span);
            Ok(Spanned::new(
                Pat::Cons(Box::new(head), Box::new(tail)),
                span,
            ))
        } else {
            Ok(head)
        }
    }

    fn app_pat(&mut self) -> Result<PatS, Diagnostic> {
        // `C p` — a constructor applied to an atomic pattern.
        if let TokenKind::Ident(name) = self.peek().clone() {
            let sp = self.span();
            // Lookahead: identifier followed by an atomic pattern start.
            let save = self.pos;
            self.bump();
            if self.starts_atpat() {
                let arg = self.atpat()?;
                let span = sp.merge(arg.span);
                return Ok(Spanned::new(Pat::Con(name, Box::new(arg)), span));
            }
            self.pos = save;
        }
        self.atpat()
    }

    fn starts_atpat(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Underscore
                | TokenKind::Ident(_)
                | TokenKind::Int(_)
                | TokenKind::Str(_)
                | TokenKind::True
                | TokenKind::False
                | TokenKind::LParen
                | TokenKind::LBracket
        )
    }

    fn atpat(&mut self) -> Result<PatS, Diagnostic> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Underscore => {
                self.bump();
                Ok(Spanned::new(Pat::Wild, start))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Spanned::new(Pat::Var(name), start))
            }
            TokenKind::Int(n) => {
                self.bump();
                Ok(Spanned::new(Pat::Int(n), start))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Spanned::new(Pat::Str(s), start))
            }
            TokenKind::True => {
                self.bump();
                Ok(Spanned::new(Pat::Bool(true), start))
            }
            TokenKind::False => {
                self.bump();
                Ok(Spanned::new(Pat::Bool(false), start))
            }
            TokenKind::LParen => {
                self.bump();
                if self.at(&TokenKind::RParen) {
                    self.bump();
                    return Ok(Spanned::new(Pat::Unit, start.merge(self.prev_span())));
                }
                let mut pats = vec![self.pat()?];
                while self.eat(&TokenKind::Comma) {
                    pats.push(self.pat()?);
                }
                self.expect(TokenKind::RParen)?;
                let span = start.merge(self.prev_span());
                if pats.len() == 1 {
                    let mut only = pats.pop().expect("one element");
                    only.span = span;
                    Ok(only)
                } else {
                    Ok(Spanned::new(Pat::Tuple(pats), span))
                }
            }
            TokenKind::LBracket => {
                self.bump();
                let mut pats = Vec::new();
                if !self.at(&TokenKind::RBracket) {
                    pats.push(self.pat()?);
                    while self.eat(&TokenKind::Comma) {
                        pats.push(self.pat()?);
                    }
                }
                self.expect(TokenKind::RBracket)?;
                Ok(Spanned::new(Pat::List(pats), start.merge(self.prev_span())))
            }
            other => Err(self.err(format!("expected pattern, found {}", other.describe()))),
        }
    }

    // ---------------- types ----------------

    fn ty(&mut self) -> Result<TyS, Diagnostic> {
        let lhs = self.ty_tuple()?;
        if self.eat(&TokenKind::Arrow) {
            let rhs = self.ty()?;
            let span = lhs.span.merge(rhs.span);
            Ok(Spanned::new(Ty::Arrow(Box::new(lhs), Box::new(rhs)), span))
        } else {
            Ok(lhs)
        }
    }

    fn ty_tuple(&mut self) -> Result<TyS, Diagnostic> {
        let first = self.ty_postfix()?;
        if !self.at(&TokenKind::Star) {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat(&TokenKind::Star) {
            parts.push(self.ty_postfix()?);
        }
        let span = parts[0].span.merge(parts[parts.len() - 1].span);
        Ok(Spanned::new(Ty::Tuple(parts), span))
    }

    fn ty_postfix(&mut self) -> Result<TyS, Diagnostic> {
        let mut t = self.ty_atom()?;
        loop {
            match self.peek().clone() {
                TokenKind::Ident(name) => {
                    self.bump();
                    let span = t.span.merge(self.prev_span());
                    t = Spanned::new(Ty::Con(name, vec![t]), span);
                }
                TokenKind::Dollar => {
                    self.bump();
                    let span = t.span.merge(self.prev_span());
                    t = Spanned::new(Ty::Box(Box::new(t)), span);
                }
                _ => return Ok(t),
            }
        }
    }

    fn ty_atom(&mut self) -> Result<TyS, Diagnostic> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::TyVar(v) => {
                self.bump();
                Ok(Spanned::new(Ty::Var(v), start))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Spanned::new(Ty::Con(name, Vec::new()), start))
            }
            TokenKind::LParen => {
                self.bump();
                let mut tys = vec![self.ty()?];
                while self.eat(&TokenKind::Comma) {
                    tys.push(self.ty()?);
                }
                self.expect(TokenKind::RParen)?;
                let span = start.merge(self.prev_span());
                if tys.len() == 1 {
                    let mut only = tys.pop().expect("one element");
                    only.span = span;
                    Ok(only)
                } else {
                    // `(t1, t2) name` — multi-argument constructor application.
                    let (name, _) = self.ident().map_err(|_| {
                        Diagnostic::new(
                            Phase::Parse,
                            "expected type constructor after parenthesized type arguments",
                            span,
                        )
                    })?;
                    let span = span.merge(self.prev_span());
                    Ok(Spanned::new(Ty::Con(name, tys), span))
                }
            }
            other => Err(self.err(format!("expected type, found {}", other.describe()))),
        }
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<ExprS, Diagnostic> {
        let start = self.span();
        let e = match self.peek() {
            TokenKind::Fn => {
                self.bump();
                let pat = self.atpat()?;
                self.expect(TokenKind::DArrow)?;
                let body = self.expr()?;
                let span = start.merge(body.span);
                return Ok(Spanned::new(Expr::Fn(pat, Box::new(body)), span));
            }
            TokenKind::If => {
                self.bump();
                let c = self.expr()?;
                self.expect(TokenKind::Then)?;
                let t = self.expr()?;
                self.expect(TokenKind::Else)?;
                let e = self.expr()?;
                let span = start.merge(e.span);
                return Ok(Spanned::new(
                    Expr::If(Box::new(c), Box::new(t), Box::new(e)),
                    span,
                ));
            }
            TokenKind::While => {
                self.bump();
                let c = self.expr()?;
                self.expect(TokenKind::Do)?;
                let body = self.expr()?;
                let span = start.merge(body.span);
                return Ok(Spanned::new(Expr::While(Box::new(c), Box::new(body)), span));
            }
            TokenKind::Case => {
                self.bump();
                let scrut = self.expr()?;
                self.expect(TokenKind::Of)?;
                let mut arms = vec![self.case_arm()?];
                while self.eat(&TokenKind::Bar) {
                    arms.push(self.case_arm()?);
                }
                let span = start.merge(self.prev_span());
                return Ok(Spanned::new(Expr::Case(Box::new(scrut), arms), span));
            }
            TokenKind::Code => {
                self.bump();
                let body = self.expr()?;
                let span = start.merge(body.span);
                return Ok(Spanned::new(Expr::Code(Box::new(body)), span));
            }
            TokenKind::Lift => {
                self.bump();
                let body = self.expr()?;
                let span = start.merge(body.span);
                return Ok(Spanned::new(Expr::Lift(Box::new(body)), span));
            }
            _ => self.expr_ascribe()?,
        };
        Ok(e)
    }

    fn case_arm(&mut self) -> Result<(PatS, ExprS), Diagnostic> {
        let pat = self.pat()?;
        self.expect(TokenKind::DArrow)?;
        let rhs = self.expr()?;
        Ok((pat, rhs))
    }

    fn expr_ascribe(&mut self) -> Result<ExprS, Diagnostic> {
        let e = self.expr_orelse()?;
        if self.eat(&TokenKind::Colon) {
            let ty = self.ty()?;
            let span = e.span.merge(ty.span);
            Ok(Spanned::new(Expr::Ascribe(Box::new(e), ty), span))
        } else {
            Ok(e)
        }
    }

    fn expr_orelse(&mut self) -> Result<ExprS, Diagnostic> {
        let mut lhs = self.expr_andalso()?;
        while self.eat(&TokenKind::Orelse) {
            let rhs = self.expr_andalso()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Spanned::new(Expr::Orelse(Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn expr_andalso(&mut self) -> Result<ExprS, Diagnostic> {
        let mut lhs = self.expr_assign()?;
        while self.eat(&TokenKind::Andalso) {
            let rhs = self.expr_assign()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Spanned::new(Expr::Andalso(Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn expr_assign(&mut self) -> Result<ExprS, Diagnostic> {
        let lhs = self.expr_cmp()?;
        if self.eat(&TokenKind::Assign) {
            let rhs = self.expr_cmp()?;
            let span = lhs.span.merge(rhs.span);
            Ok(Spanned::new(
                Expr::BinOp(BinOp::Assign, Box::new(lhs), Box::new(rhs)),
                span,
            ))
        } else {
            Ok(lhs)
        }
    }

    fn expr_cmp(&mut self) -> Result<ExprS, Diagnostic> {
        let lhs = self.expr_cons()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.expr_cons()?;
        let span = lhs.span.merge(rhs.span);
        Ok(Spanned::new(
            Expr::BinOp(op, Box::new(lhs), Box::new(rhs)),
            span,
        ))
    }

    fn expr_cons(&mut self) -> Result<ExprS, Diagnostic> {
        let head = self.expr_add()?;
        if self.eat(&TokenKind::ColonColon) {
            let tail = self.expr_cons()?; // right-associative
            let span = head.span.merge(tail.span);
            Ok(Spanned::new(
                Expr::Cons(Box::new(head), Box::new(tail)),
                span,
            ))
        } else {
            Ok(head)
        }
    }

    fn expr_add(&mut self) -> Result<ExprS, Diagnostic> {
        let mut lhs = self.expr_mul()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Caret => BinOp::Concat,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.expr_mul()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Spanned::new(Expr::BinOp(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn expr_mul(&mut self) -> Result<ExprS, Diagnostic> {
        let mut lhs = self.expr_prefix()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Div => BinOp::Div,
                TokenKind::Mod => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.expr_prefix()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Spanned::new(Expr::BinOp(op, Box::new(lhs), Box::new(rhs)), span);
        }
    }

    fn expr_prefix(&mut self) -> Result<ExprS, Diagnostic> {
        let start = self.span();
        match self.peek() {
            TokenKind::Tilde => {
                self.bump();
                let e = self.expr_prefix()?;
                let span = start.merge(e.span);
                Ok(Spanned::new(Expr::Neg(Box::new(e)), span))
            }
            TokenKind::Bang => {
                self.bump();
                let e = self.expr_prefix()?;
                let span = start.merge(e.span);
                Ok(Spanned::new(Expr::Deref(Box::new(e)), span))
            }
            _ => self.expr_app(),
        }
    }

    fn expr_app(&mut self) -> Result<ExprS, Diagnostic> {
        let mut head = self.atexpr()?;
        while self.starts_atexpr() {
            let arg = self.atexpr()?;
            let span = head.span.merge(arg.span);
            head = Spanned::new(Expr::App(Box::new(head), Box::new(arg)), span);
        }
        Ok(head)
    }

    fn starts_atexpr(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Int(_)
                | TokenKind::Str(_)
                | TokenKind::Ident(_)
                | TokenKind::True
                | TokenKind::False
                | TokenKind::LParen
                | TokenKind::LBracket
                | TokenKind::Let
        )
    }

    fn atexpr(&mut self) -> Result<ExprS, Diagnostic> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Let => {
                // `let ... in ... end` is atomic in SML: it may appear as
                // an operand or an application argument.
                self.bump();
                let mut decls = Vec::new();
                while !self.at(&TokenKind::In) {
                    decls.push(self.decl(false)?);
                    while self.eat(&TokenKind::Semi) {}
                }
                self.expect(TokenKind::In)?;
                let mut body = vec![self.expr()?];
                while self.eat(&TokenKind::Semi) {
                    if self.at(&TokenKind::End) {
                        break;
                    }
                    body.push(self.expr()?);
                }
                self.expect(TokenKind::End)?;
                let span = start.merge(self.prev_span());
                Ok(Spanned::new(Expr::Let(decls, body), span))
            }
            TokenKind::Int(n) => {
                self.bump();
                Ok(Spanned::new(Expr::Int(n), start))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Spanned::new(Expr::Str(s), start))
            }
            TokenKind::True => {
                self.bump();
                Ok(Spanned::new(Expr::Bool(true), start))
            }
            TokenKind::False => {
                self.bump();
                Ok(Spanned::new(Expr::Bool(false), start))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Spanned::new(Expr::Var(name), start))
            }
            TokenKind::LParen => {
                self.bump();
                if self.at(&TokenKind::RParen) {
                    self.bump();
                    return Ok(Spanned::new(Expr::Unit, start.merge(self.prev_span())));
                }
                let first = self.expr()?;
                if self.at(&TokenKind::Comma) {
                    let mut parts = vec![first];
                    while self.eat(&TokenKind::Comma) {
                        parts.push(self.expr()?);
                    }
                    self.expect(TokenKind::RParen)?;
                    let span = start.merge(self.prev_span());
                    Ok(Spanned::new(Expr::Tuple(parts), span))
                } else if self.at(&TokenKind::Semi) {
                    let mut parts = vec![first];
                    while self.eat(&TokenKind::Semi) {
                        parts.push(self.expr()?);
                    }
                    self.expect(TokenKind::RParen)?;
                    let span = start.merge(self.prev_span());
                    Ok(Spanned::new(Expr::Seq(parts), span))
                } else {
                    self.expect(TokenKind::RParen)?;
                    let mut only = first;
                    only.span = start.merge(self.prev_span());
                    Ok(only)
                }
            }
            TokenKind::LBracket => {
                self.bump();
                let mut parts = Vec::new();
                if !self.at(&TokenKind::RBracket) {
                    parts.push(self.expr()?);
                    while self.eat(&TokenKind::Comma) {
                        parts.push(self.expr()?);
                    }
                }
                self.expect(TokenKind::RBracket)?;
                let span = start.merge(self.prev_span());
                Ok(Spanned::new(Expr::List(parts), span))
            }
            other => Err(self.err(format!("expected expression, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        parse_expr(src).unwrap().node
    }

    #[test]
    fn literals() {
        assert_eq!(expr("42"), Expr::Int(42));
        assert_eq!(expr("~3"), Expr::Int(-3));
        assert_eq!(expr("true"), Expr::Bool(true));
        assert_eq!(expr("()"), Expr::Unit);
        assert_eq!(expr("\"hi\""), Expr::Str("hi".into()));
    }

    #[test]
    fn precedence_mul_over_add() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let e = expr("1 + 2 * 3");
        match e {
            Expr::BinOp(BinOp::Add, l, r) => {
                assert_eq!(l.node, Expr::Int(1));
                assert!(matches!(r.node, Expr::BinOp(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn application_binds_tighter_than_ops() {
        // f x + g y = (f x) + (g y)
        let e = expr("f x + g y");
        match e {
            Expr::BinOp(BinOp::Add, l, r) => {
                assert!(matches!(l.node, Expr::App(_, _)));
                assert!(matches!(r.node, Expr::App(_, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn cons_right_assoc() {
        let e = expr("1 :: 2 :: nil");
        match e {
            Expr::Cons(h, t) => {
                assert_eq!(h.node, Expr::Int(1));
                assert!(matches!(t.node, Expr::Cons(_, _)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn comparison_below_cons() {
        // a :: b = c :: d parses as (a::b) = (c::d)
        assert!(matches!(
            expr("a :: b = c :: d"),
            Expr::BinOp(BinOp::Eq, _, _)
        ));
    }

    #[test]
    fn fn_extends_right() {
        // fn x => x + 1 includes the addition in the body.
        match expr("fn x => x + 1") {
            Expr::Fn(_, body) => assert!(matches!(body.node, Expr::BinOp(BinOp::Add, _, _))),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn modal_constructs() {
        assert!(matches!(expr("code (fn x => x)"), Expr::Code(_)));
        assert!(matches!(expr("lift 3"), Expr::Lift(_)));
        let src = "let cogen f = g in code (fn x => f x) end";
        match expr(src) {
            Expr::Let(decls, body) => {
                assert!(matches!(decls[0].node, Decl::Cogen(_, _)));
                assert!(matches!(body[0].node, Expr::Code(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn let_with_sequence_body() {
        match expr("let val x = 1 in f x; g x end") {
            Expr::Let(_, body) => assert_eq!(body.len(), 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn tuple_and_seq() {
        assert!(matches!(expr("(1, 2, 3)"), Expr::Tuple(v) if v.len() == 3));
        assert!(matches!(expr("(a; b; c)"), Expr::Seq(v) if v.len() == 3));
    }

    #[test]
    fn clausal_fun() {
        let p = parse_program(
            "fun evalPoly (x, nil) = 0\n  | evalPoly (x, a::p) = a + (x * evalPoly (x, p))",
        )
        .unwrap();
        match &p.decls[0].node {
            Decl::Fun(binds) => {
                assert_eq!(binds.len(), 1);
                assert_eq!(binds[0].clauses.len(), 2);
                assert_eq!(binds[0].clauses[0].params.len(), 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn mutual_fun_groups() {
        let p = parse_program("fun even n = odd (n - 1) and odd n = even (n - 1)").unwrap();
        match &p.decls[0].node {
            Decl::Fun(binds) => {
                assert_eq!(binds.len(), 2);
                assert_eq!(binds[0].name, "even");
                assert_eq!(binds[1].name, "odd");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn inconsistent_arity_rejected() {
        assert!(parse_program("fun f x = 1 | f x y = 2").is_err());
    }

    #[test]
    fn datatype_decl() {
        let p =
            parse_program("datatype instruction = RET_A | RET_K of int | LD_IND of int").unwrap();
        match &p.decls[0].node {
            Decl::Datatype { name, cons, .. } => {
                assert_eq!(name, "instruction");
                assert_eq!(cons.len(), 3);
                assert!(cons[0].arg.is_none());
                assert!(cons[1].arg.is_some());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn type_abbreviation() {
        let p = parse_program("type poly = int list").unwrap();
        match &p.decls[0].node {
            Decl::TypeAbbrev { name, body, .. } => {
                assert_eq!(name, "poly");
                assert!(matches!(&body.node, Ty::Con(n, args) if n == "list" && args.len() == 1));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn box_type_postfix() {
        let t = parse_ty("(int -> int) $").unwrap();
        assert!(matches!(t.node, Ty::Box(_)));
        let t = parse_ty("int list $").unwrap();
        match t.node {
            Ty::Box(inner) => assert!(matches!(inner.node, Ty::Con(n, _) if n == "list")),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn multi_arg_type_constructor() {
        let t = parse_ty("(int, bool) table").unwrap();
        assert!(matches!(t.node, Ty::Con(n, args) if n == "table" && args.len() == 2));
    }

    #[test]
    fn arrow_right_assoc() {
        let t = parse_ty("int -> int -> int").unwrap();
        match t.node {
            Ty::Arrow(_, r) => assert!(matches!(r.node, Ty::Arrow(_, _))),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn tuple_type() {
        let t = parse_ty("int * bool * string").unwrap();
        assert!(matches!(t.node, Ty::Tuple(v) if v.len() == 3));
    }

    #[test]
    fn case_with_constructor_patterns() {
        let e = expr("case x of RET_A => a | RET_K k => k | _ => 0");
        match e {
            Expr::Case(_, arms) => {
                assert_eq!(arms.len(), 3);
                assert!(matches!(&arms[1].0.node, Pat::Con(n, _) if n == "RET_K"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn nested_case_bars_attach_inward() {
        // The inner case consumes both arms; the outer has one arm.
        let e = expr("case x of a => case y of b => 1 | c => 2");
        match e {
            Expr::Case(_, arms) => {
                assert_eq!(arms.len(), 1);
                match &arms[0].1.node {
                    Expr::Case(_, inner) => assert_eq!(inner.len(), 2),
                    other => panic!("unexpected inner: {other:?}"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn deref_and_assign() {
        assert!(matches!(expr("!r"), Expr::Deref(_)));
        assert!(matches!(
            expr("r := !r + 1"),
            Expr::BinOp(BinOp::Assign, _, _)
        ));
    }

    #[test]
    fn ascription() {
        assert!(matches!(expr("x : int"), Expr::Ascribe(_, _)));
    }

    #[test]
    fn cons_pattern_in_fun() {
        let p = parse_program("fun f (a::p) = a").unwrap();
        match &p.decls[0].node {
            Decl::Fun(binds) => {
                assert!(matches!(
                    binds[0].clauses[0].params[0].node,
                    Pat::Cons(_, _)
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn error_reports_found_token() {
        let err = parse_expr("1 +").unwrap_err();
        assert!(err.message.contains("expected expression"));
    }

    #[test]
    fn empty_list() {
        assert!(matches!(expr("[]"), Expr::List(v) if v.is_empty()));
    }

    #[test]
    fn top_level_expression_decl() {
        let p = parse_program("val x = 1; f x").unwrap();
        assert_eq!(p.decls.len(), 2);
        assert!(matches!(p.decls[1].node, Decl::Expr(_)));
    }
}
