//! Diagnostics shared by every pipeline phase (lexing, parsing,
//! elaboration, type checking).

use crate::span::{line_col, Span};
use std::fmt;

/// Which pipeline phase produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Elaboration (scope resolution, desugaring, pattern compilation).
    Elaborate,
    /// Modal type checking.
    Type,
    /// Compilation to the CCAM.
    Compile,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Elaborate => "elaborate",
            Phase::Type => "type",
            Phase::Compile => "compile",
        };
        f.write_str(s)
    }
}

/// A single error with a source location.
///
/// Messages follow the Rust API guidelines: lowercase, no trailing
/// punctuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Phase that raised the error.
    pub phase: Phase,
    /// Primary message.
    pub message: String,
    /// Location of the offending source text.
    pub span: Span,
    /// Optional secondary notes.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new diagnostic in `phase` at `span`.
    pub fn new(phase: Phase, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            phase,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Attaches an extra note, returning `self` for chaining.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic against its source buffer, with line/column
    /// information and the offending line underlined.
    pub fn render(&self, src: &str) -> String {
        let lc = line_col(src, self.span.start);
        let mut out = format!("{} error at {}: {}", self.phase, lc, self.message);
        // Show the offending line.
        if let Some(line_text) = src.lines().nth(lc.line as usize - 1) {
            out.push('\n');
            out.push_str("  | ");
            out.push_str(line_text);
            out.push('\n');
            out.push_str("  | ");
            for _ in 1..lc.col {
                out.push(' ');
            }
            let width = self
                .span
                .len()
                .max(1)
                .min(line_text.len() as u32 + 1 - (lc.col - 1).min(line_text.len() as u32));
            for _ in 0..width.max(1) {
                out.push('^');
            }
        }
        for note in &self.notes {
            out.push_str("\n  note: ");
            out.push_str(note);
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error: {} (at {})",
            self.phase, self.message, self.span
        )
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_message() {
        let d = Diagnostic::new(Phase::Parse, "expected `end`", Span::new(2, 5));
        assert!(d.to_string().contains("expected `end`"));
        assert!(d.to_string().contains("parse"));
    }

    #[test]
    fn render_points_at_line() {
        let src = "val x =\nval y = 2";
        let d = Diagnostic::new(Phase::Parse, "expected expression", Span::new(8, 11));
        let rendered = d.render(src);
        assert!(rendered.contains("2:1"), "{rendered}");
        assert!(rendered.contains("val y = 2"));
        assert!(rendered.contains('^'));
    }

    #[test]
    fn notes_are_rendered() {
        let src = "x";
        let d = Diagnostic::new(Phase::Type, "type mismatch", Span::new(0, 1))
            .with_note("expected int");
        assert!(d.render(src).contains("note: expected int"));
    }
}
