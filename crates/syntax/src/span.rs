//! Byte-offset source spans and source-position bookkeeping.

use std::fmt;

/// A half-open byte range `[start, end)` into a source buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start {start} after end {end}");
        Span { start, end }
    }

    /// The zero-length span at offset 0, used for synthesized nodes.
    pub const SYNTH: Span = Span { start: 0, end: 0 };

    /// Smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers no characters.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// The source text the span covers.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds for `src`.
    pub fn text(self, src: &str) -> &str {
        &src[self.start as usize..self.end as usize]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Computes the [`LineCol`] of a byte offset within `src`.
///
/// Offsets past the end of `src` are clamped to the final position.
pub fn line_col(src: &str, offset: u32) -> LineCol {
    let offset = (offset as usize).min(src.len());
    let mut line = 1;
    let mut col = 1;
    for b in src.as_bytes()[..offset].iter() {
        if *b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    LineCol { line, col }
}

/// A value paired with the source span it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Spanned<T> {
    /// The carried value.
    pub node: T,
    /// Where the value came from in the source.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pairs `node` with `span`.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }

    /// Applies `f` to the carried value, keeping the span.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Spanned<U> {
        Spanned {
            node: f(self.node),
            span: self.span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn text_slices_source() {
        let src = "let val x = 1";
        assert_eq!(Span::new(4, 7).text(src), "val");
    }

    #[test]
    fn line_col_basic() {
        let src = "ab\ncde\nf";
        assert_eq!(line_col(src, 0), LineCol { line: 1, col: 1 });
        assert_eq!(line_col(src, 3), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(src, 5), LineCol { line: 2, col: 3 });
        assert_eq!(line_col(src, 7), LineCol { line: 3, col: 1 });
    }

    #[test]
    fn line_col_clamps() {
        assert_eq!(line_col("x", 100), LineCol { line: 1, col: 2 });
    }

    #[test]
    fn empty_span() {
        assert!(Span::new(4, 4).is_empty());
        assert_eq!(Span::new(4, 4).len(), 0);
    }
}
