//! Hand-written lexer for the MLbox concrete syntax.
//!
//! Handles SML-style nested `(* ... *)` comments, `~`-negated integer
//! literals (produced as `Tilde` followed by `Int`, recombined here when the
//! tilde directly prefixes a digit), string escapes, and `'a`-style type
//! variables.

use crate::diag::{Diagnostic, Phase};
use crate::span::Span;
use crate::token::TokenKind;

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Source location.
    pub span: Span,
}

/// Lexes `src` into a token vector terminated by an [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`Diagnostic`] on malformed input: unterminated comments or
/// strings, unknown characters, or integer literals that overflow `i64`.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>, start: usize) -> Diagnostic {
        Diagnostic::new(
            Phase::Lex,
            msg,
            Span::new(start as u32, self.pos.max(start + 1) as u32),
        )
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(b) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start as u32, start as u32),
                });
                return Ok(out);
            };
            let kind = match b {
                b'0'..=b'9' => self.int(false)?,
                b'~' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => {
                    self.pos += 1;
                    self.int(true)?
                }
                b'~' => {
                    self.pos += 1;
                    TokenKind::Tilde
                }
                b'"' => self.string()?,
                b'\'' => self.tyvar()?,
                b'a'..=b'z' | b'A'..=b'Z' => self.ident(),
                b'_' => {
                    // `_` alone is a wildcard; `_foo` is an identifier.
                    if self
                        .peek2()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'\'')
                    {
                        self.ident()
                    } else {
                        self.pos += 1;
                        TokenKind::Underscore
                    }
                }
                b'(' => {
                    self.pos += 1;
                    TokenKind::LParen
                }
                b')' => {
                    self.pos += 1;
                    TokenKind::RParen
                }
                b'[' => {
                    self.pos += 1;
                    TokenKind::LBracket
                }
                b']' => {
                    self.pos += 1;
                    TokenKind::RBracket
                }
                b',' => {
                    self.pos += 1;
                    TokenKind::Comma
                }
                b';' => {
                    self.pos += 1;
                    TokenKind::Semi
                }
                b'|' => {
                    self.pos += 1;
                    TokenKind::Bar
                }
                b'*' => {
                    self.pos += 1;
                    TokenKind::Star
                }
                b'+' => {
                    self.pos += 1;
                    TokenKind::Plus
                }
                b'^' => {
                    self.pos += 1;
                    TokenKind::Caret
                }
                b'$' => {
                    self.pos += 1;
                    TokenKind::Dollar
                }
                b'!' => {
                    self.pos += 1;
                    TokenKind::Bang
                }
                b'=' => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        TokenKind::DArrow
                    } else {
                        TokenKind::Eq
                    }
                }
                b'-' => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        TokenKind::Arrow
                    } else {
                        TokenKind::Minus
                    }
                }
                b':' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b':') => {
                            self.pos += 1;
                            TokenKind::ColonColon
                        }
                        Some(b'=') => {
                            self.pos += 1;
                            TokenKind::Assign
                        }
                        _ => TokenKind::Colon,
                    }
                }
                b'<' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'=') => {
                            self.pos += 1;
                            TokenKind::Le
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            TokenKind::Ne
                        }
                        _ => TokenKind::Lt,
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.peek() == Some(b'=') {
                        self.pos += 1;
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                other => {
                    self.pos += 1;
                    return Err(
                        self.err(format!("unexpected character `{}`", other as char), start)
                    );
                }
            };
            out.push(Token {
                kind,
                span: Span::new(start as u32, self.pos as u32),
            });
        }
    }

    /// Skips whitespace and (nested) `(* ... *)` comments.
    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'(') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(), self.peek2()) {
                            (Some(b'('), Some(b'*')) => {
                                self.pos += 2;
                                depth += 1;
                            }
                            (Some(b'*'), Some(b')')) => {
                                self.pos += 2;
                                depth -= 1;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(self.err("unterminated comment", start));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn int(&mut self, negate: bool) -> Result<TokenKind, Diagnostic> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let magnitude: i128 = text
            .parse()
            .map_err(|_| self.err("integer literal overflows i64", start))?;
        let value = if negate { -magnitude } else { magnitude };
        i64::try_from(value)
            .map(TokenKind::Int)
            .map_err(|_| self.err("integer literal overflows i64", start))
    }

    fn string(&mut self) -> Result<TokenKind, Diagnostic> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return Err(self.err("unterminated string literal", start)),
                Some(b'"') => return Ok(TokenKind::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    _ => return Err(self.err("unknown string escape", self.pos.saturating_sub(2))),
                },
                Some(b) => out.push(b as char),
            }
        }
    }

    fn tyvar(&mut self) -> Result<TokenKind, Diagnostic> {
        let start = self.pos;
        self.pos += 1; // the quote
        let name_start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        if self.pos == name_start {
            return Err(self.err("expected type variable name after `'`", start));
        }
        Ok(TokenKind::TyVar(self.src[name_start..self.pos].to_string()))
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'\'')
        {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_declaration() {
        assert_eq!(
            kinds("val x = 42"),
            vec![
                TokenKind::Val,
                TokenKind::Ident("x".into()),
                TokenKind::Eq,
                TokenKind::Int(42),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn negative_literal() {
        assert_eq!(kinds("~17")[0], TokenKind::Int(-17));
        // `~` not followed by a digit is the negation operator.
        assert_eq!(kinds("~x")[0], TokenKind::Tilde);
    }

    #[test]
    fn modal_keywords() {
        assert_eq!(
            kinds("code lift cogen"),
            vec![
                TokenKind::Code,
                TokenKind::Lift,
                TokenKind::Cogen,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            kinds(":: := : => = -> <> <= >="),
            vec![
                TokenKind::ColonColon,
                TokenKind::Assign,
                TokenKind::Colon,
                TokenKind::DArrow,
                TokenKind::Eq,
                TokenKind::Arrow,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn nested_comments() {
        assert_eq!(
            kinds("(* outer (* inner *) still outer *) 5"),
            vec![TokenKind::Int(5), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds(r#""a\nb""#)[0], TokenKind::Str("a\nb".to_string()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn tyvars() {
        assert_eq!(kinds("'a")[0], TokenKind::TyVar("a".into()));
        assert!(lex("' ").is_err());
    }

    #[test]
    fn primed_identifiers() {
        // SML allows primes in identifiers: a' , k'.
        assert_eq!(kinds("a'")[0], TokenKind::Ident("a'".into()));
    }

    #[test]
    fn dollar_type_operator() {
        assert_eq!(
            kinds("(int -> int) $"),
            vec![
                TokenKind::LParen,
                TokenKind::Ident("int".into()),
                TokenKind::Arrow,
                TokenKind::Ident("int".into()),
                TokenKind::RParen,
                TokenKind::Dollar,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_cover_lexemes() {
        let toks = lex("val xy").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(4, 6));
    }

    #[test]
    fn int_overflow_errors() {
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn underscore_wildcard_vs_ident() {
        assert_eq!(kinds("_")[0], TokenKind::Underscore);
        assert_eq!(kinds("_x")[0], TokenKind::Ident("_x".into()));
    }
}
