//! Pretty-printer for the surface AST.
//!
//! Output is valid MLbox concrete syntax (fully parenthesized where
//! precedence could be ambiguous), so `parse . pretty . parse = parse` —
//! a property exercised by the round-trip tests.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a program as concrete syntax, one declaration per line.
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.decls {
        out.push_str(&pretty_decl(&d.node));
        out.push('\n');
    }
    out
}

/// Renders a declaration.
pub fn pretty_decl(d: &Decl) -> String {
    match d {
        Decl::Val(p, e) => format!("val {} = {}", pretty_pat(&p.node), pretty_expr(&e.node)),
        Decl::Cogen(u, e) => format!("cogen {} = {}", u, pretty_expr(&e.node)),
        Decl::Fun(binds) => {
            let mut out = String::new();
            for (i, b) in binds.iter().enumerate() {
                out.push_str(if i == 0 { "fun " } else { " and " });
                for (j, c) in b.clauses.iter().enumerate() {
                    if j > 0 {
                        out.push_str(" | ");
                    }
                    out.push_str(&b.name);
                    for p in &c.params {
                        let _ = write!(out, " {}", pretty_atpat(&p.node));
                    }
                    let _ = write!(out, " = {}", pretty_expr(&c.rhs.node));
                }
            }
            out
        }
        Decl::Datatype { tyvars, name, cons } => {
            let mut out = String::from("datatype ");
            out.push_str(&tyvar_prefix(tyvars));
            out.push_str(name);
            out.push_str(" = ");
            for (i, c) in cons.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(&c.name);
                if let Some(arg) = &c.arg {
                    let _ = write!(out, " of {}", pretty_ty(&arg.node));
                }
            }
            out
        }
        Decl::TypeAbbrev { tyvars, name, body } => {
            format!(
                "type {}{} = {}",
                tyvar_prefix(tyvars),
                name,
                pretty_ty(&body.node)
            )
        }
        Decl::Expr(e) => pretty_expr(&e.node),
    }
}

fn tyvar_prefix(tyvars: &[String]) -> String {
    match tyvars {
        [] => String::new(),
        [one] => format!("'{one} "),
        many => {
            let inner: Vec<String> = many.iter().map(|v| format!("'{v}")).collect();
            format!("({}) ", inner.join(", "))
        }
    }
}

/// Renders a type.
pub fn pretty_ty(t: &Ty) -> String {
    match t {
        Ty::Var(v) => format!("'{v}"),
        Ty::Con(name, args) => match args.len() {
            0 => name.clone(),
            1 => format!("{} {}", pretty_ty_atom(&args[0].node), name),
            _ => {
                let inner: Vec<String> = args.iter().map(|a| pretty_ty(&a.node)).collect();
                format!("({}) {}", inner.join(", "), name)
            }
        },
        Ty::Arrow(a, b) => format!("{} -> {}", pretty_ty_atom(&a.node), pretty_ty(&b.node)),
        Ty::Tuple(parts) => {
            let inner: Vec<String> = parts.iter().map(|p| pretty_ty_atom(&p.node)).collect();
            inner.join(" * ")
        }
        Ty::Box(inner) => format!("{} $", pretty_ty_atom(&inner.node)),
    }
}

fn pretty_ty_atom(t: &Ty) -> String {
    match t {
        Ty::Var(_) | Ty::Con(_, _) => pretty_ty(t),
        _ => format!("({})", pretty_ty(t)),
    }
}

/// Renders a pattern.
pub fn pretty_pat(p: &Pat) -> String {
    match p {
        Pat::Cons(h, t) => format!("{} :: {}", pretty_atpat(&h.node), pretty_pat(&t.node)),
        Pat::Con(name, arg) => format!("{} {}", name, pretty_atpat(&arg.node)),
        Pat::Ascribe(inner, ty) => {
            format!("{} : {}", pretty_atpat(&inner.node), pretty_ty(&ty.node))
        }
        _ => pretty_atpat(p),
    }
}

fn pretty_atpat(p: &Pat) -> String {
    match p {
        Pat::Wild => "_".to_string(),
        Pat::Var(v) => v.clone(),
        Pat::Int(n) => pretty_int(*n),
        Pat::Str(s) => format!("{s:?}"),
        Pat::Bool(b) => b.to_string(),
        Pat::Unit => "()".to_string(),
        Pat::Tuple(parts) => {
            let inner: Vec<String> = parts.iter().map(|q| pretty_pat(&q.node)).collect();
            format!("({})", inner.join(", "))
        }
        Pat::List(parts) => {
            let inner: Vec<String> = parts.iter().map(|q| pretty_pat(&q.node)).collect();
            format!("[{}]", inner.join(", "))
        }
        other => format!("({})", pretty_pat(other)),
    }
}

fn pretty_int(n: i64) -> String {
    if n < 0 {
        format!("~{}", n.unsigned_abs())
    } else {
        n.to_string()
    }
}

/// Renders an expression.
pub fn pretty_expr(e: &Expr) -> String {
    match e {
        Expr::Int(n) => pretty_int(*n),
        Expr::Str(s) => format!("{s:?}"),
        Expr::Bool(b) => b.to_string(),
        Expr::Unit => "()".to_string(),
        Expr::Var(v) => v.clone(),
        Expr::Tuple(parts) => {
            let inner: Vec<String> = parts.iter().map(|x| pretty_expr(&x.node)).collect();
            format!("({})", inner.join(", "))
        }
        Expr::List(parts) => {
            let inner: Vec<String> = parts.iter().map(|x| pretty_expr(&x.node)).collect();
            format!("[{}]", inner.join(", "))
        }
        Expr::Seq(parts) => {
            let inner: Vec<String> = parts.iter().map(|x| pretty_expr(&x.node)).collect();
            format!("({})", inner.join("; "))
        }
        Expr::Cons(h, t) => format!("({} :: {})", pretty_expr(&h.node), pretty_expr(&t.node)),
        Expr::App(f, a) => format!("({} {})", pretty_expr(&f.node), pretty_expr(&a.node)),
        Expr::BinOp(op, l, r) => format!(
            "({} {} {})",
            pretty_expr(&l.node),
            op.symbol(),
            pretty_expr(&r.node)
        ),
        Expr::Neg(x) => format!("(~ {})", pretty_expr(&x.node)),
        Expr::Deref(x) => format!("(! {})", pretty_expr(&x.node)),
        Expr::Andalso(l, r) => format!(
            "({} andalso {})",
            pretty_expr(&l.node),
            pretty_expr(&r.node)
        ),
        Expr::Orelse(l, r) => format!("({} orelse {})", pretty_expr(&l.node), pretty_expr(&r.node)),
        Expr::Fn(p, body) => format!(
            "(fn {} => {})",
            pretty_atpat(&p.node),
            pretty_expr(&body.node)
        ),
        Expr::While(c, b) => format!(
            "(while {} do {})",
            pretty_expr(&c.node),
            pretty_expr(&b.node)
        ),
        Expr::If(c, t, f) => format!(
            "(if {} then {} else {})",
            pretty_expr(&c.node),
            pretty_expr(&t.node),
            pretty_expr(&f.node)
        ),
        Expr::Case(scrut, arms) => {
            let mut out = format!("(case {} of ", pretty_expr(&scrut.node));
            for (i, (p, rhs)) in arms.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                let _ = write!(out, "{} => {}", pretty_pat(&p.node), pretty_expr(&rhs.node));
            }
            out.push(')');
            out
        }
        Expr::Let(decls, body) => {
            let mut out = String::from("let ");
            for d in decls {
                out.push_str(&pretty_decl(&d.node));
                out.push(' ');
            }
            out.push_str("in ");
            let inner: Vec<String> = body.iter().map(|x| pretty_expr(&x.node)).collect();
            out.push_str(&inner.join("; "));
            out.push_str(" end");
            out
        }
        Expr::Code(x) => format!("(code ({}))", pretty_expr(&x.node)),
        Expr::Lift(x) => format!("(lift ({}))", pretty_expr(&x.node)),
        Expr::Ascribe(x, ty) => format!("({} : {})", pretty_expr(&x.node), pretty_ty(&ty.node)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program, parse_ty};

    fn round_trip_expr(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let printed = pretty_expr(&e1.node);
        let e2 =
            parse_expr(&printed).unwrap_or_else(|d| panic!("reparse of {printed:?} failed: {d}"));
        assert_eq!(strip(&e1.node), strip(&e2.node), "printed: {printed}");
    }

    /// Structural comparison ignoring spans: pretty-print both.
    fn strip(e: &Expr) -> String {
        pretty_expr(e)
    }

    #[test]
    fn round_trips() {
        for src in [
            "1 + 2 * 3",
            "fn x => x + 1",
            "if a then b else c",
            "let val x = 1 in x end",
            "let cogen f = compPoly p in code (fn x => a' + (x * f x)) end",
            "case xs of nil => 0 | a :: p => a",
            "(1, 2, 3)",
            "[1, 2, 3]",
            "lift (a + b)",
            "~5 + ~x",
            "r := !r + 1",
            "f x y z",
            "\"str\\n\" ^ \"s\"",
        ] {
            round_trip_expr(src);
        }
    }

    #[test]
    fn ty_round_trips() {
        for src in [
            "int -> int",
            "(int -> int) $",
            "int * bool",
            "(int, bool) table",
            "int list list",
            "'a -> 'b $",
        ] {
            let t1 = parse_ty(src).unwrap();
            let printed = pretty_ty(&t1.node);
            let t2 = parse_ty(&printed).unwrap();
            assert_eq!(
                pretty_ty(&t1.node),
                pretty_ty(&t2.node),
                "printed: {printed}"
            );
        }
    }

    #[test]
    fn program_round_trips() {
        let src = "datatype t = A | B of int\nfun f A = 0 | f (B n) = n\nval x = f (B 3)";
        let p1 = parse_program(src).unwrap();
        let printed = pretty_program(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(pretty_program(&p1), pretty_program(&p2));
    }

    #[test]
    fn negative_ints_reparse() {
        round_trip_expr("~2147483648");
    }
}
