//! Golden lockfile for the paper's Table 1: the step counts produced by
//! `table1 all --json` are pinned, field by field, in
//! `tests/golden/table1_steps.json` — in **both** environment modes
//! (default pair-spine `steps` and `indexed_env` `steps_indexed`).
//!
//! Any change to the compiler, machine, or freeze path that shifts a
//! reduction count fails here with the exact row. If a shift is
//! intentional (a new cost model), regenerate the lockfile with
//! `cargo run --release -p mlbox-bench --bin table1 -- --json` and
//! justify the diff in the commit.

use mlbox::SessionOptions;
use mlbox_bench::table1_rows;

const GOLDEN: &str = include_str!("../../../tests/golden/table1_steps.json");
const GOLDEN_FUSED: &str = include_str!("../../../tests/golden/table1_steps_fused.json");
const GOLDEN_FLAT: &str = include_str!("../../../tests/golden/table1_steps_flat_env.json");
const GOLDEN_NATIVE: &str = include_str!("../../../tests/golden/table1_steps_native.json");

/// Pulls `"key": <u64>` out of a JSON-ish line. Hand-rolled — the
/// workspace carries no JSON dependency, and the lockfile's layout is
/// our own `render_json`'s (one row object per line).
fn field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn label(line: &str) -> Option<&str> {
    let at = line.find("\"label\": \"")? + "\"label\": \"".len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

#[test]
fn table1_step_counts_match_the_golden_lockfile() {
    let golden: Vec<(&str, u64, u64, u64)> = GOLDEN
        .lines()
        .filter(|l| l.contains("\"label\""))
        .map(|l| {
            (
                label(l).expect("label"),
                field(l, "steps").expect("steps"),
                field(l, "steps_indexed").expect("steps_indexed"),
                field(l, "emitted").expect("emitted"),
            )
        })
        .collect();
    assert_eq!(golden.len(), 10, "Table 1 has ten rows");

    let (rows, stats) = table1_rows(&SessionOptions::default());
    let (indexed_rows, _) = table1_rows(&SessionOptions {
        indexed_env: true,
        ..SessionOptions::default()
    });
    assert_eq!(rows.len(), golden.len());
    for ((row, irow), (glabel, gsteps, gindexed, gemitted)) in rows
        .iter()
        .zip(&indexed_rows)
        .enumerate()
        .map(|(i, r)| (r, golden[i]))
    {
        assert_eq!(row.label, glabel);
        assert_eq!(
            row.steps, gsteps,
            "`{glabel}`: default-mode steps drifted from the lockfile"
        );
        assert_eq!(
            irow.steps, gindexed,
            "`{glabel}`: indexed-mode steps drifted from the lockfile"
        );
        assert_eq!(
            row.emitted, gemitted,
            "`{glabel}`: emitted count drifted from the lockfile"
        );
    }

    // Freeze-cache counters of the packet-filter session are golden too.
    let cache_line = GOLDEN
        .lines()
        .find(|l| l.contains("freeze_cache"))
        .expect("freeze_cache line");
    assert_eq!(stats.freezes, field(cache_line, "freezes").unwrap());
    assert_eq!(stats.freeze_hits, field(cache_line, "freeze_hits").unwrap());
    assert_eq!(stats.calls, field(cache_line, "calls").unwrap());
    assert_eq!(stats.steps, field(cache_line, "steps").unwrap());
}

#[test]
fn flat_env_table1_step_counts_match_their_own_lockfile_and_equal_indexed() {
    let golden: Vec<(&str, u64, u64)> = GOLDEN_FLAT
        .lines()
        .filter(|l| l.contains("\"label\""))
        .map(|l| {
            (
                label(l).expect("label"),
                field(l, "steps_flat_env").expect("steps_flat_env"),
                field(l, "emitted").expect("emitted"),
            )
        })
        .collect();
    assert_eq!(golden.len(), 10, "Table 1 has ten rows");

    let (indexed_rows, _) = table1_rows(&SessionOptions {
        indexed_env: true,
        ..SessionOptions::default()
    });
    let (flat_rows, _) = table1_rows(&SessionOptions {
        flat_env: true,
        ..SessionOptions::default()
    });
    assert_eq!(flat_rows.len(), golden.len());
    for ((frow, irow), (glabel, gsteps, gemitted)) in flat_rows
        .iter()
        .zip(&indexed_rows)
        .enumerate()
        .map(|(i, r)| (r, golden[i]))
    {
        assert_eq!(frow.label, glabel);
        assert_eq!(
            frow.steps, gsteps,
            "`{glabel}`: flat-env steps drifted from the lockfile"
        );
        assert_eq!(
            frow.emitted, gemitted,
            "`{glabel}`: flat-env emitted count drifted from the lockfile"
        );
        // Flat mode renders exactly the indexed access paths; the two
        // columns must agree step for step — the flat win is wall
        // clock, not the step metric.
        assert_eq!(
            frow.steps, irow.steps,
            "`{glabel}`: flat steps diverged from indexed steps"
        );
    }
}

#[test]
fn fused_table1_step_counts_match_their_own_lockfile_and_beat_default() {
    let golden: Vec<(&str, u64, u64)> = GOLDEN_FUSED
        .lines()
        .filter(|l| l.contains("\"label\""))
        .map(|l| {
            (
                label(l).expect("label"),
                field(l, "steps_fused").expect("steps_fused"),
                field(l, "emitted").expect("emitted"),
            )
        })
        .collect();
    assert_eq!(golden.len(), 10, "Table 1 has ten rows");

    let (rows, _) = table1_rows(&SessionOptions::default());
    let (fused_rows, _) = table1_rows(&SessionOptions {
        fuse: true,
        ..SessionOptions::default()
    });
    assert_eq!(fused_rows.len(), golden.len());
    for ((row, frow), (glabel, gsteps, gemitted)) in rows
        .iter()
        .zip(&fused_rows)
        .enumerate()
        .map(|(i, r)| (r, golden[i]))
    {
        assert_eq!(frow.label, glabel);
        assert_eq!(
            frow.steps, gsteps,
            "`{glabel}`: fused-mode steps drifted from the lockfile"
        );
        assert_eq!(
            frow.emitted, gemitted,
            "`{glabel}`: fused-mode emitted count drifted from the lockfile"
        );
        assert!(
            frow.steps <= row.steps,
            "`{glabel}`: fusion must never add steps ({} > {})",
            frow.steps,
            row.steps
        );
    }
}

#[test]
fn native_table1_step_counts_match_their_own_lockfile_and_equal_interpreted() {
    let golden: Vec<(&str, u64, u64)> = GOLDEN_NATIVE
        .lines()
        .filter(|l| l.contains("\"label\""))
        .map(|l| {
            (
                label(l).expect("label"),
                field(l, "steps_native").expect("steps_native"),
                field(l, "emitted").expect("emitted"),
            )
        })
        .collect();
    assert_eq!(golden.len(), 10, "Table 1 has ten rows");

    let (rows, _) = table1_rows(&SessionOptions::default());
    let (native_rows, _) = table1_rows(&SessionOptions {
        native: true,
        ..SessionOptions::default()
    });
    assert_eq!(native_rows.len(), golden.len());
    for ((nrow, row), (glabel, gsteps, gemitted)) in native_rows
        .iter()
        .zip(&rows)
        .enumerate()
        .map(|(i, r)| (r, golden[i]))
    {
        assert_eq!(nrow.label, glabel);
        assert_eq!(
            nrow.steps, gsteps,
            "`{glabel}`: native-tier steps drifted from the lockfile"
        );
        assert_eq!(
            nrow.emitted, gemitted,
            "`{glabel}`: native-tier emitted count drifted from the lockfile"
        );
        // The native tier is a dispatch strategy, not a cost model: it
        // must replay the interpreted column step for step. Any drift
        // means a lowered closure diverged from its step function.
        assert_eq!(
            nrow.steps, row.steps,
            "`{glabel}`: native steps diverged from interpreted steps"
        );
    }
}
