//! E2/E3 — wall-clock companion to Table 1 rows 5–10: interpreted vs
//! closure-specialized vs code-generated polynomial evaluation (§3.1).

use ccam::value::Value;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlbox::Session;
use mlbox_bench::poly_literal;

fn bench_polynomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("polynomial");
    for degree in [3usize, 16, 64] {
        let poly = poly_literal(degree, 7);
        // One shared session per degree, specialization done once.
        let mut s = Session::new().expect("session");
        s.run(mlbox::programs::EVAL_POLY).expect("evalPoly");
        s.run(mlbox::programs::SPEC_POLY).expect("specPoly");
        s.run(mlbox::programs::COMP_POLY).expect("compPoly");
        s.run(&format!("val thePoly = {poly}")).expect("poly");
        s.run("val specF = specPoly thePoly").expect("specF");
        s.run("val stagedF = eval (compPoly thePoly)")
            .expect("stagedF");
        s.run("val interpF = fn x => evalPoly (x, thePoly)")
            .expect("interpF");

        group.bench_with_input(BenchmarkId::new("interpreted", degree), &degree, |b, _| {
            b.iter(|| s.call("interpF", Value::Int(47)).expect("call"))
        });
        group.bench_with_input(
            BenchmarkId::new("spec_closures", degree),
            &degree,
            |b, _| b.iter(|| s.call("specF", Value::Int(47)).expect("call")),
        );
        group.bench_with_input(BenchmarkId::new("staged_rtcg", degree), &degree, |b, _| {
            b.iter(|| s.call("stagedF", Value::Int(47)).expect("call"))
        });
        // The one-time generation cost, for amortization context.
        group.bench_with_input(BenchmarkId::new("generate", degree), &degree, |b, _| {
            b.iter(|| s.eval_expr("eval (compPoly thePoly)").expect("generate"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_polynomial);
criterion_main!(benches);
