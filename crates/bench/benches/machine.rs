//! CCAM microbenchmarks: raw simulator throughput for the instruction
//! classes the RTCG path exercises (dispatch, emission, call), plus a
//! dispatch-throughput bench on the Table 1 packet filters — the
//! workload the flat code segment is meant to speed up.

use ccam::instr::{Instr, PrimOp};
use ccam::machine::Machine;
use ccam::seg::CodeSeg;
use ccam::value::{Arena, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    let seg = CodeSeg::new();

    // Arithmetic loop: 1000 adds of straight-line dispatch.
    let add_code = seg.entry(
        std::iter::repeat_with(|| {
            [
                Instr::Push,
                Instr::Quote(Value::Int(1)),
                Instr::ConsPair,
                Instr::Prim(PrimOp::Add),
            ]
        })
        .take(1000)
        .flatten()
        .collect(),
    );
    group.bench_function("add_1000", |b| {
        let mut m = Machine::new();
        b.iter(|| m.run(add_code.clone(), Value::Int(0)).expect("run"))
    });

    // Emission throughput: 1000 emits into one arena.
    let mut emit_instrs = vec![Instr::Push, Instr::NewArena, Instr::ConsPair];
    emit_instrs.extend(std::iter::repeat_with(|| Instr::Emit(Box::new(Instr::Id))).take(1000));
    let emit_code = seg.entry(emit_instrs);
    group.bench_function("emit_1000", |b| {
        let mut m = Machine::new();
        b.iter(|| m.run(emit_code.clone(), Value::Unit).expect("run"))
    });

    // Generate-and-call round trip. Each call freezes a fresh arena, so
    // the generated blocks accumulate in the segment's tail — exactly the
    // arena model run-time generation uses.
    let gen_call = seg.entry(vec![
        Instr::Quote(Value::Int(7)),
        Instr::Push,
        Instr::NewArena,
        Instr::ConsPair,
        Instr::LiftV,
        Instr::Emit(Box::new(Instr::Push)),
        Instr::Emit(Box::new(Instr::ConsPair)),
        Instr::Emit(Box::new(Instr::Prim(PrimOp::Add))),
        Instr::Call,
    ]);
    group.bench_function("generate_and_call", |b| {
        let mut m = Machine::new();
        b.iter(|| m.run(gen_call.clone(), Value::Unit).expect("run"))
    });

    // Specialize once, run many: repeated `call` of one finished
    // generator state. The freeze cache means only the first call copies
    // the arena; every later call re-enters the same frozen block.
    let body: Vec<Instr> = std::iter::repeat_with(|| {
        [
            Instr::Push,
            Instr::Quote(Value::Int(1)),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Add),
        ]
    })
    .take(100)
    .flatten()
    .collect();
    let arena = Arena::new();
    for i in &body {
        arena.push(i.clone());
    }
    let gen = Value::pair(Value::Int(0), Value::Arena(arena));
    let call_code = CodeSeg::new().entry(vec![Instr::Call]);
    group.bench_function("specialize_once_run_many", |b| {
        let mut m = Machine::new();
        b.iter(|| m.run(call_code.clone(), gen.clone()).expect("run"))
    });
    // Same workload with superinstruction fusion: the freeze path fuses
    // the generated block once, so every later call dispatches the
    // shorter fused stream.
    group.bench_function("specialize_once_run_many_fused", |b| {
        let mut m = Machine::new();
        m.set_fuse(true);
        b.iter(|| m.run(call_code.clone(), gen.clone()).expect("run"))
    });
    // Same workload through the thread-coded native tier: the first call
    // lowers the frozen block into pre-decoded op closures; every later
    // call is an indirect call per step with no operand decode.
    group.bench_function("specialize_once_run_many_native", |b| {
        let mut m = Machine::new();
        m.set_native(true);
        b.iter(|| m.run(call_code.clone(), gen.clone()).expect("run"))
    });
    // Contrast: a fresh arena per run pays the freeze on every call.
    group.bench_function("respecialize_every_run", |b| {
        let mut m = Machine::new();
        b.iter(|| {
            let a = Arena::new();
            for i in &body {
                a.push(i.clone());
            }
            m.run(
                call_code.clone(),
                Value::pair(Value::Int(0), Value::Arena(a)),
            )
            .expect("run")
        })
    });

    // Closure application: (closure, arg) |-> body.
    let apply_once = CodeSeg::new().entry(vec![Instr::App]);
    group.bench_function("apply_closure", |b| {
        let mut m = Machine::new();
        let clos = {
            let clos_seg = CodeSeg::new();
            let body = clos_seg.add_block(vec![Instr::Snd]);
            m.run(clos_seg.entry(vec![Instr::Cur(body)]), Value::Unit)
                .expect("make closure")
        };
        let input = Value::pair(clos, Value::Int(5));
        b.iter(|| m.run(apply_once.clone(), input.clone()).expect("run"))
    });
    group.finish();
}

/// Dispatch throughput on the Table 1 filters: wall-clock steps/sec of
/// the interpretive (`evalpf`) and specialized (`bevalpf`-generated)
/// telnet filter on a telnet packet. The specialized path is pure
/// dispatch over frozen flat code — the number this bench watches.
fn bench_dispatch(c: &mut Criterion) {
    use mlbox::SessionOptions;
    use mlbox_bpf::filters::telnet_filter;
    use mlbox_bpf::harness::FilterHarness;
    use mlbox_bpf::packet::PacketGen;

    let mut h = FilterHarness::new(&telnet_filter()).expect("harness");
    let mut packets = PacketGen::new(1998);
    let telnet = packets.telnet(32);
    h.specialize().expect("specialize");

    // The same filters compiled under superinstruction fusion, for the
    // headline before/after comparison.
    let mut hf = FilterHarness::with_options(
        &telnet_filter(),
        SessionOptions {
            fuse: true,
            ..SessionOptions::default()
        },
    )
    .expect("fused harness");
    hf.specialize().expect("specialize fused");

    // And under flat frame environments: the same step counts as
    // indexed mode, but every `acc` is an O(1) slot load.
    let mut hflat = FilterHarness::with_options(
        &telnet_filter(),
        SessionOptions {
            flat_env: true,
            ..SessionOptions::default()
        },
    )
    .expect("flat harness");
    hflat.specialize().expect("specialize flat");

    // And through the thread-coded native tier: identical step counts,
    // pre-decoded dispatch.
    let mut hnative = FilterHarness::with_options(
        &telnet_filter(),
        SessionOptions {
            native: true,
            ..SessionOptions::default()
        },
    )
    .expect("native harness");
    hnative.specialize().expect("specialize native");

    let mut group = c.benchmark_group("dispatch");
    group.bench_function("interp_telnet_packet", |b| {
        b.iter(|| h.interp(&telnet).expect("run"))
    });
    group.bench_function("specialized_telnet_packet", |b| {
        b.iter(|| h.specialized(&telnet).expect("run"))
    });
    group.bench_function("interp_telnet_packet_fused", |b| {
        b.iter(|| hf.interp(&telnet).expect("run"))
    });
    group.bench_function("specialized_telnet_packet_fused", |b| {
        b.iter(|| hf.specialized(&telnet).expect("run"))
    });
    group.bench_function("interp_telnet_packet_flat_env", |b| {
        b.iter(|| hflat.interp(&telnet).expect("run"))
    });
    group.bench_function("specialized_telnet_packet_flat_env", |b| {
        b.iter(|| hflat.specialized(&telnet).expect("run"))
    });
    group.bench_function("interp_telnet_packet_native", |b| {
        b.iter(|| hnative.interp(&telnet).expect("run"))
    });
    group.bench_function("specialized_telnet_packet_native", |b| {
        b.iter(|| hnative.specialized(&telnet).expect("run"))
    });
    group.finish();

    // Steps-per-second summary: measured over a fixed batch so the
    // number is directly comparable across commits.
    fn steps_per_sec(label: &str, mut run: impl FnMut() -> u64) {
        let iters = 2_000u64;
        let mut steps = 0u64;
        let start = Instant::now();
        for _ in 0..iters {
            steps += run();
        }
        let secs = start.elapsed().as_secs_f64();
        println!(
            "dispatch/{label}_steps_per_sec: {:.0} ({steps} steps over {iters} packets in {secs:.3}s)",
            steps as f64 / secs,
        );
    }
    steps_per_sec("interp", || h.interp(&telnet).expect("run").1);
    steps_per_sec("specialized", || h.specialized(&telnet).expect("run").1);
    steps_per_sec("interp_fused", || hf.interp(&telnet).expect("run").1);
    steps_per_sec("specialized_fused", || {
        hf.specialized(&telnet).expect("run").1
    });
    steps_per_sec("interp_flat_env", || hflat.interp(&telnet).expect("run").1);
    steps_per_sec("specialized_flat_env", || {
        hflat.specialized(&telnet).expect("run").1
    });
    steps_per_sec("interp_native", || hnative.interp(&telnet).expect("run").1);
    steps_per_sec("specialized_native", || {
        hnative.specialized(&telnet).expect("run").1
    });
}

criterion_group!(benches, bench_machine, bench_dispatch);
criterion_main!(benches);
