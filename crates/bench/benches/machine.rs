//! CCAM microbenchmarks: raw simulator throughput for the instruction
//! classes the RTCG path exercises (dispatch, emission, call).

use ccam::instr::{Instr, PrimOp};
use ccam::machine::Machine;
use ccam::value::{Arena, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::rc::Rc;

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");

    // Arithmetic loop: 1000 adds.
    let add_code: Vec<Instr> = std::iter::repeat_with(|| {
        [
            Instr::Push,
            Instr::Quote(Value::Int(1)),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Add),
        ]
    })
    .take(1000)
    .flatten()
    .collect();
    let add_code = Rc::new(add_code);
    group.bench_function("add_1000", |b| {
        let mut m = Machine::new();
        b.iter(|| m.run(add_code.clone(), Value::Int(0)).expect("run"))
    });

    // Emission throughput: 1000 emits into one arena.
    let mut emit_code = vec![Instr::Push, Instr::NewArena, Instr::ConsPair];
    emit_code.extend(std::iter::repeat_with(|| Instr::Emit(Box::new(Instr::Id))).take(1000));
    let emit_code = Rc::new(emit_code);
    group.bench_function("emit_1000", |b| {
        let mut m = Machine::new();
        b.iter(|| m.run(emit_code.clone(), Value::Unit).expect("run"))
    });

    // Generate-and-call round trip.
    let gen_call = Rc::new(vec![
        Instr::Quote(Value::Int(7)),
        Instr::Push,
        Instr::NewArena,
        Instr::ConsPair,
        Instr::LiftV,
        Instr::Emit(Box::new(Instr::Push)),
        Instr::Emit(Box::new(Instr::ConsPair)),
        Instr::Emit(Box::new(Instr::Prim(PrimOp::Add))),
        Instr::Call,
    ]);
    group.bench_function("generate_and_call", |b| {
        let mut m = Machine::new();
        b.iter(|| m.run(gen_call.clone(), Value::Unit).expect("run"))
    });

    // Specialize once, run many: repeated `call` of one finished
    // generator state. The freeze cache means only the first call copies
    // the arena; every later call re-enters the same snapshot.
    let body: Vec<Instr> = std::iter::repeat_with(|| {
        [
            Instr::Push,
            Instr::Quote(Value::Int(1)),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Add),
        ]
    })
    .take(100)
    .flatten()
    .collect();
    let arena = Arena::new();
    for i in &body {
        arena.push(i.clone());
    }
    let gen = Value::pair(Value::Int(0), Value::Arena(arena));
    let call_code = Rc::new(vec![Instr::Call]);
    group.bench_function("specialize_once_run_many", |b| {
        let mut m = Machine::new();
        b.iter(|| m.run(call_code.clone(), gen.clone()).expect("run"))
    });
    // Contrast: a fresh arena per run pays the copy on every call.
    group.bench_function("respecialize_every_run", |b| {
        let mut m = Machine::new();
        b.iter(|| {
            let a = Arena::new();
            for i in &body {
                a.push(i.clone());
            }
            m.run(
                call_code.clone(),
                Value::pair(Value::Int(0), Value::Arena(a)),
            )
            .expect("run")
        })
    });

    // Closure application: (closure, arg) |-> body.
    let apply_once = Rc::new(vec![Instr::App]);
    group.bench_function("apply_closure", |b| {
        let mut m = Machine::new();
        let clos = {
            let code = Rc::new(vec![Instr::Cur(Rc::new(vec![Instr::Snd]))]);
            m.run(code, Value::Unit).expect("make closure")
        };
        let input = Value::pair(clos, Value::Int(5));
        b.iter(|| m.run(apply_once.clone(), input.clone()).expect("run"))
    });
    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
