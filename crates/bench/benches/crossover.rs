//! E6 — the amortization ablation: total cost of filtering a batch of n
//! packets, interpreted vs generate-once-then-run-specialized. The
//! crossover (staged wins from n ≈ 2) mirrors the step-count analysis in
//! `table1 crossover`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlbox_bpf::filters::telnet_filter;
use mlbox_bpf::harness::FilterHarness;
use mlbox_bpf::packet::PacketGen;

fn bench_crossover(c: &mut Criterion) {
    let filter = telnet_filter();
    let mut packets = PacketGen::new(3);
    let workload = packets.workload(32, 0.5);

    let mut group = c.benchmark_group("crossover");
    group.sample_size(10);
    for n in [1usize, 4, 32] {
        group.bench_with_input(BenchmarkId::new("interp_batch", n), &n, |b, &n| {
            let mut h = FilterHarness::new(&filter).expect("harness");
            b.iter(|| {
                for p in workload.iter().cycle().take(n) {
                    h.interp(p).expect("interp");
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("generate_then_run", n), &n, |b, &n| {
            b.iter(|| {
                // Includes the one-time generation in every iteration.
                let mut h = FilterHarness::new(&filter).expect("harness");
                h.specialize().expect("specialize");
                for p in workload.iter().cycle().take(n) {
                    h.specialized(p).expect("specialized");
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
