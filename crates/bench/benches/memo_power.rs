//! E4 — §3.4 memoization: codePower regeneration vs memoPower1 cache
//! hits vs memoPower2 shared generating extensions.

use ccam::value::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use mlbox::Session;

fn bench_memo_power(c: &mut Criterion) {
    let mut group = c.benchmark_group("memo_power");

    // Regenerating every time (no memoization).
    let mut s0 = Session::new().expect("session");
    s0.run(mlbox::programs::CODE_POWER).expect("codePower");
    group.bench_function("regenerate_every_call", |b| {
        b.iter(|| s0.eval_expr("eval (codePower 16) 2").expect("eval"))
    });

    // memoPower1: specialized function cached after the first call.
    let mut s1 = Session::new().expect("session");
    s1.run(mlbox::programs::CODE_POWER).expect("codePower");
    s1.run(mlbox::programs::MEMO_POWER1).expect("memoPower1");
    s1.eval_expr("memoPower1 16 2").expect("warm");
    group.bench_function("memo_power1_hit", |b| {
        b.iter(|| s1.eval_expr("memoPower1 16 2").expect("hit"))
    });

    // The raw specialized function, without even the table lookup.
    let mut s2 = Session::new().expect("session");
    s2.run(mlbox::programs::CODE_POWER).expect("codePower");
    s2.run("val pow16 = eval (codePower 16)").expect("pow16");
    group.bench_function("specialized_direct", |b| {
        b.iter(|| s2.call("pow16", Value::Int(2)).expect("call"))
    });

    // memoPower2: generating extensions shared across exponents.
    let mut s3 = Session::new().expect("session");
    s3.run(mlbox::programs::MEMO_POWER2).expect("memoPower2");
    s3.eval_expr("memoPower2 60 2").expect("warm");
    group.bench_function("memo_power2_related_exponent", |b| {
        let mut e = 10u32;
        b.iter(|| {
            // Different exponents below 60 reuse memoized extensions.
            e = (e % 50) + 10;
            s3.eval_expr(&format!("memoPower2 {e} 2")).expect("eval")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_memo_power);
criterion_main!(benches);
