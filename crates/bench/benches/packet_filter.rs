//! E1 — wall-clock companion to Table 1 rows 1–4: the interpretive packet
//! filter `evalpf` vs the run-time-specialized `bevalpf` (§3.3), on
//! synthetic telnet and non-telnet packets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlbox::SessionOptions;
use mlbox_bpf::filters::telnet_filter;
use mlbox_bpf::harness::FilterHarness;
use mlbox_bpf::native::run_filter;
use mlbox_bpf::packet::PacketGen;

fn bench_packet_filter(c: &mut Criterion) {
    let filter = telnet_filter();
    let mut harness = FilterHarness::new(&filter).expect("harness");
    harness.specialize().expect("specialize");
    // The same specialized filter through the CCAM's thread-coded tier
    // (`SessionOptions::native`) — the closest the simulator gets to the
    // hand-written Rust interpreter below.
    let mut harness_native = FilterHarness::with_options(
        &filter,
        SessionOptions {
            native: true,
            ..SessionOptions::default()
        },
    )
    .expect("native harness");
    harness_native.specialize().expect("specialize native");
    let mut packets = PacketGen::new(1998);
    let telnet = packets.telnet(32);
    let web = packets.tcp(80, 32);

    let mut group = c.benchmark_group("packet_filter");
    for (name, pkt) in [("telnet", &telnet), ("other", &web)] {
        group.bench_with_input(BenchmarkId::new("evalpf", name), pkt, |b, p| {
            b.iter(|| harness.interp(p).expect("interp"))
        });
        group.bench_with_input(
            BenchmarkId::new("bevalpf_specialized", name),
            pkt,
            |b, p| b.iter(|| harness.specialized(p).expect("specialized")),
        );
        group.bench_with_input(
            BenchmarkId::new("bevalpf_specialized_native_tier", name),
            pkt,
            |b, p| b.iter(|| harness_native.specialized(p).expect("specialized")),
        );
        group.bench_with_input(BenchmarkId::new("native_rust", name), pkt, |b, p| {
            b.iter(|| run_filter(&filter, &p.bytes))
        });
    }
    // Generation cost: specialize a fresh filter each iteration.
    group.bench_function("specialize_once", |b| {
        b.iter(|| {
            let mut h = FilterHarness::new(&filter).expect("harness");
            h.specialize().expect("specialize")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_packet_filter);
criterion_main!(benches);
