//! Deep-environment access microbenchmark: the paper's pair-spine
//! `fst^k; snd` access chains versus the fused single-dispatch `acc` of
//! indexed environment mode (`SessionOptions::indexed_env`).
//!
//! Each iteration builds a fresh session (prelude off, so the environment
//! holds exactly the workload's bindings) and evaluates a nest of `depth`
//! `let` bindings whose body reads the outermost variable — the access
//! that costs O(depth) dispatches on the spine and O(1) indexed.

use criterion::{criterion_group, criterion_main, Criterion};
use mlbox::{Session, SessionOptions};
use mlbox_bench::deep_env_program;

fn bench_deep_env(c: &mut Criterion) {
    let mut group = c.benchmark_group("deep_env");
    for depth in [8usize, 32, 128] {
        let src = deep_env_program(depth);
        for (name, indexed) in [("spine", false), ("indexed", true)] {
            group.bench_function(format!("depth_{depth}_{name}"), |b| {
                b.iter(|| {
                    let mut s = Session::with_options(SessionOptions {
                        prelude: false,
                        indexed_env: indexed,
                        ..SessionOptions::default()
                    })
                    .expect("session");
                    s.eval_expr(&src).expect("run").stats.steps
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_deep_env);
criterion_main!(benches);
