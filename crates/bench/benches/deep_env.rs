//! Deep-environment access microbenchmark: the paper's pair-spine
//! `fst^k; snd` access chains versus the fused single-dispatch `acc` of
//! indexed environment mode (`SessionOptions::indexed_env`) versus the
//! O(1) slot loads of flat frame mode (`SessionOptions::flat_env`).
//!
//! Each mode compiles the workload **once**; the measured iteration is a
//! single `Session::call` of `sweep`, a function that builds a
//! `depth`-deep `let` nest and then reads the outermost binding 32
//! times. That keeps parsing and compilation out of the loop, so the
//! timings isolate what the modes actually differ on: environment
//! extension and access. Per call the spine pays `reads × depth` `fst`
//! dispatches, indexed mode pays `reads` `acc` dispatches that each
//! still walk `depth` pair nodes, and flat mode answers every read with
//! one bounds-checked slot load.

use ccam::value::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use mlbox::Session;
use mlbox_bench::{deep_access_program, deep_env_modes};

fn bench_deep_env(c: &mut Criterion) {
    let mut group = c.benchmark_group("deep_env");
    for depth in [8usize, 32, 128] {
        let src = deep_access_program(depth, 32);
        for (name, options) in deep_env_modes() {
            let mut s = Session::with_options(options).expect("session");
            s.run(&src).expect("compile sweep");
            group.bench_function(format!("depth_{depth}_{name}"), |b| {
                b.iter(|| s.call("sweep", Value::Int(1)).expect("call").1)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_deep_env);
criterion_main!(benches);
