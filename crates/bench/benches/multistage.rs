//! E5 — §3.2 multi-stage specialization: dynamically generated code that
//! itself generates specialized code (the library-client example).

use ccam::value::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use mlbox::Session;

fn bench_multistage(c: &mut Criterion) {
    let mut s = Session::new().expect("session");
    s.run(mlbox::programs::EVAL_POLY).expect("evalPoly");
    s.run(mlbox::programs::COMP_POLY).expect("compPoly");
    s.run(mlbox::programs::CLIENT).expect("client");
    s.run("val stage1 = eval client").expect("stage1");
    s.run("val stage2 = stage1 8").expect("stage2");

    let mut group = c.benchmark_group("multistage");
    // Stage 1: run the generated client code (which runs compPoly and
    // generates stage-2 code).
    group.bench_function("stage1_generates_stage2", |b| {
        b.iter(|| s.call("stage1", Value::Int(8)).expect("stage1"))
    });
    // Stage 2: run the doubly-specialized polynomial.
    group.bench_function("stage2_specialized_call", |b| {
        b.iter(|| s.call("stage2", Value::Int(47)).expect("stage2"))
    });
    // Baseline: the same computation, interpreted all the way.
    s.run("val interpBoth = fn y => fn x => evalPoly (x, makePoly y)")
        .expect("baseline");
    s.run("val interpAt8 = interpBoth 8").expect("interpAt8");
    group.bench_function("interp_baseline_call", |b| {
        b.iter(|| s.call("interpAt8", Value::Int(47)).expect("call"))
    });
    group.finish();
}

criterion_group!(benches, bench_multistage);
criterion_main!(benches);
