//! Shared measurement helpers for the Table 1 regeneration binary
//! (`table1`) and the Criterion benches.
//!
//! The paper's metric is **CCAM reduction steps** (Table 1); the Criterion
//! benches additionally report wall-clock time of the simulator, which
//! tracks steps closely.

use mlbox::{Error, Session, SessionOptions, TierPolicy};
use mlbox_bpf::filters::telnet_filter;
use mlbox_bpf::harness::FilterHarness;
use mlbox_bpf::packet::PacketGen;

/// A measurement row: a computation's label and its reduction steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// What was measured (the paper's "Computation" column).
    pub label: String,
    /// CCAM reduction steps (default pair-spine environment mode — the
    /// paper's cost model).
    pub steps: u64,
    /// Instructions emitted into arenas during the computation.
    pub emitted: u64,
    /// The paper's reported number, when the row reproduces one.
    pub paper: Option<u64>,
    /// Steps for the same computation under `indexed_env` (fused `acc`
    /// accesses), when the comparison was measured.
    pub indexed_steps: Option<u64>,
}

impl Row {
    /// A row with a paper reference number.
    pub fn with_paper(label: impl Into<String>, steps: u64, emitted: u64, paper: u64) -> Row {
        Row {
            label: label.into(),
            steps,
            emitted,
            paper: Some(paper),
            indexed_steps: None,
        }
    }

    /// A row without a paper reference.
    pub fn new(label: impl Into<String>, steps: u64, emitted: u64) -> Row {
        Row {
            label: label.into(),
            steps,
            emitted,
            paper: None,
            indexed_steps: None,
        }
    }

    /// Attaches the indexed-mode measurement of the same computation.
    #[must_use]
    pub fn with_indexed(mut self, steps: u64) -> Row {
        self.indexed_steps = Some(steps);
        self
    }
}

/// Renders rows as an aligned text table (Computation / Reductions /
/// Emitted / Paper).
pub fn render_table(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(11)
        .max("Computation".len());
    out.push_str(&format!(
        "{:label_w$}  {:>10}  {:>8}  {:>10}\n",
        "Computation", "Reductions", "Emitted", "Paper"
    ));
    out.push_str(&format!(
        "{}  {}  {}  {}\n",
        "-".repeat(label_w),
        "-".repeat(10),
        "-".repeat(8),
        "-".repeat(10)
    ));
    for r in rows {
        let paper = r
            .paper
            .map(|p| p.to_string())
            .unwrap_or_else(|| "—".to_string());
        out.push_str(&format!(
            "{:label_w$}  {:>10}  {:>8}  {:>10}\n",
            r.label, r.steps, r.emitted, paper
        ));
    }
    out
}

/// Measures all ten Table 1 rows under the given session options,
/// returning the rows plus the packet-filter harness's cumulative machine
/// statistics (for the freeze-cache counters in the JSON output). The
/// numbers are deterministic — they are pinned by the golden lockfile in
/// `tests/golden/table1_steps.json`.
pub fn table1_rows(options: &SessionOptions) -> (Vec<Row>, ccam::machine::Stats) {
    let mut rows = Vec::new();

    // ---- Packet filter rows (E1) ----
    let filter = telnet_filter();
    let mut h = FilterHarness::with_options(&filter, options.clone()).expect("harness");
    let mut packets = PacketGen::new(1998);
    let telnet = packets.telnet(32);

    let (v, interp_steps) = h.interp(&telnet).expect("interp");
    assert!(v > 0, "telnet packet must be accepted");
    rows.push(Row::with_paper(
        "evalpf on first telnet packet",
        interp_steps,
        0,
        9163,
    ));
    let (_, interp_steps_n) = h.interp(&telnet).expect("interp");
    rows.push(Row::with_paper(
        "evalpf on nth telnet packet",
        interp_steps_n,
        0,
        9163,
    ));
    let gen_stats = h.specialize().expect("specialize");
    let (v, run_steps) = h.specialized(&telnet).expect("specialized");
    assert!(v > 0);
    rows.push(Row::with_paper(
        "bevalpf on first telnet packet",
        gen_stats.steps + run_steps,
        gen_stats.emitted,
        11984,
    ));
    let (_, run_steps_n) = h.specialized(&telnet).expect("specialized");
    rows.push(Row::with_paper(
        "bevalpf on nth telnet packet",
        run_steps_n,
        0,
        1104,
    ));

    // ---- Polynomial rows (E2, E3) ----
    let c = poly_costs_with("[2, 4, 0, 2333]", 47, options.clone()).expect("poly costs");
    rows.push(Row::with_paper(
        "evalPoly (47, polyl)",
        c.interp_per_call,
        0,
        807,
    ));
    rows.push(Row::with_paper("specPoly polyl", c.spec_build, 0, 443));
    rows.push(Row::with_paper("polylTarget 47", c.spec_per_call, 0, 175));
    rows.push(Row::with_paper("compPoly polyl", c.comp_build, 0, 553));
    rows.push(Row::with_paper("eval codeGenerator", c.generate, 0, 200));
    rows.push(Row::with_paper("mlPolyFun 47", c.staged_per_call, 0, 74));
    (rows, h.machine_stats())
}

/// Measures the Table 1 rows under the adaptive profile and asserts —
/// in the binary, not just in a test — that every row counts *exactly*
/// the plain profile's reduction steps while the tier controller
/// actually promoted blocks along the way. This is the paper-fidelity
/// contract of adaptive tiering: promotion changes how hot code is
/// dispatched, never what the cost model observes.
pub fn table1_rows_tiered(policy: TierPolicy) -> (Vec<Row>, ccam::machine::Stats) {
    let (plain, _) = table1_rows(&SessionOptions::default());
    let (rows, stats) = table1_rows(&SessionOptions {
        adaptive: Some(policy),
        ..SessionOptions::default()
    });
    assert!(
        stats.promotions > 0,
        "the tier controller never promoted a block over the Table 1 workloads"
    );
    for (tiered, plain) in rows.iter().zip(&plain) {
        assert_eq!(
            tiered.steps, plain.steps,
            "adaptive row {:?} must count exactly the plain profile's steps",
            tiered.label
        );
    }
    (rows, stats)
}

/// Wall-clock dispatch throughput of one Table 1 filter workload.
#[derive(Debug, Clone)]
pub struct DispatchRow {
    /// What was measured.
    pub label: String,
    /// Total reduction steps executed over the batch.
    pub steps: u64,
    /// Wall-clock nanoseconds for the batch.
    pub nanos: u128,
}

impl DispatchRow {
    /// Reduction steps dispatched per second of wall-clock time.
    pub fn steps_per_sec(&self) -> f64 {
        self.steps as f64 * 1e9 / (self.nanos.max(1)) as f64
    }
}

/// Measures dispatch throughput (steps/sec) of the interpretive and
/// specialized telnet filter over `iters` packets each — the wall-clock
/// counterpart of the Table 1 step counts, reported in
/// `BENCH_table1.json`. Wall-clock numbers vary run to run; only the
/// step counts are golden.
///
/// # Errors
///
/// Propagates any pipeline error.
pub fn dispatch_throughput(iters: u64) -> Result<Vec<DispatchRow>, Error> {
    dispatch_throughput_with(iters, &SessionOptions::default())
}

/// [`dispatch_throughput`] under explicit session options. Rows measured
/// in a non-default mode carry the mode in their label (`(fused)`), so
/// default and fused measurements can share one `dispatch` array.
///
/// # Errors
///
/// Propagates any pipeline error.
pub fn dispatch_throughput_with(
    iters: u64,
    options: &SessionOptions,
) -> Result<Vec<DispatchRow>, Error> {
    /// One filter run: returns (verdict, reduction steps).
    type FilterRun<'a> = &'a mut dyn FnMut(&mut FilterHarness) -> Result<(i64, u64), Error>;
    let suffix = match (options.fuse, options.native) {
        (true, true) => " (fused, native)",
        (true, false) => " (fused)",
        (false, true) => " (native)",
        (false, false) => "",
    };
    let mut h = FilterHarness::with_options(&telnet_filter(), options.clone())?;
    let mut packets = PacketGen::new(1998);
    let telnet = packets.telnet(32);
    h.specialize()?;
    let mut measure = |label: &str, run: FilterRun| -> Result<DispatchRow, Error> {
        let mut steps = 0u64;
        let start = std::time::Instant::now();
        for _ in 0..iters {
            steps += run(&mut h)?.1;
        }
        Ok(DispatchRow {
            label: format!("{label}{suffix}"),
            steps,
            nanos: start.elapsed().as_nanos(),
        })
    };
    Ok(vec![
        measure("evalpf dispatch on telnet packets", &mut |h| {
            h.interp(&telnet)
        })?,
        measure("bevalpf specialized dispatch on telnet packets", &mut |h| {
            h.specialized(&telnet)
        })?,
    ])
}

/// Renders the Table 1 rows plus the machine's freeze-cache counters as
/// a JSON object (hand-rolled: the workspace carries no serialization
/// dependency). `machine` should be the cumulative [`Stats`] of the
/// session that produced the packet-filter rows, so `freezes` and
/// `freeze_hits` describe how often generated code was actually copied
/// out of an arena versus served from the cache. `fused` rows (the same
/// computations under `SessionOptions::fuse`) render as a separate
/// `rows_fused` array whose lines carry `steps_fused` — and deliberately
/// *not* `steps_indexed` — so line-oriented golden diffs of the two mode
/// columns stay independent. `flat` rows (the same computations under
/// `SessionOptions::flat_env`) likewise render as their own
/// `rows_flat_env` array keyed `steps_flat_env`, and `native` rows (the
/// same computations through the thread-coded tier,
/// `SessionOptions::native`) as `rows_native` keyed `steps_native`,
/// keeping all four lockfile greps line-disjoint. `tiered` rows (the
/// same computations under the adaptive profile, which
/// [`table1_rows_tiered`] asserts count plain-profile steps) render as
/// `rows_tiered` keyed `steps_tiered`, with the controller's counters in
/// a `tier_controller` object when `tiered_stats` is given. `dispatch`
/// rows (wall clock, non-golden) are appended when non-empty.
///
/// [`Stats`]: ccam::machine::Stats
#[allow(clippy::too_many_arguments)]
pub fn render_json(
    title: &str,
    rows: &[Row],
    fused: &[Row],
    flat: &[Row],
    native: &[Row],
    tiered: &[Row],
    machine: &ccam::machine::Stats,
    tiered_stats: Option<&ccam::machine::Stats>,
    dispatch: &[DispatchRow],
) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"title\": \"{}\",\n  \"rows\": [\n",
        esc(title)
    ));
    for (i, r) in rows.iter().enumerate() {
        let paper = r
            .paper
            .map(|p| p.to_string())
            .unwrap_or_else(|| "null".to_string());
        let indexed = r
            .indexed_steps
            .map(|s| s.to_string())
            .unwrap_or_else(|| "null".to_string());
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"steps\": {}, \"steps_indexed\": {}, \"emitted\": {}, \"paper\": {}}}{}\n",
            esc(&r.label),
            r.steps,
            indexed,
            r.emitted,
            paper,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    if !fused.is_empty() {
        out.push_str(",\n  \"rows_fused\": [\n");
        for (i, r) in fused.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"steps_fused\": {}, \"emitted\": {}}}{}\n",
                esc(&r.label),
                r.steps,
                r.emitted,
                if i + 1 < fused.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]");
    }
    if !flat.is_empty() {
        out.push_str(",\n  \"rows_flat_env\": [\n");
        for (i, r) in flat.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"steps_flat_env\": {}, \"emitted\": {}}}{}\n",
                esc(&r.label),
                r.steps,
                r.emitted,
                if i + 1 < flat.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]");
    }
    if !native.is_empty() {
        out.push_str(",\n  \"rows_native\": [\n");
        for (i, r) in native.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"steps_native\": {}, \"emitted\": {}}}{}\n",
                esc(&r.label),
                r.steps,
                r.emitted,
                if i + 1 < native.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]");
    }
    if !tiered.is_empty() {
        out.push_str(",\n  \"rows_tiered\": [\n");
        for (i, r) in tiered.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"steps_tiered\": {}, \"emitted\": {}}}{}\n",
                esc(&r.label),
                r.steps,
                r.emitted,
                if i + 1 < tiered.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]");
    }
    if let Some(ts) = tiered_stats {
        out.push_str(&format!(
            ",\n  \"tier_controller\": {{\"promotions\": {}, \"refreezes\": {}, \"tier_steps\": [{}, {}, {}]}}",
            ts.promotions, ts.refreezes, ts.tier_steps[0], ts.tier_steps[1], ts.tier_steps[2]
        ));
    }
    out.push_str(&format!(
        ",\n  \"freeze_cache\": {{\"freezes\": {}, \"freeze_hits\": {}, \"calls\": {}, \"steps\": {}}}",
        machine.freezes, machine.freeze_hits, machine.calls, machine.steps
    ));
    if dispatch.is_empty() {
        out.push_str("\n}");
        return out;
    }
    out.push_str(",\n  \"dispatch\": [\n");
    for (i, d) in dispatch.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"steps\": {}, \"nanos\": {}, \"steps_per_sec\": {:.0}}}{}\n",
            esc(&d.label),
            d.steps,
            d.nanos,
            d.steps_per_sec(),
            if i + 1 < dispatch.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    out
}

/// A session preloaded with the paper's interpretive polynomial program
/// (`evalPoly` and `polyl` — §3.1); the staging declarations are *not*
/// yet run so their cost can be measured.
///
/// # Errors
///
/// Propagates any pipeline error.
pub fn poly_session() -> Result<Session, Error> {
    poly_session_with(SessionOptions::default())
}

/// [`poly_session`] with explicit session options (e.g. `indexed_env`).
///
/// # Errors
///
/// Propagates any pipeline error.
pub fn poly_session_with(options: SessionOptions) -> Result<Session, Error> {
    let mut s = Session::with_options(options)?;
    s.run(mlbox::programs::EVAL_POLY)?;
    Ok(s)
}

/// Builds a polynomial of the given degree (degree+1 coefficients) as an
/// MLbox list literal, deterministic in `seed`.
pub fn poly_literal(degree: usize, seed: u64) -> String {
    // A simple LCG keeps this deterministic without threading an RNG.
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut items = Vec::with_capacity(degree + 1);
    for _ in 0..=degree {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        items.push(((state >> 33) % 1000).to_string());
    }
    format!("[{}]", items.join(", "))
}

/// Measured costs for the six §3.1 computations on one polynomial.
#[derive(Debug, Clone, Copy)]
pub struct PolyCosts {
    /// Steps to interpret `evalPoly (x, p)` once.
    pub interp_per_call: u64,
    /// Steps to run `specPoly p` (closure-building specialization).
    pub spec_build: u64,
    /// Steps per call of the `specPoly` result.
    pub spec_per_call: u64,
    /// Steps to run `compPoly p` (build the generating-extension chain).
    pub comp_build: u64,
    /// Steps for `eval codeGenerator` (code generation itself).
    pub generate: u64,
    /// Steps per call of the generated function.
    pub staged_per_call: u64,
}

/// Measures all six §3.1 computations for one polynomial.
///
/// # Errors
///
/// Propagates any pipeline error.
pub fn poly_costs(poly: &str, base: i64) -> Result<PolyCosts, Error> {
    poly_costs_with(poly, base, SessionOptions::default())
}

/// [`poly_costs`] with explicit session options (e.g. `indexed_env`).
///
/// # Errors
///
/// Propagates any pipeline error.
pub fn poly_costs_with(poly: &str, base: i64, options: SessionOptions) -> Result<PolyCosts, Error> {
    let mut s = poly_session_with(options)?;
    s.run(&format!("val thePoly = {poly}"))?;
    let interp = s.eval_expr(&format!("evalPoly ({base}, thePoly)"))?;
    s.run(mlbox::programs::SPEC_POLY)?;
    let spec_build = s.run("val specF = specPoly thePoly")?;
    let spec_call = s.eval_expr(&format!("specF {base}"))?;
    s.run(mlbox::programs::COMP_POLY)?;
    let comp_build = s.run("val theGen = compPoly thePoly")?;
    let generate = s.run("val stagedF = eval theGen")?;
    let staged_call = s.eval_expr(&format!("stagedF {base}"))?;
    Ok(PolyCosts {
        interp_per_call: interp.stats.steps,
        spec_build: spec_build.last().expect("outcome").stats.steps,
        spec_per_call: spec_call.stats.steps,
        comp_build: comp_build.last().expect("outcome").stats.steps,
        generate: generate.last().expect("outcome").stats.steps,
        staged_per_call: staged_call.stats.steps,
    })
}

/// A deep-environment access workload: `depth` nested `let` bindings,
/// whose body sums the *outermost* and innermost variables — so one access
/// must walk the whole spine. In pair-spine mode that access costs
/// `depth` dispatches (`fst^depth; snd`); in indexed mode it is a single
/// `acc` dispatch.
pub fn deep_env_program(depth: usize) -> String {
    assert!(depth >= 1, "need at least one binding");
    let mut s = String::from("let ");
    for i in 0..depth {
        if i == 0 {
            s.push_str("val v0 = 1\n");
        } else {
            s.push_str(&format!("val v{i} = v{} + 1\n", i - 1));
        }
    }
    s.push_str(&format!("in v0 + v{} end", depth - 1));
    s
}

/// An access-heavy variant of the deep-environment workload, packaged as
/// a reusable function so a benchmark can compile it once and measure
/// only environment accesses: `sweep` builds a `depth`-deep `let` nest
/// over its argument and then reads the *outermost* binding `reads`
/// times. Per call, pair-spine mode pays `reads × depth` `fst`
/// dispatches, indexed mode pays `reads` single-dispatch `acc`s that
/// each still walk `depth` pair nodes, and flat mode answers each read
/// with one bounds-checked slot load.
pub fn deep_access_program(depth: usize, reads: usize) -> String {
    assert!(depth >= 1, "need at least one binding");
    assert!(reads >= 1, "need at least one read");
    let mut s = String::from("fun sweep u = let val v0 = u\n");
    for i in 1..depth {
        s.push_str(&format!("val v{i} = v{} + 1\n", i - 1));
    }
    s.push_str("in ");
    s.push_str(&vec!["v0"; reads].join(" + "));
    s.push_str(" end");
    s
}

/// Reduction steps to evaluate [`deep_env_program`] at the given depth
/// under the given session options (the prelude is always disabled so the
/// measured environment contains exactly the workload's bindings).
///
/// # Errors
///
/// Propagates any pipeline error.
pub fn deep_env_steps(depth: usize, options: &SessionOptions) -> Result<u64, Error> {
    let mut s = Session::with_options(SessionOptions {
        prelude: false,
        ..options.clone()
    })?;
    Ok(s.eval_expr(&deep_env_program(depth))?.stats.steps)
}

/// The three environment representations the deep-env sweep compares,
/// as `(column label, options)` pairs: the paper's pair spine, fused
/// indexed accesses, and flat `Vec`-backed frames.
pub fn deep_env_modes() -> [(&'static str, SessionOptions); 3] {
    let base = SessionOptions {
        prelude: false,
        ..SessionOptions::default()
    };
    [
        ("spine", base.clone()),
        (
            "indexed",
            SessionOptions {
                indexed_env: true,
                ..base.clone()
            },
        ),
        (
            "flat",
            SessionOptions {
                flat_env: true,
                ..base
            },
        ),
    ]
}

/// Renders the deep-environment sweep as JSON (the `BENCH_deep_env.json`
/// CI artifact): one row per depth carrying the step counts of all three
/// environment representations (`steps`, `steps_indexed`,
/// `steps_flat_env`). Step counts are deterministic; flat-mode counts
/// equal indexed-mode counts by construction (same access paths), which
/// the renderer asserts.
///
/// # Errors
///
/// Propagates any pipeline error.
pub fn deep_env_json(depths: &[usize]) -> Result<String, Error> {
    let modes = deep_env_modes();
    let mut out = String::from(
        "{\n  \"title\": \"Deep-environment access: pair spine vs indexed vs flat frames\",\n  \"rows\": [\n",
    );
    for (i, &depth) in depths.iter().enumerate() {
        let [spine, indexed, flat] = [
            deep_env_steps(depth, &modes[0].1)?,
            deep_env_steps(depth, &modes[1].1)?,
            deep_env_steps(depth, &modes[2].1)?,
        ];
        assert_eq!(
            flat, indexed,
            "flat mode must dispatch exactly indexed mode's step count"
        );
        out.push_str(&format!(
            "    {{\"depth\": {depth}, \"steps\": {spine}, \"steps_indexed\": {indexed}, \"steps_flat_env\": {flat}}}{}\n",
            if i + 1 < depths.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    Ok(out)
}

/// The break-even point: how many uses amortize a one-time cost, given
/// per-use savings. `None` when the specialized path is not cheaper.
pub fn break_even(one_time: u64, per_use_before: u64, per_use_after: u64) -> Option<u64> {
    let saving = per_use_before.checked_sub(per_use_after)?;
    if saving == 0 {
        return None;
    }
    Some(one_time.div_ceil(saving))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let rows = vec![
            Row::with_paper("evalPoly (47, polyl)", 807, 0, 807),
            Row::new("extra", 1, 2),
        ];
        let t = render_table("Table 1", &rows);
        assert!(t.contains("Computation"));
        assert!(t.contains("807"));
        assert!(t.contains('—'));
    }

    #[test]
    fn json_rendering_includes_freeze_cache_counters() {
        let rows = vec![
            Row::with_paper("evalpf \"quoted\"", 10, 0, 9163),
            Row::new("extra", 1, 2),
        ];
        let stats = ccam::machine::Stats {
            freezes: 3,
            freeze_hits: 7,
            calls: 10,
            steps: 123,
            ..Default::default()
        };
        let j = render_json("Table 1", &rows, &[], &[], &[], &[], &stats, None, &[]);
        assert!(j.contains("\"freezes\": 3"), "{j}");
        assert!(j.contains("\"freeze_hits\": 7"), "{j}");
        assert!(j.contains("\"paper\": null"), "{j}");
        assert!(j.contains("evalpf \\\"quoted\\\""), "{j}");
        assert!(!j.contains("dispatch"), "empty dispatch is omitted: {j}");
        assert!(!j.contains("rows_fused"), "empty fused is omitted: {j}");
        assert!(!j.contains("rows_flat_env"), "empty flat is omitted: {j}");
        assert!(!j.contains("rows_native"), "empty native is omitted: {j}");
        let d = DispatchRow {
            label: "d".into(),
            steps: 2_000,
            nanos: 1_000_000,
        };
        let j = render_json("Table 1", &rows, &[], &[], &[], &[], &stats, None, &[d]);
        assert!(j.contains("\"steps_per_sec\": 2000000"), "{j}");
    }

    #[test]
    fn poly_literal_is_deterministic_and_sized() {
        let a = poly_literal(5, 9);
        let b = poly_literal(5, 9);
        assert_eq!(a, b);
        assert_eq!(a.matches(',').count(), 5);
    }

    #[test]
    fn poly_costs_have_the_papers_shape() {
        let c = poly_costs("[2, 4, 0, 2333]", 47).unwrap();
        // Table 1 shape: staged per-call ≪ spec per-call < interpreted.
        assert!(c.staged_per_call < c.spec_per_call, "{c:?}");
        assert!(c.spec_per_call < c.interp_per_call, "{c:?}");
        assert!(c.generate > 0 && c.comp_build > 0 && c.spec_build > 0);
    }

    #[test]
    fn json_rendering_includes_indexed_comparison() {
        let rows = vec![Row::with_paper("r", 100, 0, 90).with_indexed(60)];
        let stats = ccam::machine::Stats::default();
        let j = render_json("t", &rows, &[], &[], &[], &[], &stats, None, &[]);
        assert!(j.contains("\"steps_indexed\": 60"), "{j}");
    }

    #[test]
    fn json_fused_rows_never_share_lines_with_the_mode_columns() {
        // The CI golden diff greps `"steps_indexed"|"freeze_cache"` for
        // the default/indexed pin, `"steps_fused"` for the fused pin,
        // `"steps_flat_env"` for the flat pin, and `"steps_native"` for
        // the native pin: the four line sets must be pairwise disjoint
        // so each lockfile diff sees only its own column.
        let rows = vec![Row::with_paper("r", 100, 0, 90).with_indexed(60)];
        let fused = vec![Row::new("r", 80, 0)];
        let flat = vec![Row::new("r", 60, 0)];
        let native = vec![Row::new("r", 100, 0)];
        let tiered = vec![Row::new("r", 100, 0)];
        let stats = ccam::machine::Stats::default();
        let j = render_json(
            "t",
            &rows,
            &fused,
            &flat,
            &native,
            &tiered,
            &stats,
            Some(&stats),
            &[],
        );
        assert!(j.contains("\"rows_fused\""), "{j}");
        assert!(j.contains("\"rows_flat_env\""), "{j}");
        assert!(j.contains("\"rows_native\""), "{j}");
        assert!(j.contains("\"rows_tiered\""), "{j}");
        assert!(j.contains("\"tier_controller\""), "{j}");
        for line in j.lines() {
            if line.contains("\"steps_fused\"") {
                assert!(!line.contains("\"steps_indexed\""), "{line}");
                assert!(!line.contains("\"steps_flat_env\""), "{line}");
                assert!(!line.contains("\"steps_native\""), "{line}");
                assert!(!line.contains("\"freeze_cache\""), "{line}");
                assert_eq!(
                    line.trim().trim_end_matches(','),
                    "{\"label\": \"r\", \"steps_fused\": 80, \"emitted\": 0}"
                );
            }
            if line.contains("\"steps_flat_env\"") {
                assert!(!line.contains("\"steps_indexed\""), "{line}");
                assert!(!line.contains("\"steps_fused\""), "{line}");
                assert!(!line.contains("\"steps_native\""), "{line}");
                assert!(!line.contains("\"freeze_cache\""), "{line}");
                assert_eq!(
                    line.trim().trim_end_matches(','),
                    "{\"label\": \"r\", \"steps_flat_env\": 60, \"emitted\": 0}"
                );
            }
            if line.contains("\"steps_native\"") {
                assert!(!line.contains("\"steps_indexed\""), "{line}");
                assert!(!line.contains("\"steps_fused\""), "{line}");
                assert!(!line.contains("\"steps_flat_env\""), "{line}");
                assert!(!line.contains("\"steps_tiered\""), "{line}");
                assert!(!line.contains("\"freeze_cache\""), "{line}");
                assert_eq!(
                    line.trim().trim_end_matches(','),
                    "{\"label\": \"r\", \"steps_native\": 100, \"emitted\": 0}"
                );
            }
            if line.contains("\"steps_tiered\"") {
                assert!(!line.contains("\"steps_indexed\""), "{line}");
                assert!(!line.contains("\"steps_fused\""), "{line}");
                assert!(!line.contains("\"steps_flat_env\""), "{line}");
                assert!(!line.contains("\"steps_native\""), "{line}");
                assert!(!line.contains("\"freeze_cache\""), "{line}");
                assert_eq!(
                    line.trim().trim_end_matches(','),
                    "{\"label\": \"r\", \"steps_tiered\": 100, \"emitted\": 0}"
                );
            }
        }
    }

    #[test]
    fn deep_env_microbench_favors_indexed_mode() {
        let [(_, spine_opts), (_, indexed_opts), (_, flat_opts)] = deep_env_modes();
        let depth = 48;
        let spine = deep_env_steps(depth, &spine_opts).unwrap();
        let indexed = deep_env_steps(depth, &indexed_opts).unwrap();
        assert!(
            indexed < spine,
            "indexed mode must need fewer steps on deep environments \
             (indexed {indexed} vs spine {spine} at depth {depth})"
        );
        // Flat mode dispatches the identical access paths; only the
        // machine-level representation (and wall clock) differs.
        let flat = deep_env_steps(depth, &flat_opts).unwrap();
        assert_eq!(flat, indexed, "flat step counts equal indexed");
        // The gap grows with depth: the deep access is O(depth) vs O(1).
        let spine_gap = deep_env_steps(2 * depth, &spine_opts).unwrap() - spine;
        let indexed_gap = deep_env_steps(2 * depth, &indexed_opts).unwrap() - indexed;
        assert!(indexed_gap < spine_gap, "{indexed_gap} vs {spine_gap}");
    }

    #[test]
    fn deep_access_program_agrees_across_modes_and_flat_saves_steps() {
        let src = deep_access_program(16, 8);
        let mut per_mode = Vec::new();
        for (name, opts) in deep_env_modes() {
            let mut s = Session::with_options(opts).unwrap();
            s.run(&src).unwrap();
            let (v, stats) = s.call("sweep", ccam::value::Value::Int(1)).unwrap();
            // depth-16 nest over u=1, eight reads of v0 (= u).
            assert_eq!(v.to_string(), "8", "{name}");
            per_mode.push((name, stats.steps));
        }
        let (spine, indexed, flat) = (per_mode[0].1, per_mode[1].1, per_mode[2].1);
        assert_eq!(flat, indexed, "flat step counts equal indexed");
        assert!(
            indexed < spine,
            "per-call sweep must cost fewer dispatches off the spine \
             (indexed {indexed} vs spine {spine})"
        );
    }

    #[test]
    fn deep_env_json_carries_all_three_columns() {
        let j = deep_env_json(&[4, 8]).unwrap();
        assert!(j.contains("\"depth\": 4"), "{j}");
        assert!(j.contains("\"steps\": "), "{j}");
        assert!(j.contains("\"steps_indexed\": "), "{j}");
        assert!(j.contains("\"steps_flat_env\": "), "{j}");
        assert_eq!(j.matches("\"depth\"").count(), 2, "{j}");
    }

    #[test]
    fn break_even_math() {
        assert_eq!(break_even(100, 30, 10), Some(5));
        assert_eq!(break_even(100, 10, 30), None);
        assert_eq!(break_even(100, 10, 10), None);
    }
}
