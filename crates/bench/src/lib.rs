//! Shared measurement helpers for the Table 1 regeneration binary
//! (`table1`) and the Criterion benches.
//!
//! The paper's metric is **CCAM reduction steps** (Table 1); the Criterion
//! benches additionally report wall-clock time of the simulator, which
//! tracks steps closely.

use mlbox::{Error, Session, SessionOptions};

/// A measurement row: a computation's label and its reduction steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// What was measured (the paper's "Computation" column).
    pub label: String,
    /// CCAM reduction steps (default pair-spine environment mode — the
    /// paper's cost model).
    pub steps: u64,
    /// Instructions emitted into arenas during the computation.
    pub emitted: u64,
    /// The paper's reported number, when the row reproduces one.
    pub paper: Option<u64>,
    /// Steps for the same computation under `indexed_env` (fused `acc`
    /// accesses), when the comparison was measured.
    pub indexed_steps: Option<u64>,
}

impl Row {
    /// A row with a paper reference number.
    pub fn with_paper(label: impl Into<String>, steps: u64, emitted: u64, paper: u64) -> Row {
        Row {
            label: label.into(),
            steps,
            emitted,
            paper: Some(paper),
            indexed_steps: None,
        }
    }

    /// A row without a paper reference.
    pub fn new(label: impl Into<String>, steps: u64, emitted: u64) -> Row {
        Row {
            label: label.into(),
            steps,
            emitted,
            paper: None,
            indexed_steps: None,
        }
    }

    /// Attaches the indexed-mode measurement of the same computation.
    #[must_use]
    pub fn with_indexed(mut self, steps: u64) -> Row {
        self.indexed_steps = Some(steps);
        self
    }
}

/// Renders rows as an aligned text table (Computation / Reductions /
/// Emitted / Paper).
pub fn render_table(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(11)
        .max("Computation".len());
    out.push_str(&format!(
        "{:label_w$}  {:>10}  {:>8}  {:>10}\n",
        "Computation", "Reductions", "Emitted", "Paper"
    ));
    out.push_str(&format!(
        "{}  {}  {}  {}\n",
        "-".repeat(label_w),
        "-".repeat(10),
        "-".repeat(8),
        "-".repeat(10)
    ));
    for r in rows {
        let paper = r
            .paper
            .map(|p| p.to_string())
            .unwrap_or_else(|| "—".to_string());
        out.push_str(&format!(
            "{:label_w$}  {:>10}  {:>8}  {:>10}\n",
            r.label, r.steps, r.emitted, paper
        ));
    }
    out
}

/// Renders the Table 1 rows plus the machine's freeze-cache counters as
/// a JSON object (hand-rolled: the workspace carries no serialization
/// dependency). `machine` should be the cumulative [`Stats`] of the
/// session that produced the packet-filter rows, so `freezes` and
/// `freeze_hits` describe how often generated code was actually copied
/// out of an arena versus served from the cache.
///
/// [`Stats`]: ccam::machine::Stats
pub fn render_json(title: &str, rows: &[Row], machine: &ccam::machine::Stats) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"title\": \"{}\",\n  \"rows\": [\n",
        esc(title)
    ));
    for (i, r) in rows.iter().enumerate() {
        let paper = r
            .paper
            .map(|p| p.to_string())
            .unwrap_or_else(|| "null".to_string());
        let indexed = r
            .indexed_steps
            .map(|s| s.to_string())
            .unwrap_or_else(|| "null".to_string());
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"steps\": {}, \"steps_indexed\": {}, \"emitted\": {}, \"paper\": {}}}{}\n",
            esc(&r.label),
            r.steps,
            indexed,
            r.emitted,
            paper,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"freeze_cache\": {{\"freezes\": {}, \"freeze_hits\": {}, \"calls\": {}, \"steps\": {}}}\n}}",
        machine.freezes, machine.freeze_hits, machine.calls, machine.steps
    ));
    out
}

/// A session preloaded with the paper's interpretive polynomial program
/// (`evalPoly` and `polyl` — §3.1); the staging declarations are *not*
/// yet run so their cost can be measured.
///
/// # Errors
///
/// Propagates any pipeline error.
pub fn poly_session() -> Result<Session, Error> {
    poly_session_with(SessionOptions::default())
}

/// [`poly_session`] with explicit session options (e.g. `indexed_env`).
///
/// # Errors
///
/// Propagates any pipeline error.
pub fn poly_session_with(options: SessionOptions) -> Result<Session, Error> {
    let mut s = Session::with_options(options)?;
    s.run(mlbox::programs::EVAL_POLY)?;
    Ok(s)
}

/// Builds a polynomial of the given degree (degree+1 coefficients) as an
/// MLbox list literal, deterministic in `seed`.
pub fn poly_literal(degree: usize, seed: u64) -> String {
    // A simple LCG keeps this deterministic without threading an RNG.
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut items = Vec::with_capacity(degree + 1);
    for _ in 0..=degree {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        items.push(((state >> 33) % 1000).to_string());
    }
    format!("[{}]", items.join(", "))
}

/// Measured costs for the six §3.1 computations on one polynomial.
#[derive(Debug, Clone, Copy)]
pub struct PolyCosts {
    /// Steps to interpret `evalPoly (x, p)` once.
    pub interp_per_call: u64,
    /// Steps to run `specPoly p` (closure-building specialization).
    pub spec_build: u64,
    /// Steps per call of the `specPoly` result.
    pub spec_per_call: u64,
    /// Steps to run `compPoly p` (build the generating-extension chain).
    pub comp_build: u64,
    /// Steps for `eval codeGenerator` (code generation itself).
    pub generate: u64,
    /// Steps per call of the generated function.
    pub staged_per_call: u64,
}

/// Measures all six §3.1 computations for one polynomial.
///
/// # Errors
///
/// Propagates any pipeline error.
pub fn poly_costs(poly: &str, base: i64) -> Result<PolyCosts, Error> {
    poly_costs_with(poly, base, SessionOptions::default())
}

/// [`poly_costs`] with explicit session options (e.g. `indexed_env`).
///
/// # Errors
///
/// Propagates any pipeline error.
pub fn poly_costs_with(poly: &str, base: i64, options: SessionOptions) -> Result<PolyCosts, Error> {
    let mut s = poly_session_with(options)?;
    s.run(&format!("val thePoly = {poly}"))?;
    let interp = s.eval_expr(&format!("evalPoly ({base}, thePoly)"))?;
    s.run(mlbox::programs::SPEC_POLY)?;
    let spec_build = s.run("val specF = specPoly thePoly")?;
    let spec_call = s.eval_expr(&format!("specF {base}"))?;
    s.run(mlbox::programs::COMP_POLY)?;
    let comp_build = s.run("val theGen = compPoly thePoly")?;
    let generate = s.run("val stagedF = eval theGen")?;
    let staged_call = s.eval_expr(&format!("stagedF {base}"))?;
    Ok(PolyCosts {
        interp_per_call: interp.stats.steps,
        spec_build: spec_build.last().expect("outcome").stats.steps,
        spec_per_call: spec_call.stats.steps,
        comp_build: comp_build.last().expect("outcome").stats.steps,
        generate: generate.last().expect("outcome").stats.steps,
        staged_per_call: staged_call.stats.steps,
    })
}

/// A deep-environment access workload: `depth` nested `let` bindings,
/// whose body sums the *outermost* and innermost variables — so one access
/// must walk the whole spine. In pair-spine mode that access costs
/// `depth` dispatches (`fst^depth; snd`); in indexed mode it is a single
/// `acc` dispatch.
pub fn deep_env_program(depth: usize) -> String {
    assert!(depth >= 1, "need at least one binding");
    let mut s = String::from("let ");
    for i in 0..depth {
        if i == 0 {
            s.push_str("val v0 = 1\n");
        } else {
            s.push_str(&format!("val v{i} = v{} + 1\n", i - 1));
        }
    }
    s.push_str(&format!("in v0 + v{} end", depth - 1));
    s
}

/// Reduction steps to evaluate [`deep_env_program`] at the given depth,
/// with or without `indexed_env`. The session runs without the prelude so
/// the measured environment contains exactly the workload's bindings.
///
/// # Errors
///
/// Propagates any pipeline error.
pub fn deep_env_steps(depth: usize, indexed: bool) -> Result<u64, Error> {
    let mut s = Session::with_options(SessionOptions {
        prelude: false,
        indexed_env: indexed,
        ..SessionOptions::default()
    })?;
    Ok(s.eval_expr(&deep_env_program(depth))?.stats.steps)
}

/// The break-even point: how many uses amortize a one-time cost, given
/// per-use savings. `None` when the specialized path is not cheaper.
pub fn break_even(one_time: u64, per_use_before: u64, per_use_after: u64) -> Option<u64> {
    let saving = per_use_before.checked_sub(per_use_after)?;
    if saving == 0 {
        return None;
    }
    Some(one_time.div_ceil(saving))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let rows = vec![
            Row::with_paper("evalPoly (47, polyl)", 807, 0, 807),
            Row::new("extra", 1, 2),
        ];
        let t = render_table("Table 1", &rows);
        assert!(t.contains("Computation"));
        assert!(t.contains("807"));
        assert!(t.contains('—'));
    }

    #[test]
    fn json_rendering_includes_freeze_cache_counters() {
        let rows = vec![
            Row::with_paper("evalpf \"quoted\"", 10, 0, 9163),
            Row::new("extra", 1, 2),
        ];
        let stats = ccam::machine::Stats {
            freezes: 3,
            freeze_hits: 7,
            calls: 10,
            steps: 123,
            ..Default::default()
        };
        let j = render_json("Table 1", &rows, &stats);
        assert!(j.contains("\"freezes\": 3"), "{j}");
        assert!(j.contains("\"freeze_hits\": 7"), "{j}");
        assert!(j.contains("\"paper\": null"), "{j}");
        assert!(j.contains("evalpf \\\"quoted\\\""), "{j}");
    }

    #[test]
    fn poly_literal_is_deterministic_and_sized() {
        let a = poly_literal(5, 9);
        let b = poly_literal(5, 9);
        assert_eq!(a, b);
        assert_eq!(a.matches(',').count(), 5);
    }

    #[test]
    fn poly_costs_have_the_papers_shape() {
        let c = poly_costs("[2, 4, 0, 2333]", 47).unwrap();
        // Table 1 shape: staged per-call ≪ spec per-call < interpreted.
        assert!(c.staged_per_call < c.spec_per_call, "{c:?}");
        assert!(c.spec_per_call < c.interp_per_call, "{c:?}");
        assert!(c.generate > 0 && c.comp_build > 0 && c.spec_build > 0);
    }

    #[test]
    fn json_rendering_includes_indexed_comparison() {
        let rows = vec![Row::with_paper("r", 100, 0, 90).with_indexed(60)];
        let stats = ccam::machine::Stats::default();
        let j = render_json("t", &rows, &stats);
        assert!(j.contains("\"steps_indexed\": 60"), "{j}");
    }

    #[test]
    fn deep_env_microbench_favors_indexed_mode() {
        let depth = 48;
        let spine = deep_env_steps(depth, false).unwrap();
        let indexed = deep_env_steps(depth, true).unwrap();
        assert!(
            indexed < spine,
            "indexed mode must need fewer steps on deep environments \
             (indexed {indexed} vs spine {spine} at depth {depth})"
        );
        // The gap grows with depth: the deep access is O(depth) vs O(1).
        let spine_gap = deep_env_steps(2 * depth, false).unwrap() - spine;
        let indexed_gap = deep_env_steps(2 * depth, true).unwrap() - indexed;
        assert!(indexed_gap < spine_gap, "{indexed_gap} vs {spine_gap}");
    }

    #[test]
    fn break_even_math() {
        assert_eq!(break_even(100, 30, 10), Some(5));
        assert_eq!(break_even(100, 10, 30), None);
        assert_eq!(break_even(100, 10, 10), None);
    }
}
