//! Regenerates the paper's **Table 1** ("Reduction steps on the CCAM for
//! various functions in the text") and the extension sweeps.
//!
//! Usage:
//!
//! ```text
//! table1             # the Table 1 reproduction
//! table1 --json      # the same rows as JSON, plus an indexed-env
//!                    # comparison column, fused-mode, flat-env, and
//!                    # native-tier sections (rows_fused, rows_flat_env,
//!                    # rows_native), and freeze-cache counters
//! table1 --profile-pairs # dynamic opcode-pair histogram of the Table 1
//!                    # workloads (the superinstruction selection data)
//! table1 sweep-poly  # polynomial-degree sweep (E6)
//! table1 sweep-filter# filter-length sweep (E6)
//! table1 crossover   # amortization break-even analysis (E6)
//! table1 memo        # memoization measurements (E4)
//! table1 deep-env    # pair-spine vs indexed vs flat access on deep
//!                    # environments (--json: the BENCH_deep_env rows)
//! table1 all         # everything
//! ```
//!
//! Absolute numbers differ from the paper (our CCAM's extension
//! instruction inventory is a reconstruction — DESIGN.md §3.1); the
//! *shape* of the results is asserted in `tests/` and recorded in
//! EXPERIMENTS.md.

use mlbox::SessionOptions;
use mlbox_bench::{
    break_even, deep_env_steps, poly_costs, poly_literal, render_table, table1_rows, Row,
};
use mlbox_bpf::filters::{chain_filter, telnet_filter};
use mlbox_bpf::harness::FilterHarness;
use mlbox_bpf::packet::PacketGen;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let limit = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or(40usize);
        args.drain(i..args.len().min(i + 2));
        trace(limit);
        return;
    }
    if args.iter().any(|a| a == "--profile-pairs") {
        profile_pairs();
        return;
    }
    let json = args.iter().any(|a| a == "--json");
    let mode = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "table1".into());
    let run = |name: &str| mode == name || mode == "all";
    if run("table1") {
        table1(json);
    }
    if run("sweep-poly") {
        sweep_poly();
    }
    if run("sweep-filter") {
        sweep_filter();
    }
    if run("crossover") {
        crossover();
    }
    if run("memo") {
        memo();
    }
    if run("optimize") {
        optimize_ablation();
    }
    if run("deep-env") {
        deep_env(json && mode == "deep-env");
    }
}

/// `--trace N`: prints the first `N` executed instructions of the
/// Table 1 staged polynomial call (`mlPolyFun 47`) as
/// `(block, pc, mnemonic)` triples — the machine's bounded execution
/// trace over the flat code segment.
fn trace(limit: usize) {
    let mut s = mlbox::Session::new().expect("session");
    s.run(mlbox::programs::EVAL_POLY).expect("evalPoly");
    s.run(mlbox::programs::COMP_POLY).expect("compPoly");
    s.set_trace(limit);
    let out = s.eval_expr("mlPolyFun 47").expect("call");
    println!("first {limit} executed instructions of `mlPolyFun 47` (block, pc, mnemonic):");
    let t = s.trace().expect("tracing enabled");
    for e in &t.entries {
        println!("  L{:<5} pc {:<4} {}", e.block, e.pc, e.mnemonic);
    }
    println!(
        "… {} of {} steps shown; result {}",
        t.entries.len(),
        out.stats.steps,
        out.value
    );
}

/// `--profile-pairs`: runs the Table 1 workloads (polynomials + telnet
/// filter) with the machine's dynamic opcode-pair histogram enabled and
/// prints the hottest adjacent pairs — the measurement behind the fused
/// superinstruction selection (DESIGN.md §11, EXPERIMENTS.md). Pairs a
/// fused opcode already covers are annotated with its mnemonic.
fn profile_pairs() {
    use ccam::instr::{OPCODE_COUNT, OPCODE_NAMES};
    let mut hist = vec![[0u64; OPCODE_COUNT]; OPCODE_COUNT];
    let mut merge = |p: Option<&ccam::machine::PairCounts>| {
        let p = p.expect("profiling enabled");
        for (row, src) in hist.iter_mut().zip(p.iter()) {
            for (c, s) in row.iter_mut().zip(src.iter()) {
                *c += s;
            }
        }
    };

    // Polynomial workloads: interpret, generate, run staged.
    let mut s = mlbox::Session::new().expect("session");
    s.set_profile_pairs(true);
    s.run(mlbox::programs::EVAL_POLY).expect("evalPoly");
    s.run(mlbox::programs::COMP_POLY).expect("compPoly");
    s.eval_expr("evalPoly (47, polyl)").expect("interp");
    s.run("val f = eval (compPoly polyl)").expect("generate");
    s.eval_expr("f 47").expect("staged call");
    merge(s.pair_profile());

    // Telnet filter workloads: interpret, specialize, run specialized.
    let mut h = FilterHarness::new(&telnet_filter()).expect("harness");
    h.session_mut().set_profile_pairs(true);
    let telnet = PacketGen::new(1998).telnet(32);
    h.interp(&telnet).expect("interp");
    h.specialize().expect("specialize");
    h.specialized(&telnet).expect("specialized");
    merge(h.session_mut().pair_profile());

    /// The fused opcode that covers an adjacent pair, if one exists.
    fn fused_as(a: &str, b: &str) -> Option<&'static str> {
        match (a, b) {
            ("push", "acc" | "snd") => Some("push_acc"),
            ("push", "quote") => Some("push_quote"),
            ("quote", "cons") => Some("quote_cons"),
            ("swap", "cons") => Some("swap_cons"),
            ("cons", "app") => Some("cons_app"),
            ("acc" | "snd", "app") => Some("acc_app"),
            ("fst", "fst" | "snd" | "acc") => Some("acc (chain collapse)"),
            _ => None,
        }
    }

    let total: u64 = hist.iter().flatten().sum();
    let mut pairs: Vec<(u64, usize, usize)> = Vec::new();
    for (a, row) in hist.iter().enumerate() {
        for (b, &count) in row.iter().enumerate() {
            if count > 0 {
                pairs.push((count, a, b));
            }
        }
    }
    pairs.sort_by_key(|p| std::cmp::Reverse(p.0));
    println!("Dynamic opcode-pair frequency over the Table 1 workloads ({total} adjacent pairs)");
    println!(
        "{:>4}  {:>7}  {:>5}  {:22}  fused as",
        "rank", "count", "share", "pair"
    );
    let mut covered = 0u64;
    for (rank, (count, a, b)) in pairs.iter().take(16).enumerate() {
        let (an, bn) = (OPCODE_NAMES[*a], OPCODE_NAMES[*b]);
        let fused = fused_as(an, bn);
        if fused.is_some() {
            covered += count;
        }
        println!(
            "{:>4}  {:>7}  {:>4.1}%  {:22}  {}",
            rank + 1,
            count,
            100.0 * *count as f64 / total as f64,
            format!("{an}; {bn}"),
            fused.unwrap_or("—")
        );
    }
    println!(
        "top-16 pairs covered by a fused opcode: {:.1}% of all adjacent dispatches\n",
        100.0 * covered as f64 / total as f64
    );
}

/// Environment-representation comparison: reduction steps for a deep
/// `let` nest under the default pair-spine accesses, `indexed_env`, and
/// `flat_env` frames. With `json`, emits the `BENCH_deep_env.json`
/// artifact shape instead.
fn deep_env(json: bool) {
    const DEPTHS: [usize; 6] = [4, 8, 16, 32, 64, 128];
    if json {
        println!(
            "{}",
            mlbox_bench::deep_env_json(&DEPTHS).expect("deep-env sweep")
        );
        return;
    }
    let [(_, spine_opts), (_, indexed_opts), (_, flat_opts)] = mlbox_bench::deep_env_modes();
    println!("Deep-environment access (nested lets, one walk to the outermost binding)");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "depth", "spine", "indexed", "flat"
    );
    for depth in DEPTHS {
        let spine = deep_env_steps(depth, &spine_opts).expect("spine run");
        let indexed = deep_env_steps(depth, &indexed_opts).expect("indexed run");
        let flat = deep_env_steps(depth, &flat_opts).expect("flat run");
        println!("{depth:>8} {spine:>12} {indexed:>12} {flat:>12}");
    }
    println!();
}

/// §4.2 ablation: the emission-time optimizer ("a more sophisticated
/// specialization system might ... eliminate the instruction altogether
/// if either [operand] is 0") on the Table 1 workloads.
fn optimize_ablation() {
    use mlbox::{Session, SessionOptions};
    let measure = |optimize: bool| {
        let mut s = Session::with_options(SessionOptions {
            optimize,
            ..Default::default()
        })
        .expect("session");
        s.run(mlbox::programs::EVAL_POLY).expect("evalPoly");
        s.run(mlbox::programs::COMP_POLY).expect("compPoly");
        let gen = s.run("val f = eval (compPoly polyl)").expect("generate");
        let call = s.eval_expr("f 47").expect("call");
        (
            gen.last().expect("outcome").stats.steps,
            call.stats.steps,
            call.value.clone(),
        )
    };
    let (gen_plain, call_plain, v1) = measure(false);
    let (gen_opt, call_opt, v2) = measure(true);
    assert_eq!(v1, v2);
    println!("Emission-time optimizer ablation (compPoly polyl; polyl has a 0 coefficient)");
    println!("  plain:     generate {gen_plain:>5} steps, specialized call {call_plain:>4} steps");
    println!("  optimized: generate {gen_opt:>5} steps, specialized call {call_opt:>4} steps");
    println!(
        "  per-call saving {:.0}% for {:.0}% extra generation work\n",
        100.0 * (call_plain - call_opt) as f64 / call_plain as f64,
        100.0 * (gen_opt as f64 - gen_plain as f64) / gen_plain as f64
    );

    let filter = mlbox_bpf::filters::telnet_filter();
    let mut packets = PacketGen::new(2027);
    let telnet = packets.telnet(16);
    let mut plain = FilterHarness::new(&filter).expect("harness");
    let mut opt = FilterHarness::with_options(
        &filter,
        SessionOptions {
            optimize: true,
            ..Default::default()
        },
    )
    .expect("harness");
    let gp = plain.specialize().expect("gen");
    let go = opt.specialize().expect("gen");
    let (_, sp) = plain.specialized(&telnet).expect("run");
    let (_, so) = opt.specialized(&telnet).expect("run");
    println!(
        "Telnet filter: plain gen {} / call {}; optimized gen {} / call {}\n",
        gp.steps, sp, go.steps, so
    );
}

/// The Table 1 reproduction: packet-filter rows measured through the BPF
/// harness, polynomial rows via the §3.1 programs. With `json`, the rows
/// are emitted as a JSON object that additionally carries an indexed-env
/// comparison column (`steps_indexed`) and the harness session's
/// freeze-cache counters.
fn table1(json: bool) {
    let (rows, stats) = table1_rows(&SessionOptions::default());

    if json {
        let (indexed_rows, _) = table1_rows(&SessionOptions {
            indexed_env: true,
            ..SessionOptions::default()
        });
        let rows: Vec<Row> = rows
            .into_iter()
            .zip(indexed_rows)
            .map(|(r, ir)| r.with_indexed(ir.steps))
            .collect();
        let fuse_options = SessionOptions {
            fuse: true,
            ..SessionOptions::default()
        };
        let native_options = SessionOptions {
            native: true,
            ..SessionOptions::default()
        };
        let (fused_rows, _) = table1_rows(&fuse_options);
        let (flat_rows, _) = table1_rows(&SessionOptions {
            flat_env: true,
            ..SessionOptions::default()
        });
        let (native_rows, _) = table1_rows(&native_options);
        let (tiered_rows, tiered_stats) =
            mlbox_bench::table1_rows_tiered(mlbox::TierPolicy::default());
        let mut dispatch = mlbox_bench::dispatch_throughput(2_000).expect("dispatch");
        dispatch.extend(
            mlbox_bench::dispatch_throughput_with(2_000, &fuse_options).expect("fused dispatch"),
        );
        dispatch.extend(
            mlbox_bench::dispatch_throughput_with(2_000, &native_options).expect("native dispatch"),
        );
        println!(
            "{}",
            mlbox_bench::render_json(
                "Table 1: Reduction steps on the CCAM for various functions in the text",
                &rows,
                &fused_rows,
                &flat_rows,
                &native_rows,
                &tiered_rows,
                &stats,
                Some(&tiered_stats),
                &dispatch,
            )
        );
        return;
    }
    println!(
        "{}",
        render_table(
            "Table 1: Reduction steps on the CCAM for various functions in the text",
            &rows
        )
    );
    let (interp_steps, run_steps_n) = (rows[0].steps, rows[3].steps);
    let (interp_per_call, staged_per_call) = (rows[4].steps, rows[9].steps);
    println!(
        "shape checks: bevalpf nth / evalpf = {:.2}x cheaper (paper {:.2}x); \
         mlPolyFun / evalPoly = {:.2}x cheaper (paper {:.2}x)\n",
        interp_steps as f64 / run_steps_n as f64,
        9163.0 / 1104.0,
        interp_per_call as f64 / staged_per_call as f64,
        807.0 / 74.0,
    );
}

/// Polynomial-degree sweep: one-time and per-call costs as the degree
/// grows (all three §3.1 strategies).
fn sweep_poly() {
    println!("Polynomial degree sweep (base 47, random coefficients, seed 7)");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "degree", "interp/call", "spec build", "spec/call", "gen(once)", "staged/call", "breakeven"
    );
    for degree in [0usize, 1, 2, 3, 5, 8, 12, 16, 24, 32, 48, 64] {
        let poly = poly_literal(degree, 7);
        let c = poly_costs(&poly, 47).expect("poly costs");
        let be = break_even(
            c.comp_build + c.generate,
            c.interp_per_call,
            c.staged_per_call,
        )
        .map(|n| n.to_string())
        .unwrap_or_else(|| "never".into());
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            degree,
            c.interp_per_call,
            c.spec_build,
            c.spec_per_call,
            c.comp_build + c.generate,
            c.staged_per_call,
            be
        );
    }
    println!();
}

/// Filter-length sweep: interpretation cost grows with program length;
/// specialized cost stays flat (per reached instruction).
fn sweep_filter() {
    println!("Filter length sweep (chain filters, one ldb + n fall-through tests)");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "length", "interp/pkt", "gen(once)", "staged/pkt", "breakeven"
    );
    for n in [0usize, 2, 4, 8, 16, 32, 64] {
        let filter = chain_filter(n);
        let mut h = FilterHarness::new(&filter).expect("harness");
        let pkt = mlbox_bpf::packet::Packet {
            bytes: vec![42, 0, 0, 0],
            kind: mlbox_bpf::packet::PacketKind::Arp,
        };
        let (_, interp) = h.interp(&pkt).expect("interp");
        let gen = h.specialize().expect("gen");
        let (_, staged) = h.specialized(&pkt).expect("staged");
        let be = break_even(gen.steps, interp, staged)
            .map(|x| x.to_string())
            .unwrap_or_else(|| "never".into());
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>10}",
            filter.len(),
            interp,
            gen.steps,
            staged,
            be
        );
    }
    println!();
}

/// Amortization crossover for the telnet filter: total steps of
/// interpreting n packets vs generating once + running specialized code
/// n times.
fn crossover() {
    let filter = telnet_filter();
    let mut h = FilterHarness::new(&filter).expect("harness");
    let mut packets = PacketGen::new(2026);
    let telnet = packets.telnet(32);
    let (_, interp) = h.interp(&telnet).expect("interp");
    let gen = h.specialize().expect("gen");
    let (_, staged) = h.specialized(&telnet).expect("staged");
    println!("Amortization (telnet filter, telnet packets)");
    println!(
        "  interpreted: {interp} steps/packet; generation: {} steps once; specialized: {staged} steps/packet",
        gen.steps
    );
    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "packets", "interp total", "staged total", "winner"
    );
    for n in [1u64, 2, 3, 5, 10, 30, 100, 1000] {
        let it = interp * n;
        let st = gen.steps + staged * n;
        println!(
            "{:>10} {:>14} {:>14} {:>8}",
            n,
            it,
            st,
            if st < it { "staged" } else { "interp" }
        );
    }
    match break_even(gen.steps, interp, staged) {
        Some(n) => println!("  break-even at {n} packet(s)\n"),
        None => println!("  staged never wins\n"),
    }
}

/// Memoization (E4): memoPower1 hit/miss, memoPower2 sharing, and the
/// memoizing staged packet-filter generator.
fn memo() {
    let mut s = mlbox::Session::new().expect("session");
    s.run(mlbox::programs::CODE_POWER).expect("codePower");
    s.run(mlbox::programs::MEMO_POWER1).expect("memoPower1");
    let miss = s.eval_expr("memoPower1 16 2").expect("miss");
    let hit = s.eval_expr("memoPower1 16 2").expect("hit");
    println!(
        "memoPower1 16: miss {} steps ({} emitted), hit {} steps ({} emitted)",
        miss.stats.steps, miss.stats.emitted, hit.stats.steps, hit.stats.emitted
    );

    let mut s2 = mlbox::Session::new().expect("session");
    s2.run(mlbox::programs::MEMO_POWER2).expect("memoPower2");
    let first = s2.eval_expr("memoPower2 60 2").expect("60");
    let shared = s2.eval_expr("memoPower2 34 2").expect("34");
    let mut s3 = mlbox::Session::new().expect("session");
    s3.run(mlbox::programs::MEMO_POWER2).expect("memoPower2");
    let cold = s3.eval_expr("memoPower2 34 2").expect("34 cold");
    println!(
        "memoPower2: 2^60 first {} steps; then 2^34 {} steps (vs {} cold) — generating extensions shared",
        first.stats.steps, shared.stats.steps, cold.stats.steps
    );

    let filter = telnet_filter();
    let mut h1 = FilterHarness::new(&filter).expect("harness");
    let plain = h1.specialize().expect("plain");
    let mut h2 = FilterHarness::new(&filter).expect("harness");
    let memo = h2.specialize_memo().expect("memo");
    println!(
        "bevalpf generation: plain {} steps / {} emitted; per-pc memoized {} steps / {} emitted\n",
        plain.steps, plain.emitted, memo.steps, memo.emitted
    );
}
