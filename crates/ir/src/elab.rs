//! Elaboration: surface AST → core IR.
//!
//! Responsibilities:
//!
//! - **scope resolution** — every identifier is resolved to a value
//!   variable, code variable, datatype constructor, or builtin, and every
//!   binder is alpha-renamed to a unique [`Name`];
//! - **desugaring** — clausal `fun`, `andalso`/`orelse`, list literals,
//!   sequences, multi-parameter currying;
//! - **pattern-match compilation** — nested patterns become single-level
//!   tag dispatch ([`CExpr::Case`]), tuple projections, and literal
//!   equality tests, using bound failure continuations so no right-hand
//!   side or failure branch is ever duplicated.

use crate::core::{CExpr, CExprS, CaseArm, CoreDecl, FunDef, Lit, Prim};
use crate::data::{ConId, DataEnv, CONS, NIL};
use crate::exhaustive::{self, ConResolver, SPat};
use crate::name::{Name, NameGen};
use mlbox_syntax::ast::{self, Decl, Expr, Pat};
use mlbox_syntax::diag::{Diagnostic, Phase};
use mlbox_syntax::span::{Span, Spanned};
use std::collections::HashMap;
use std::rc::Rc;

/// How an identifier in scope resolves.
#[derive(Debug, Clone)]
enum Binding {
    /// An ordinary value variable (Γ).
    Val(Name),
    /// A code variable (Δ).
    Cogen(Name),
    /// A datatype constructor.
    Con(ConId),
    /// A builtin primitive function.
    Builtin(Builtin),
}

/// Builtin functions available in the initial scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Builtin {
    Not,
    Ref,
    Array,
    Sub,
    Update,
    Length,
    Print,
    IntToString,
    Size,
    Band,
}

impl Builtin {
    /// The primitive and the number of components its (possibly
    /// tuple-typed) argument is unpacked into.
    fn prim(self) -> (Prim, usize) {
        match self {
            Builtin::Not => (Prim::Not, 1),
            Builtin::Ref => (Prim::Ref, 1),
            Builtin::Array => (Prim::MkArray, 2),
            Builtin::Sub => (Prim::ArrSub, 2),
            Builtin::Update => (Prim::ArrUpdate, 3),
            Builtin::Length => (Prim::ArrLen, 1),
            Builtin::Print => (Prim::Print, 1),
            Builtin::IntToString => (Prim::IntToString, 1),
            Builtin::Size => (Prim::StrSize, 1),
            Builtin::Band => (Prim::BitAnd, 2),
        }
    }
}

/// A recorded `type` abbreviation, consumed by the type checker.
#[derive(Debug, Clone)]
pub struct TypeAbbrev {
    /// Declared type parameters.
    pub tyvars: Vec<String>,
    /// The expansion.
    pub body: ast::TyS,
}

/// The elaboration context. Persistent across declarations so a session
/// can elaborate a program incrementally.
#[derive(Debug)]
pub struct Elab {
    /// Fresh-name supply (shared with later phases via `&mut`).
    pub names: NameGen,
    /// Datatype environment, extended by `datatype` declarations.
    pub data: DataEnv,
    /// Recorded `type` abbreviations by name.
    pub abbrevs: HashMap<String, TypeAbbrev>,
    /// Non-fatal warnings (non-exhaustive and redundant matches).
    pub warnings: Vec<Diagnostic>,
    scope: Vec<(String, Binding)>,
}

impl Default for Elab {
    fn default() -> Self {
        Self::new()
    }
}

impl Elab {
    /// A fresh context with the builtin scope (`nil`, `not`, `ref`,
    /// `array`, `sub`, `update`, `length`, `print`, `itos`, `size`).
    pub fn new() -> Self {
        let mut e = Elab {
            names: NameGen::new(),
            data: DataEnv::new(),
            abbrevs: HashMap::new(),
            warnings: Vec::new(),
            scope: Vec::new(),
        };
        e.scope.push(("nil".into(), Binding::Con(NIL)));
        for (name, b) in [
            ("not", Builtin::Not),
            ("ref", Builtin::Ref),
            ("array", Builtin::Array),
            ("sub", Builtin::Sub),
            ("update", Builtin::Update),
            ("length", Builtin::Length),
            ("print", Builtin::Print),
            ("itos", Builtin::IntToString),
            ("size", Builtin::Size),
            ("band", Builtin::Band),
        ] {
            e.scope.push((name.into(), Binding::Builtin(b)));
        }
        e
    }

    fn err(&self, msg: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic::new(Phase::Elaborate, msg, span)
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b)
    }

    fn fresh(&mut self, text: &str) -> Name {
        self.names.fresh(text)
    }

    fn scope_mark(&self) -> usize {
        self.scope.len()
    }

    fn scope_reset(&mut self, mark: usize) {
        self.scope.truncate(mark);
    }

    fn bind_val(&mut self, source: &str) -> Name {
        let n = self.fresh(source);
        self.scope
            .push((source.to_string(), Binding::Val(n.clone())));
        n
    }

    fn bind_cogen(&mut self, source: &str) -> Name {
        let n = self.fresh(source);
        self.scope
            .push((source.to_string(), Binding::Cogen(n.clone())));
        n
    }

    // ------------------------------------------------------------------
    // Declarations
    // ------------------------------------------------------------------

    /// Elaborates one top-level declaration, extending the scope with its
    /// bindings. A single surface declaration may expand to several core
    /// declarations (pattern `val`s).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic for unbound identifiers, misused constructors,
    /// or code variables used where value variables are required.
    pub fn elab_decl(&mut self, decl: &ast::DeclS) -> Result<Vec<CoreDecl>, Diagnostic> {
        let span = decl.span;
        match &decl.node {
            Decl::Val(pat, rhs) => {
                let rhs = self.elab_expr(rhs)?;
                self.elab_val_binding(pat, rhs, span)
            }
            Decl::Fun(binds) => {
                let defs = self.elab_fun_group(binds)?;
                Ok(vec![CoreDecl::Fun(defs)])
            }
            Decl::Cogen(name, rhs) => {
                let rhs = self.elab_expr(rhs)?;
                let n = self.bind_cogen(name);
                Ok(vec![CoreDecl::Cogen(n, rhs)])
            }
            Decl::Datatype { tyvars, name, cons } => {
                let data = self.data.declare(
                    name.clone(),
                    tyvars.clone(),
                    cons.iter()
                        .map(|c| (c.name.clone(), c.arg.clone()))
                        .collect(),
                );
                let ids = self.data.datatype(data).cons.clone();
                for (c, id) in cons.iter().zip(ids) {
                    self.scope.push((c.name.clone(), Binding::Con(id)));
                }
                Ok(Vec::new())
            }
            Decl::TypeAbbrev { tyvars, name, body } => {
                self.abbrevs.insert(
                    name.clone(),
                    TypeAbbrev {
                        tyvars: tyvars.clone(),
                        body: body.clone(),
                    },
                );
                Ok(Vec::new())
            }
            Decl::Expr(e) => {
                let e = self.elab_expr(e)?;
                Ok(vec![CoreDecl::Expr(e)])
            }
        }
    }

    /// Elaborates a whole program into a declaration sequence.
    ///
    /// # Errors
    ///
    /// Returns the first elaboration error.
    pub fn elab_program(&mut self, prog: &ast::Program) -> Result<Vec<CoreDecl>, Diagnostic> {
        let mut out = Vec::new();
        for d in &prog.decls {
            out.extend(self.elab_decl(d)?);
        }
        Ok(out)
    }

    /// `val pat = rhs` — decomposed into one root bind plus per-variable
    /// projection binds (via the match compiler when the pattern is
    /// refutable).
    fn elab_val_binding(
        &mut self,
        pat: &ast::PatS,
        rhs: CExprS,
        span: Span,
    ) -> Result<Vec<CoreDecl>, Diagnostic> {
        // Fast path: simple variable.
        if let Pat::Var(x) = &pat.node {
            if !self.is_constructor(x) {
                let n = self.bind_val(x);
                return Ok(vec![CoreDecl::Val(n, rhs)]);
            }
        }
        let mut vars = Vec::new();
        collect_pattern_vars(self, pat, &mut vars);
        let root = self.fresh("$root");
        let mut decls = vec![CoreDecl::Val(root.clone(), rhs)];
        if self.pat_is_irrefutable(pat) {
            // Destructure directly with projections.
            let mut binds = Vec::new();
            self.bind_irrefutable(CExpr::Var(root).at(span), pat, &mut binds)?;
            for (n, e) in binds {
                decls.push(CoreDecl::Val(n, e));
            }
            return Ok(decls);
        }
        // Refutable: run the match once, package bound variables in a tuple.
        self.warn_match(std::slice::from_ref(pat), span, "`val` binding");
        let mark = self.scope_mark();
        let arm_rhs_builder = |this: &mut Self| -> Result<CExprS, Diagnostic> {
            let parts: Result<Vec<CExprS>, Diagnostic> = vars
                .iter()
                .map(|v| {
                    let e = this.elab_expr(&Spanned::new(Expr::Var(v.clone()), span))?;
                    Ok(e)
                })
                .collect();
            let parts = parts?;
            Ok(match parts.len() {
                0 => CExpr::Lit(Lit::Unit).at(span),
                1 => parts.into_iter().next().expect("one element"),
                _ => CExpr::Tuple(parts).at(span),
            })
        };
        let matched = self.compile_match_with(
            CExpr::Var(root).at(span),
            std::slice::from_ref(pat),
            arm_rhs_builder,
            span,
            "binding match failure",
        )?;
        self.scope_reset(mark);
        // Bind the tuple, then the user variables (now in the outer scope).
        match vars.len() {
            0 => decls.push(CoreDecl::Val(self.fresh("$ignore"), matched)),
            1 => {
                let n = self.bind_val(&vars[0]);
                decls.push(CoreDecl::Val(n, matched));
            }
            arity => {
                let tup = self.fresh("$bound");
                decls.push(CoreDecl::Val(tup.clone(), matched));
                for (index, v) in vars.iter().enumerate() {
                    let n = self.bind_val(v);
                    decls.push(CoreDecl::Val(
                        n,
                        CExpr::Proj {
                            index,
                            arity,
                            tuple: Box::new(CExpr::Var(tup.clone()).at(span)),
                        }
                        .at(span),
                    ));
                }
            }
        }
        Ok(decls)
    }

    fn elab_fun_group(&mut self, binds: &[ast::FunBind]) -> Result<Rc<Vec<FunDef>>, Diagnostic> {
        // Bind every function name first (mutual recursion).
        let fnames: Vec<Name> = binds.iter().map(|b| self.bind_val(&b.name)).collect();
        let mut defs = Vec::with_capacity(binds.len());
        for (b, fname) in binds.iter().zip(fnames) {
            let arity = b.clauses[0].params.len();
            let span = b.name_span;
            let single_irrefutable = b.clauses.len() == 1
                && b.clauses[0]
                    .params
                    .iter()
                    .all(|p| self.pat_is_irrefutable(p));

            let mark = self.scope_mark();
            // Machine parameters (curried). In the single-clause fast path a
            // simple variable pattern becomes the parameter itself.
            let params: Vec<Name> = if single_irrefutable {
                b.clauses[0]
                    .params
                    .iter()
                    .enumerate()
                    .map(|(i, p)| match &p.node {
                        Pat::Var(x) if !self.is_constructor(x) => self.bind_val(x),
                        _ => self.fresh(&format!("$p{i}")),
                    })
                    .collect()
            } else {
                (0..arity).map(|i| self.fresh(&format!("$p{i}"))).collect()
            };
            let body = if single_irrefutable {
                // Fast path: destructure parameters directly.
                let clause = &b.clauses[0];
                let mut binds_acc = Vec::new();
                for (param, pat) in params.iter().zip(&clause.params) {
                    if matches!(&pat.node, Pat::Var(x) if !self.is_constructor(x)) {
                        continue; // already bound as the parameter
                    }
                    self.bind_irrefutable(
                        CExpr::Var(param.clone()).at(pat.span),
                        pat,
                        &mut binds_acc,
                    )?;
                }
                let rhs = self.elab_expr(&clause.rhs)?;
                wrap_lets(binds_acc, rhs)
            } else {
                // General path: match the parameter tuple against each clause.
                let scrut = if arity == 1 {
                    CExpr::Var(params[0].clone()).at(span)
                } else {
                    CExpr::Tuple(
                        params
                            .iter()
                            .map(|p| CExpr::Var(p.clone()).at(span))
                            .collect(),
                    )
                    .at(span)
                };
                let arms: Vec<(ast::PatS, &ast::ExprS)> = b
                    .clauses
                    .iter()
                    .map(|c| {
                        let pat = if arity == 1 {
                            c.params[0].clone()
                        } else {
                            Spanned::new(Pat::Tuple(c.params.clone()), span)
                        };
                        (pat, &c.rhs)
                    })
                    .collect();
                self.compile_match(scrut, &arms, span, &format!("match failure in {}", b.name))?
            };
            self.scope_reset(mark);

            // Curry: body already includes rest; wrap params 1.. as lambdas.
            let mut full = body;
            for p in params.iter().skip(1).rev() {
                let sp = full.span;
                full = CExpr::Lam(p.clone(), Box::new(full)).at(sp);
            }
            defs.push(FunDef {
                name: fname,
                param: params[0].clone(),
                body: full,
            });
        }
        Ok(Rc::new(defs))
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Elaborates an expression in the current scope.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic for unbound identifiers or misused
    /// constructors.
    pub fn elab_expr(&mut self, e: &ast::ExprS) -> Result<CExprS, Diagnostic> {
        let span = e.span;
        Ok(match &e.node {
            Expr::Int(n) => CExpr::Lit(Lit::Int(*n)).at(span),
            Expr::Str(s) => CExpr::Lit(Lit::Str(Rc::from(s.as_str()))).at(span),
            Expr::Bool(b) => CExpr::Lit(Lit::Bool(*b)).at(span),
            Expr::Unit => CExpr::Lit(Lit::Unit).at(span),
            Expr::Var(x) => self.elab_var(x, span)?,
            Expr::Tuple(parts) => {
                let parts: Result<Vec<_>, _> = parts.iter().map(|p| self.elab_expr(p)).collect();
                CExpr::Tuple(parts?).at(span)
            }
            Expr::List(parts) => {
                let mut acc = CExpr::Con(NIL, None).at(span);
                for p in parts.iter().rev() {
                    let head = self.elab_expr(p)?;
                    acc = CExpr::Con(CONS, Some(Box::new(CExpr::Tuple(vec![head, acc]).at(span))))
                        .at(span);
                }
                acc
            }
            Expr::Cons(h, t) => {
                let h = self.elab_expr(h)?;
                let t = self.elab_expr(t)?;
                CExpr::Con(CONS, Some(Box::new(CExpr::Tuple(vec![h, t]).at(span)))).at(span)
            }
            Expr::App(f, a) => self.elab_app(f, a, span)?,
            Expr::BinOp(op, l, r) => {
                let l = self.elab_expr(l)?;
                let r = self.elab_expr(r)?;
                let prim = match op {
                    ast::BinOp::Add => Prim::Add,
                    ast::BinOp::Sub => Prim::Sub,
                    ast::BinOp::Mul => Prim::Mul,
                    ast::BinOp::Div => Prim::Div,
                    ast::BinOp::Mod => Prim::Mod,
                    ast::BinOp::Eq => Prim::Eq,
                    ast::BinOp::Ne => Prim::Ne,
                    ast::BinOp::Lt => Prim::Lt,
                    ast::BinOp::Le => Prim::Le,
                    ast::BinOp::Gt => Prim::Gt,
                    ast::BinOp::Ge => Prim::Ge,
                    ast::BinOp::Concat => Prim::Concat,
                    ast::BinOp::Assign => Prim::Assign,
                };
                CExpr::Prim(prim, vec![l, r]).at(span)
            }
            Expr::Neg(x) => CExpr::Prim(Prim::Neg, vec![self.elab_expr(x)?]).at(span),
            Expr::Deref(x) => CExpr::Prim(Prim::Deref, vec![self.elab_expr(x)?]).at(span),
            Expr::Andalso(l, r) => {
                let l = self.elab_expr(l)?;
                let r = self.elab_expr(r)?;
                CExpr::If(
                    Box::new(l),
                    Box::new(r),
                    Box::new(CExpr::Lit(Lit::Bool(false)).at(span)),
                )
                .at(span)
            }
            Expr::Orelse(l, r) => {
                let l = self.elab_expr(l)?;
                let r = self.elab_expr(r)?;
                CExpr::If(
                    Box::new(l),
                    Box::new(CExpr::Lit(Lit::Bool(true)).at(span)),
                    Box::new(r),
                )
                .at(span)
            }
            Expr::Fn(pat, body) => {
                let mark = self.scope_mark();
                let simple_var = match &pat.node {
                    Pat::Var(x) if !self.is_constructor(x) => Some(x.clone()),
                    _ => None,
                };
                let out = if let Some(x) = simple_var {
                    // Bind the user's name directly as the parameter.
                    let param = self.bind_val(&x);
                    let body = self.elab_expr(body)?;
                    CExpr::Lam(param, Box::new(body)).at(span)
                } else if self.pat_is_irrefutable(pat) {
                    let param = self.fresh("$x");
                    let mut binds = Vec::new();
                    self.bind_irrefutable(CExpr::Var(param.clone()).at(pat.span), pat, &mut binds)?;
                    let body = self.elab_expr(body)?;
                    CExpr::Lam(param, Box::new(wrap_lets(binds, body))).at(span)
                } else {
                    let param = self.fresh("$x");
                    let arms = vec![((*pat).clone(), body.as_ref())];
                    let m = self.compile_match(
                        CExpr::Var(param.clone()).at(span),
                        &arms,
                        span,
                        "match failure in fn",
                    )?;
                    CExpr::Lam(param, Box::new(m)).at(span)
                };
                self.scope_reset(mark);
                out
            }
            Expr::If(c, t, f) => {
                let c = self.elab_expr(c)?;
                let t = self.elab_expr(t)?;
                let f = self.elab_expr(f)?;
                CExpr::If(Box::new(c), Box::new(t), Box::new(f)).at(span)
            }
            Expr::While(c, body) => {
                // while c do e  ≡  let fun w () = if c then (e; w ()) else ()
                //                  in w () end
                let c = self.elab_expr(c)?;
                let body = self.elab_expr(body)?;
                let w = self.fresh("$while");
                let param = self.fresh("$u");
                let seq = self.fresh("$seq");
                let recall = CExpr::App(
                    Box::new(CExpr::Var(w.clone()).at(span)),
                    Box::new(CExpr::Lit(Lit::Unit).at(span)),
                )
                .at(span);
                let loop_body = CExpr::If(
                    Box::new(c),
                    Box::new(CExpr::Let(seq, Box::new(body), Box::new(recall.clone())).at(span)),
                    Box::new(CExpr::Lit(Lit::Unit).at(span)),
                )
                .at(span);
                CExpr::LetRec(
                    Rc::new(vec![FunDef {
                        name: w.clone(),
                        param,
                        body: loop_body,
                    }]),
                    Box::new(recall),
                )
                .at(span)
            }
            Expr::Case(scrut, arms) => {
                let scrut = self.elab_expr(scrut)?;
                let arms: Vec<(ast::PatS, &ast::ExprS)> =
                    arms.iter().map(|(p, e)| (p.clone(), e)).collect();
                self.compile_match(scrut, &arms, span, "match failure in case")?
            }
            Expr::Let(decls, body) => {
                let mark = self.scope_mark();
                let mut core_decls = Vec::new();
                for d in decls {
                    core_decls.extend(self.elab_decl(d)?);
                }
                // Body sequence: evaluate all, keep the last.
                let mut rev = body.iter().rev();
                let last = rev.next().ok_or_else(|| self.err("empty let body", span))?;
                let mut acc = self.elab_expr(last)?;
                for e in rev {
                    let v = self.elab_expr(e)?;
                    let n = self.fresh("$seq");
                    acc = CExpr::Let(n, Box::new(v), Box::new(acc)).at(span);
                }
                // Wrap the declarations around the body, innermost last.
                for d in core_decls.into_iter().rev() {
                    acc = wrap_decl(d, acc, span);
                }
                self.scope_reset(mark);
                acc
            }
            Expr::Seq(parts) => {
                let mut rev = parts.iter().rev();
                let last = rev.next().ok_or_else(|| self.err("empty sequence", span))?;
                let mut acc = self.elab_expr(last)?;
                for e in rev {
                    let v = self.elab_expr(e)?;
                    let n = self.fresh("$seq");
                    acc = CExpr::Let(n, Box::new(v), Box::new(acc)).at(span);
                }
                acc
            }
            Expr::Code(body) => {
                let body = self.elab_expr(body)?;
                CExpr::Code(Box::new(body)).at(span)
            }
            Expr::Lift(body) => {
                let body = self.elab_expr(body)?;
                CExpr::Lift(Box::new(body)).at(span)
            }
            Expr::Ascribe(inner, ty) => {
                let inner = self.elab_expr(inner)?;
                CExpr::Ascribe(Box::new(inner), ty.clone()).at(span)
            }
        })
    }

    fn elab_var(&mut self, x: &str, span: Span) -> Result<CExprS, Diagnostic> {
        match self.lookup(x).cloned() {
            Some(Binding::Val(n)) => Ok(CExpr::Var(n).at(span)),
            Some(Binding::Cogen(n)) => Ok(CExpr::CodeVar(n).at(span)),
            Some(Binding::Con(c)) => {
                if self.data.con(c).has_arg() {
                    // Eta-expand a payload-carrying constructor used as a value.
                    let p = self.fresh("$c");
                    Ok(CExpr::Lam(
                        p.clone(),
                        Box::new(CExpr::Con(c, Some(Box::new(CExpr::Var(p).at(span)))).at(span)),
                    )
                    .at(span))
                } else {
                    Ok(CExpr::Con(c, None).at(span))
                }
            }
            Some(Binding::Builtin(b)) => {
                // Eta-expand a builtin used as a value.
                let (prim, unpack) = b.prim();
                let p = self.fresh("$b");
                let arg = CExpr::Var(p.clone()).at(span);
                let args = self.unpack_arg(arg, unpack, span);
                Ok(CExpr::Lam(p, Box::new(CExpr::Prim(prim, args).at(span))).at(span))
            }
            None => Err(self.err(format!("unbound identifier `{x}`"), span)),
        }
    }

    fn elab_app(
        &mut self,
        f: &ast::ExprS,
        a: &ast::ExprS,
        span: Span,
    ) -> Result<CExprS, Diagnostic> {
        // Special-case direct application of constructors and builtins.
        if let Expr::Var(x) = &f.node {
            match self.lookup(x).cloned() {
                Some(Binding::Con(c)) => {
                    if !self.data.con(c).has_arg() {
                        return Err(self.err(format!("constructor `{x}` takes no argument"), span));
                    }
                    let arg = self.elab_expr(a)?;
                    return Ok(CExpr::Con(c, Some(Box::new(arg))).at(span));
                }
                Some(Binding::Builtin(b)) => {
                    let (prim, unpack) = b.prim();
                    // If the argument is a literal tuple of the right width,
                    // unpack it syntactically.
                    if unpack > 1 {
                        if let Expr::Tuple(parts) = &a.node {
                            if parts.len() == unpack {
                                let args: Result<Vec<_>, _> =
                                    parts.iter().map(|p| self.elab_expr(p)).collect();
                                return Ok(CExpr::Prim(prim, args?).at(span));
                            }
                        }
                    }
                    let arg = self.elab_expr(a)?;
                    if unpack == 1 {
                        return Ok(CExpr::Prim(prim, vec![arg]).at(span));
                    }
                    let tmp = self.fresh("$t");
                    let args = self.unpack_arg(CExpr::Var(tmp.clone()).at(span), unpack, span);
                    return Ok(CExpr::Let(
                        tmp,
                        Box::new(arg),
                        Box::new(CExpr::Prim(prim, args).at(span)),
                    )
                    .at(span));
                }
                _ => {}
            }
        }
        let f = self.elab_expr(f)?;
        let a = self.elab_expr(a)?;
        Ok(CExpr::App(Box::new(f), Box::new(a)).at(span))
    }

    fn unpack_arg(&mut self, arg: CExprS, unpack: usize, span: Span) -> Vec<CExprS> {
        if unpack == 1 {
            vec![arg]
        } else {
            (0..unpack)
                .map(|index| {
                    CExpr::Proj {
                        index,
                        arity: unpack,
                        tuple: Box::new(arg.clone()),
                    }
                    .at(span)
                })
                .collect()
        }
    }

    // ------------------------------------------------------------------
    // Pattern-match compilation
    // ------------------------------------------------------------------

    fn is_constructor(&self, x: &str) -> bool {
        matches!(self.lookup(x), Some(Binding::Con(_)))
    }

    /// Whether a pattern always matches (so no failure continuation is
    /// needed).
    pub fn pat_is_irrefutable(&self, pat: &ast::PatS) -> bool {
        match &pat.node {
            Pat::Wild | Pat::Unit => true,
            Pat::Var(x) => !self.is_constructor(x),
            Pat::Tuple(ps) => ps.iter().all(|p| self.pat_is_irrefutable(p)),
            Pat::Ascribe(inner, _) => self.pat_is_irrefutable(inner),
            _ => false,
        }
    }

    /// Destructures an irrefutable pattern into `(name, projection)` binds,
    /// pushing the bound variables into scope.
    fn bind_irrefutable(
        &mut self,
        occ: CExprS,
        pat: &ast::PatS,
        out: &mut Vec<(Name, CExprS)>,
    ) -> Result<(), Diagnostic> {
        match &pat.node {
            Pat::Wild | Pat::Unit => Ok(()),
            Pat::Var(x) => {
                let n = self.bind_val(x);
                out.push((n, occ));
                Ok(())
            }
            Pat::Ascribe(inner, ty) => {
                let span = occ.span;
                let constrained = CExpr::Ascribe(Box::new(occ), ty.clone()).at(span);
                self.bind_irrefutable(constrained, inner, out)
            }
            Pat::Tuple(ps) => {
                let arity = ps.len();
                // Bind the tuple once if the occurrence is not already a variable.
                let root = if matches!(occ.node, CExpr::Var(_)) {
                    occ
                } else {
                    let n = self.fresh("$tup");
                    let span = occ.span;
                    out.push((n.clone(), occ));
                    CExpr::Var(n).at(span)
                };
                for (index, p) in ps.iter().enumerate() {
                    let proj = CExpr::Proj {
                        index,
                        arity,
                        tuple: Box::new(root.clone()),
                    }
                    .at(p.span);
                    self.bind_irrefutable(proj, p, out)?;
                }
                Ok(())
            }
            _ => Err(self.err("pattern is not irrefutable", pat.span)),
        }
    }

    /// Runs the exhaustiveness/redundancy analysis on a match and records
    /// warnings.
    fn warn_match(&mut self, pats: &[ast::PatS], span: Span, what: &str) {
        let spats: Vec<SPat> = pats.iter().map(|p| exhaustive::simplify(p, self)).collect();
        let report = exhaustive::analyze(&spats, &self.data);
        if report.non_exhaustive {
            self.warnings.push(Diagnostic::new(
                Phase::Elaborate,
                format!("{what} is not exhaustive"),
                span,
            ));
        }
        for i in report.redundant {
            self.warnings.push(Diagnostic::new(
                Phase::Elaborate,
                format!("{what} arm {} is redundant (it can never match)", i + 1),
                pats[i].span,
            ));
        }
    }

    /// Compiles a multi-arm match whose right-hand sides are surface
    /// expressions.
    fn compile_match(
        &mut self,
        scrut: CExprS,
        arms: &[(ast::PatS, &ast::ExprS)],
        span: Span,
        fail_msg: &str,
    ) -> Result<CExprS, Diagnostic> {
        let pats: Vec<ast::PatS> = arms.iter().map(|(p, _)| p.clone()).collect();
        self.warn_match(&pats, span, "match");
        // Bind the scrutinee once.
        let (root, wrap): (Name, Option<CExprS>) = match &scrut.node {
            CExpr::Var(n) => (n.clone(), None),
            _ => {
                let n = self.fresh("$scrut");
                (n, Some(scrut))
            }
        };
        let occ = CExpr::Var(root.clone()).at(span);

        // Build from the last arm backwards, threading failure continuations.
        let mut acc = CExpr::Fail(Rc::from(fail_msg)).at(span);
        for (pat, rhs) in arms.iter().rev() {
            let k = self.fresh("$k");
            let fail = CExpr::App(
                Box::new(CExpr::Var(k.clone()).at(span)),
                Box::new(CExpr::Lit(Lit::Unit).at(span)),
            )
            .at(span);
            let mark = self.scope_mark();
            let rhs_ref: &ast::ExprS = rhs;
            let body =
                self.pat_test(occ.clone(), pat, &fail, &mut |this| this.elab_expr(rhs_ref))?;
            self.scope_reset(mark);
            let kparam = self.fresh("$u");
            acc = CExpr::Let(
                k,
                Box::new(CExpr::Lam(kparam, Box::new(acc)).at(span)),
                Box::new(body),
            )
            .at(span);
        }
        Ok(match wrap {
            Some(scrut) => CExpr::Let(root, Box::new(scrut), Box::new(acc)).at(span),
            None => acc,
        })
    }

    /// Like [`Self::compile_match`] but for a single pattern whose
    /// right-hand side is built programmatically (used for `val` pattern
    /// bindings).
    fn compile_match_with(
        &mut self,
        scrut: CExprS,
        pats: &[ast::PatS],
        mut rhs: impl FnMut(&mut Self) -> Result<CExprS, Diagnostic>,
        span: Span,
        fail_msg: &str,
    ) -> Result<CExprS, Diagnostic> {
        let (root, wrap): (Name, Option<CExprS>) = match &scrut.node {
            CExpr::Var(n) => (n.clone(), None),
            _ => {
                let n = self.fresh("$scrut");
                (n, Some(scrut))
            }
        };
        let occ = CExpr::Var(root.clone()).at(span);
        let fail = CExpr::Fail(Rc::from(fail_msg)).at(span);
        let pat = &pats[0];
        let body = self.pat_test(occ, pat, &fail, &mut |this| rhs(this))?;
        Ok(match wrap {
            Some(scrut) => CExpr::Let(root, Box::new(scrut), Box::new(body)).at(span),
            None => body,
        })
    }

    /// Compiles a single pattern test: if `occ` matches `pat`, bind the
    /// pattern's variables and continue with `succ`; otherwise evaluate
    /// `fail`.
    fn pat_test(
        &mut self,
        occ: CExprS,
        pat: &ast::PatS,
        fail: &CExprS,
        succ: &mut dyn FnMut(&mut Self) -> Result<CExprS, Diagnostic>,
    ) -> Result<CExprS, Diagnostic> {
        let span = pat.span;
        match &pat.node {
            Pat::Wild | Pat::Unit => succ(self),
            Pat::Var(x) => {
                if let Some(Binding::Con(c)) = self.lookup(x).cloned() {
                    // A nullary constructor used as a pattern.
                    if self.data.con(c).has_arg() {
                        return Err(self.err(
                            format!("constructor `{x}` requires an argument pattern"),
                            span,
                        ));
                    }
                    let rhs = succ(self)?;
                    return Ok(CExpr::Case {
                        scrut: Box::new(occ),
                        arms: vec![CaseArm {
                            con: c,
                            binder: None,
                            rhs,
                        }],
                        default: Some(Box::new(fail.clone())),
                    }
                    .at(span));
                }
                let n = self.bind_val(x);
                let body = succ(self)?;
                Ok(CExpr::Let(n, Box::new(occ), Box::new(body)).at(span))
            }
            Pat::Int(n) => self.literal_test(occ, CExpr::Lit(Lit::Int(*n)).at(span), fail, succ),
            Pat::Bool(b) => self.literal_test(occ, CExpr::Lit(Lit::Bool(*b)).at(span), fail, succ),
            Pat::Str(s) => self.literal_test(
                occ,
                CExpr::Lit(Lit::Str(Rc::from(s.as_str()))).at(span),
                fail,
                succ,
            ),
            Pat::Tuple(ps) => {
                let arity = ps.len();
                let occs: Vec<(CExprS, ast::PatS)> = ps
                    .iter()
                    .enumerate()
                    .map(|(index, p)| {
                        (
                            CExpr::Proj {
                                index,
                                arity,
                                tuple: Box::new(occ.clone()),
                            }
                            .at(p.span),
                            p.clone(),
                        )
                    })
                    .collect();
                self.pats_test(&occs, 0, fail, succ)
            }
            Pat::Con(cname, argp) => {
                let Some(Binding::Con(c)) = self.lookup(cname).cloned() else {
                    return Err(self.err(format!("`{cname}` is not a known constructor"), span));
                };
                if !self.data.con(c).has_arg() {
                    return Err(self.err(format!("constructor `{cname}` takes no argument"), span));
                }
                let w = self.fresh("$w");
                let wocc = CExpr::Var(w.clone()).at(span);
                let inner = self.pat_test(wocc, argp, fail, succ)?;
                Ok(CExpr::Case {
                    scrut: Box::new(occ),
                    arms: vec![CaseArm {
                        con: c,
                        binder: Some(w),
                        rhs: inner,
                    }],
                    default: Some(Box::new(fail.clone())),
                }
                .at(span))
            }
            Pat::Cons(h, t) => {
                let w = self.fresh("$w");
                let wocc = CExpr::Var(w.clone()).at(span);
                let occs = vec![
                    (
                        CExpr::Proj {
                            index: 0,
                            arity: 2,
                            tuple: Box::new(wocc.clone()),
                        }
                        .at(h.span),
                        (**h).clone(),
                    ),
                    (
                        CExpr::Proj {
                            index: 1,
                            arity: 2,
                            tuple: Box::new(wocc),
                        }
                        .at(t.span),
                        (**t).clone(),
                    ),
                ];
                let inner = self.pats_test(&occs, 0, fail, succ)?;
                Ok(CExpr::Case {
                    scrut: Box::new(occ),
                    arms: vec![CaseArm {
                        con: CONS,
                        binder: Some(w),
                        rhs: inner,
                    }],
                    default: Some(Box::new(fail.clone())),
                }
                .at(span))
            }
            Pat::Ascribe(inner, ty) => {
                let span = occ.span;
                let constrained = CExpr::Ascribe(Box::new(occ), ty.clone()).at(span);
                self.pat_test(constrained, inner, fail, succ)
            }
            Pat::List(ps) => {
                // Desugar `[p1, ..., pn]` to `p1 :: ... :: pn :: nil`.
                let mut desugared = Spanned::new(Pat::Var("nil".to_string()), span);
                for p in ps.iter().rev() {
                    desugared =
                        Spanned::new(Pat::Cons(Box::new(p.clone()), Box::new(desugared)), span);
                }
                self.pat_test(occ, &desugared, fail, succ)
            }
        }
    }

    fn literal_test(
        &mut self,
        occ: CExprS,
        lit: CExprS,
        fail: &CExprS,
        succ: &mut dyn FnMut(&mut Self) -> Result<CExprS, Diagnostic>,
    ) -> Result<CExprS, Diagnostic> {
        let span = occ.span;
        let body = succ(self)?;
        Ok(CExpr::If(
            Box::new(CExpr::Prim(Prim::Eq, vec![occ, lit]).at(span)),
            Box::new(body),
            Box::new(fail.clone()),
        )
        .at(span))
    }

    fn pats_test(
        &mut self,
        items: &[(CExprS, ast::PatS)],
        idx: usize,
        fail: &CExprS,
        succ: &mut dyn FnMut(&mut Self) -> Result<CExprS, Diagnostic>,
    ) -> Result<CExprS, Diagnostic> {
        if idx == items.len() {
            return succ(self);
        }
        let (occ, pat) = items[idx].clone();
        self.pat_test(occ, &pat, fail, &mut |this| {
            this.pats_test(items, idx + 1, fail, succ)
        })
    }
}

impl ConResolver for Elab {
    fn resolve_con(&self, name: &str) -> Option<ConId> {
        match self.lookup(name) {
            Some(Binding::Con(c)) => Some(*c),
            _ => None,
        }
    }

    fn data_env(&self) -> &DataEnv {
        &self.data
    }
}

/// Collects pattern-bound variable names in left-to-right order.
fn collect_pattern_vars(elab: &Elab, pat: &ast::PatS, out: &mut Vec<String>) {
    match &pat.node {
        Pat::Var(x) if !elab.is_constructor(x) => {
            out.push(x.clone());
        }
        Pat::Tuple(ps) | Pat::List(ps) => {
            for p in ps {
                collect_pattern_vars(elab, p, out);
            }
        }
        Pat::Cons(h, t) => {
            collect_pattern_vars(elab, h, out);
            collect_pattern_vars(elab, t, out);
        }
        Pat::Con(_, p) | Pat::Ascribe(p, _) => collect_pattern_vars(elab, p, out),
        _ => {}
    }
}

fn wrap_lets(binds: Vec<(Name, CExprS)>, body: CExprS) -> CExprS {
    let mut acc = body;
    for (n, e) in binds.into_iter().rev() {
        let span = acc.span;
        acc = CExpr::Let(n, Box::new(e), Box::new(acc)).at(span);
    }
    acc
}

/// Wraps a core declaration around a body expression.
pub fn wrap_decl(d: CoreDecl, body: CExprS, span: Span) -> CExprS {
    match d {
        CoreDecl::Val(n, e) => CExpr::Let(n, Box::new(e), Box::new(body)).at(span),
        CoreDecl::Fun(defs) => CExpr::LetRec(defs, Box::new(body)).at(span),
        CoreDecl::Cogen(n, e) => CExpr::LetCogen(n, Box::new(e), Box::new(body)).at(span),
        CoreDecl::Expr(e) => {
            // Evaluate for effect; the binder is unused.
            let n = Name::dummy_for_seq();
            CExpr::Let(n, Box::new(e), Box::new(body)).at(span)
        }
    }
}

impl Name {
    /// A reserved name used when sequencing effect-only declarations.
    /// Ids `u32::MAX` downwards are never produced by [`NameGen`], so the
    /// name cannot collide.
    fn dummy_for_seq() -> Name {
        // NameGen ids count up from zero; reserve the maximum for this.
        // Safe because a program would need 2^32 binders to collide.
        Name::synthetic(u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlbox_syntax::parser::{parse_expr, parse_program};

    fn elab(src: &str) -> CExprS {
        let e = parse_expr(src).unwrap();
        Elab::new().elab_expr(&e).unwrap()
    }

    fn elab_err(src: &str) -> Diagnostic {
        let e = parse_expr(src).unwrap();
        Elab::new().elab_expr(&e).unwrap_err()
    }

    #[test]
    fn literals_elaborate() {
        assert!(matches!(elab("42").node, CExpr::Lit(Lit::Int(42))));
        assert!(matches!(elab("()").node, CExpr::Lit(Lit::Unit)));
    }

    #[test]
    fn unbound_identifier_is_reported() {
        let d = elab_err("nonexistent");
        assert!(d.message.contains("unbound identifier"));
    }

    #[test]
    fn nil_is_a_constructor() {
        assert!(matches!(elab("nil").node, CExpr::Con(c, None) if c == NIL));
    }

    #[test]
    fn list_literal_desugars_to_cons() {
        match elab("[1, 2]").node {
            CExpr::Con(c, Some(payload)) => {
                assert_eq!(c, CONS);
                assert!(matches!(payload.node, CExpr::Tuple(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn andalso_desugars_to_if() {
        assert!(matches!(
            elab("true andalso false").node,
            CExpr::If(_, _, _)
        ));
    }

    #[test]
    fn builtin_application_becomes_prim() {
        match elab("not true").node {
            CExpr::Prim(Prim::Not, args) => assert_eq!(args.len(), 1),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn builtin_tuple_application_unpacks() {
        let e = elab("fn a => sub (a, 0)");
        let CExpr::Lam(_, body) = e.node else {
            panic!()
        };
        match body.node {
            CExpr::Prim(Prim::ArrSub, args) => assert_eq!(args.len(), 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn builtin_as_value_eta_expands() {
        assert!(matches!(elab("not").node, CExpr::Lam(_, _)));
    }

    #[test]
    fn fn_with_tuple_pattern_uses_projections() {
        let e = elab("fn (x, y) => x + y");
        let CExpr::Lam(_, body) = e.node else {
            panic!()
        };
        // Two lets binding projections.
        assert!(matches!(body.node, CExpr::Let(_, _, _)));
    }

    #[test]
    fn shadowing_resolves_to_innermost() {
        // let val x = 1 in let val x = 2 in x end end — inner x.
        let e = elab("let val x = 1 in let val x = 2 in x end end");
        // outermost let binds x#a, inner binds x#b, body var must be x#b.
        let CExpr::Let(_, _, inner) = e.node else {
            panic!()
        };
        let CExpr::Let(n2, _, body) = inner.node else {
            panic!()
        };
        let CExpr::Var(used) = body.node else {
            panic!()
        };
        assert_eq!(used, n2);
    }

    #[test]
    fn cogen_use_is_codevar() {
        let e = elab("fn c => let cogen u = c in u end");
        let CExpr::Lam(_, body) = e.node else {
            panic!()
        };
        let CExpr::LetCogen(u, _, inner) = body.node else {
            panic!("expected LetCogen, got {body:?}")
        };
        assert!(matches!(inner.node, CExpr::CodeVar(n) if n == u));
    }

    #[test]
    fn case_on_constructors_dispatches() {
        let p =
            parse_program("datatype t = A | B of int\nval r = fn x => case x of A => 0 | B n => n")
                .unwrap();
        let mut elab = Elab::new();
        let decls = elab.elab_program(&p).unwrap();
        assert_eq!(decls.len(), 1); // datatype contributes no core decl
    }

    #[test]
    fn clausal_fun_elaborates() {
        let p = parse_program(
            "fun evalPoly (x, nil) = 0 | evalPoly (x, a::p) = a + (x * evalPoly (x, p))",
        )
        .unwrap();
        let mut elab = Elab::new();
        let decls = elab.elab_program(&p).unwrap();
        assert_eq!(decls.len(), 1);
        assert!(matches!(&decls[0], CoreDecl::Fun(defs) if defs.len() == 1));
    }

    #[test]
    fn mutual_recursion_sees_both_names() {
        let p = parse_program(
            "fun even n = if n = 0 then true else odd (n - 1) and odd n = if n = 0 then false else even (n - 1)",
        )
        .unwrap();
        let decls = Elab::new().elab_program(&p).unwrap();
        assert!(matches!(&decls[0], CoreDecl::Fun(defs) if defs.len() == 2));
    }

    #[test]
    fn val_tuple_pattern_produces_projection_binds() {
        let p = parse_program("val (a, b) = (1, 2)\nval s = a + b").unwrap();
        let decls = Elab::new().elab_program(&p).unwrap();
        // root bind + 2 projections + final val
        assert!(decls.len() >= 4);
    }

    #[test]
    fn constructor_arity_errors() {
        let p = parse_program("datatype t = B of int\nval x = B").unwrap();
        // Eta-expansion makes bare `B` legal.
        assert!(Elab::new().elab_program(&p).is_ok());
        let p = parse_program("datatype t = A\nval x = A 3").unwrap();
        assert!(Elab::new().elab_program(&p).is_err());
    }

    #[test]
    fn nullary_constructor_pattern_requires_no_arg() {
        let p = parse_program("datatype t = B of int\nval f = fn x => case x of B => 1").unwrap();
        assert!(Elab::new().elab_program(&p).is_err());
    }

    #[test]
    fn literal_patterns_become_equality_tests() {
        let e = elab("fn x => case x of 0 => 1 | _ => 2");
        let CExpr::Lam(_, body) = e.node else {
            panic!()
        };
        // Outer structure: Let of the continuation, then If(Eq ...).
        fn contains_eq_if(e: &CExprS) -> bool {
            match &e.node {
                CExpr::If(c, _, _) => {
                    matches!(c.node, CExpr::Prim(Prim::Eq, _))
                }
                CExpr::Let(_, _, b) => contains_eq_if(b),
                _ => false,
            }
        }
        assert!(contains_eq_if(&body));
    }

    #[test]
    fn code_and_lift_elaborate() {
        let e = elab("fn c => let cogen f = c in code (fn x => f x) end");
        let CExpr::Lam(_, body) = e.node else {
            panic!()
        };
        let CExpr::LetCogen(_, _, inner) = body.node else {
            panic!()
        };
        assert!(matches!(inner.node, CExpr::Code(_)));
        assert!(matches!(elab("lift 3").node, CExpr::Lift(_)));
    }
}
