//! Core intermediate representation and elaboration for MLbox.
//!
//! The elaborator lowers the parsed surface syntax (see [`mlbox_syntax`])
//! to an explicit λ□ core IR: identifiers resolved, binders alpha-renamed,
//! nested patterns compiled to single-level dispatch, and syntactic sugar
//! expanded. The core IR is the shared input of the type checker
//! (`mlbox-types`), the reference interpreter (`mlbox-eval`), and the CCAM
//! compiler (`mlbox-compile`).
//!
//! # Examples
//!
//! ```
//! use mlbox_ir::elab::Elab;
//! use mlbox_syntax::parser::parse_expr;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let surface = parse_expr("fn p => let cogen f = p in code (fn x => f x) end")?;
//! let core = Elab::new().elab_expr(&surface)?;
//! # let _ = core;
//! # Ok(())
//! # }
//! ```

pub mod core;
pub mod data;
pub mod elab;
pub mod exhaustive;
pub mod name;

pub use crate::core::{CExpr, CExprS, CaseArm, CoreDecl, FunDef, Lit, Prim};
pub use data::{ConId, DataEnv, DataId, CONS, LIST, NIL};
pub use elab::Elab;
pub use name::{Name, NameGen};
