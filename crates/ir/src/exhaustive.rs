//! Match exhaustiveness and redundancy analysis: the classic *usefulness*
//! algorithm (Maranget-style) over a simplified pattern domain.
//!
//! A `case`/clausal-`fun` match is **non-exhaustive** when a wildcard row
//! is still useful after all user rows, and an arm is **redundant** when
//! it is not useful with respect to the arms above it. Both produce
//! warnings (not errors), matching SML practice.

use crate::data::{ConId, DataEnv};
use mlbox_syntax::ast::{Pat, PatS};
use std::collections::BTreeSet;

/// A simplified (resolved, desugared) pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum SPat {
    /// Matches anything (wildcards, variables, unit).
    Wild,
    /// A datatype constructor with subpatterns (payload flattened to one).
    Con(ConId, Vec<SPat>),
    /// A tuple of the given arity.
    Tuple(Vec<SPat>),
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// A string literal.
    Str(String),
}

/// A resolver from surface patterns to [`SPat`]: the elaborator supplies
/// constructor lookup.
pub trait ConResolver {
    /// Resolves a lowercase identifier to a constructor, if it is one.
    fn resolve_con(&self, name: &str) -> Option<ConId>;
    /// The datatype environment (constructor universe).
    fn data_env(&self) -> &DataEnv;
}

/// Lowers a surface pattern. Returns `None` for patterns this analysis
/// cannot model (none currently; kept fallible for future extensions).
pub fn simplify(pat: &PatS, r: &dyn ConResolver) -> SPat {
    match &pat.node {
        Pat::Wild | Pat::Unit => SPat::Wild,
        Pat::Var(x) => match r.resolve_con(x) {
            Some(c) => SPat::Con(c, Vec::new()),
            None => SPat::Wild,
        },
        Pat::Int(n) => SPat::Int(*n),
        Pat::Bool(b) => SPat::Bool(*b),
        Pat::Str(s) => SPat::Str(s.clone()),
        Pat::Tuple(ps) => SPat::Tuple(ps.iter().map(|p| simplify(p, r)).collect()),
        Pat::Con(name, arg) => match r.resolve_con(name) {
            Some(c) => SPat::Con(c, vec![simplify(arg, r)]),
            None => SPat::Wild, // elaboration reports the real error
        },
        Pat::Cons(h, t) => SPat::Con(
            crate::data::CONS,
            vec![SPat::Tuple(vec![simplify(h, r), simplify(t, r)])],
        ),
        Pat::List(ps) => {
            let mut acc = SPat::Con(crate::data::NIL, Vec::new());
            for p in ps.iter().rev() {
                acc = SPat::Con(
                    crate::data::CONS,
                    vec![SPat::Tuple(vec![simplify(p, r), acc])],
                );
            }
            acc
        }
        Pat::Ascribe(inner, _) => simplify(inner, r),
    }
}

/// Head constructors appearing in the first column.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Head {
    Con(ConId),
    Tuple(usize),
    Int(i64),
    Bool(bool),
    Str(String),
}

fn head_of(p: &SPat) -> Option<Head> {
    match p {
        SPat::Wild => None,
        SPat::Con(c, _) => Some(Head::Con(*c)),
        SPat::Tuple(ps) => Some(Head::Tuple(ps.len())),
        SPat::Int(n) => Some(Head::Int(*n)),
        SPat::Bool(b) => Some(Head::Bool(*b)),
        SPat::Str(s) => Some(Head::Str(s.clone())),
    }
}

fn head_arity(h: &Head, data: &DataEnv) -> usize {
    match h {
        Head::Con(c) => usize::from(data.con(*c).has_arg()),
        Head::Tuple(n) => *n,
        _ => 0,
    }
}

/// Specializes a row for head `h`: if the first pattern matches `h`, the
/// row continues with the sub-patterns prepended; otherwise the row drops
/// out.
fn specialize_row(row: &[SPat], h: &Head, data: &DataEnv) -> Option<Vec<SPat>> {
    let (first, rest) = row.split_first().expect("nonempty row");
    let arity = head_arity(h, data);
    let mut out: Vec<SPat>;
    match (first, h) {
        (SPat::Wild, _) => {
            out = vec![SPat::Wild; arity];
        }
        (SPat::Con(c, args), Head::Con(hc)) if c == hc => {
            out = args.clone();
            // Nullary constructor stored with no args; normalize width.
            out.resize(arity, SPat::Wild);
        }
        (SPat::Tuple(ps), Head::Tuple(n)) if ps.len() == *n => {
            out = ps.clone();
        }
        (SPat::Int(a), Head::Int(b)) if a == b => out = Vec::new(),
        (SPat::Bool(a), Head::Bool(b)) if a == b => out = Vec::new(),
        (SPat::Str(a), Head::Str(b)) if a == b => out = Vec::new(),
        _ => return None,
    }
    out.extend_from_slice(rest);
    Some(out)
}

/// The default matrix: rows whose first pattern is a wildcard, with it
/// removed.
fn default_row(row: &[SPat]) -> Option<Vec<SPat>> {
    let (first, rest) = row.split_first().expect("nonempty row");
    match first {
        SPat::Wild => Some(rest.to_vec()),
        _ => None,
    }
}

/// Whether the set of heads forms a complete signature for its type.
fn signature_complete(heads: &[Head], data: &DataEnv) -> bool {
    match heads.first() {
        None => false,
        Some(Head::Tuple(_)) => true, // a tuple type has one constructor
        Some(Head::Con(c)) => {
            let d = data.con(*c).data;
            let all: BTreeSet<ConId> = data.datatype(d).cons.iter().copied().collect();
            let seen: BTreeSet<ConId> = heads
                .iter()
                .filter_map(|h| match h {
                    Head::Con(c) => Some(*c),
                    _ => None,
                })
                .collect();
            seen == all
        }
        Some(Head::Bool(_)) => {
            heads.contains(&Head::Bool(true)) && heads.contains(&Head::Bool(false))
        }
        // Integers and strings are never covered by finitely many literals.
        Some(Head::Int(_)) | Some(Head::Str(_)) => false,
    }
}

/// Is the row `q` useful with respect to `matrix` (could it match
/// something no earlier row matches)?
pub fn useful(matrix: &[Vec<SPat>], q: &[SPat], data: &DataEnv) -> bool {
    if q.is_empty() {
        return matrix.is_empty();
    }
    match head_of(&q[0]) {
        Some(h) => {
            let sm: Vec<Vec<SPat>> = matrix
                .iter()
                .filter_map(|row| specialize_row(row, &h, data))
                .collect();
            let sq = specialize_row(q, &h, data).expect("q matches its own head");
            useful(&sm, &sq, data)
        }
        None => {
            // q starts with a wildcard: consider the heads in the matrix.
            let mut heads = Vec::new();
            for row in matrix {
                if let Some(h) = head_of(&row[0]) {
                    if !heads.contains(&h) {
                        heads.push(h);
                    }
                }
            }
            if signature_complete(&heads, data) {
                heads.into_iter().any(|h| {
                    let sm: Vec<Vec<SPat>> = matrix
                        .iter()
                        .filter_map(|row| specialize_row(row, &h, data))
                        .collect();
                    let arity = head_arity(&h, data);
                    let mut sq = vec![SPat::Wild; arity];
                    sq.extend_from_slice(&q[1..]);
                    useful(&sm, &sq, data)
                })
            } else {
                let dm: Vec<Vec<SPat>> = matrix.iter().filter_map(|row| default_row(row)).collect();
                useful(&dm, &q[1..], data)
            }
        }
    }
}

/// Analysis result for a match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchReport {
    /// The match does not cover every value.
    pub non_exhaustive: bool,
    /// Zero-based indices of arms that can never match.
    pub redundant: Vec<usize>,
}

/// Analyzes a one-column match.
pub fn analyze(pats: &[SPat], data: &DataEnv) -> MatchReport {
    let mut matrix: Vec<Vec<SPat>> = Vec::with_capacity(pats.len());
    let mut redundant = Vec::new();
    for (i, p) in pats.iter().enumerate() {
        let row = vec![p.clone()];
        if !useful(&matrix, &row, data) {
            redundant.push(i);
        }
        matrix.push(row);
    }
    let non_exhaustive = useful(&matrix, &[SPat::Wild], data);
    MatchReport {
        non_exhaustive,
        redundant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DataEnv, CONS, NIL};

    fn list_data() -> DataEnv {
        DataEnv::new()
    }

    fn cons(h: SPat, t: SPat) -> SPat {
        SPat::Con(CONS, vec![SPat::Tuple(vec![h, t])])
    }

    fn nil() -> SPat {
        SPat::Con(NIL, Vec::new())
    }

    #[test]
    fn nil_cons_is_exhaustive() {
        let data = list_data();
        let r = analyze(&[nil(), cons(SPat::Wild, SPat::Wild)], &data);
        assert!(!r.non_exhaustive);
        assert!(r.redundant.is_empty());
    }

    #[test]
    fn missing_nil_is_reported() {
        let data = list_data();
        let r = analyze(&[cons(SPat::Wild, SPat::Wild)], &data);
        assert!(r.non_exhaustive);
    }

    #[test]
    fn wildcard_covers_everything() {
        let data = list_data();
        let r = analyze(&[SPat::Wild], &data);
        assert!(!r.non_exhaustive);
    }

    #[test]
    fn arm_after_wildcard_is_redundant() {
        let data = list_data();
        let r = analyze(&[SPat::Wild, nil()], &data);
        assert_eq!(r.redundant, vec![1]);
    }

    #[test]
    fn duplicate_constructor_is_redundant() {
        let data = list_data();
        let r = analyze(&[nil(), nil(), cons(SPat::Wild, SPat::Wild)], &data);
        assert_eq!(r.redundant, vec![1]);
        assert!(!r.non_exhaustive);
    }

    #[test]
    fn int_literals_never_exhaust() {
        let data = list_data();
        let r = analyze(&[SPat::Int(0), SPat::Int(1)], &data);
        assert!(r.non_exhaustive);
        let r = analyze(&[SPat::Int(0), SPat::Wild], &data);
        assert!(!r.non_exhaustive);
    }

    #[test]
    fn bools_exhaust_with_both_literals() {
        let data = list_data();
        let r = analyze(&[SPat::Bool(true), SPat::Bool(false)], &data);
        assert!(!r.non_exhaustive);
        let r = analyze(&[SPat::Bool(true)], &data);
        assert!(r.non_exhaustive);
    }

    #[test]
    fn nested_lists_analyzed_deeply() {
        let data = list_data();
        // [nil, x :: nil] misses x :: y :: _.
        let r = analyze(&[nil(), cons(SPat::Wild, nil())], &data);
        assert!(r.non_exhaustive);
        // Adding x :: y :: _ completes it.
        let r = analyze(
            &[
                nil(),
                cons(SPat::Wild, nil()),
                cons(SPat::Wild, cons(SPat::Wild, SPat::Wild)),
            ],
            &data,
        );
        assert!(!r.non_exhaustive);
    }

    #[test]
    fn tuples_expand_columns() {
        let data = list_data();
        // (nil, nil) | (_ :: _, _) | (_, _ :: _) is exhaustive.
        let r = analyze(
            &[
                SPat::Tuple(vec![nil(), nil()]),
                SPat::Tuple(vec![cons(SPat::Wild, SPat::Wild), SPat::Wild]),
                SPat::Tuple(vec![SPat::Wild, cons(SPat::Wild, SPat::Wild)]),
            ],
            &data,
        );
        assert!(!r.non_exhaustive, "{r:?}");
        // Dropping the last arm leaves (nil, _ :: _) uncovered.
        let r = analyze(
            &[
                SPat::Tuple(vec![nil(), nil()]),
                SPat::Tuple(vec![cons(SPat::Wild, SPat::Wild), SPat::Wild]),
            ],
            &data,
        );
        assert!(r.non_exhaustive);
    }

    #[test]
    fn user_datatype_signature() {
        let mut data = DataEnv::new();
        let d = data.declare(
            "t".into(),
            vec![],
            vec![("A".into(), None), ("B".into(), None), ("C".into(), None)],
        );
        let cs = data.datatype(d).cons.clone();
        let a = SPat::Con(cs[0], vec![]);
        let b = SPat::Con(cs[1], vec![]);
        let c = SPat::Con(cs[2], vec![]);
        let r = analyze(&[a.clone(), b.clone()], &data);
        assert!(r.non_exhaustive);
        let r = analyze(&[a, b, c], &data);
        assert!(!r.non_exhaustive);
    }
}
