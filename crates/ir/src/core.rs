//! The MLbox core intermediate representation: an explicit λ□ extended
//! with the core-SML constructs the paper's compiler supports (§6).
//!
//! Elaboration (see [`crate::elab`]) lowers the surface syntax to this IR:
//! identifiers are resolved (value variable / code variable / constructor /
//! builtin), all binders are alpha-renamed to unique [`Name`]s, nested
//! patterns are compiled to single-level tag dispatch, and sugar
//! (`andalso`, list literals, clausal `fun`, sequences) is expanded.

use crate::data::ConId;
use crate::name::Name;
use mlbox_syntax::span::{Span, Spanned};
use std::rc::Rc;

/// A spanned core expression.
pub type CExprS = Spanned<CExpr>;

/// Literal constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(Rc<str>),
    /// Unit.
    Unit,
}

/// Primitive operations, with fixed arities.
///
/// The elaborator unpacks tuple-typed builtin applications (e.g.
/// `sub (a, i)`) into multi-argument primitive applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    /// Integer addition (2).
    Add,
    /// Integer subtraction (2).
    Sub,
    /// Integer multiplication (2).
    Mul,
    /// Integer division, truncating (2). Fails on division by zero.
    Div,
    /// Integer remainder (2). Fails on division by zero.
    Mod,
    /// Integer negation (1).
    Neg,
    /// Structural equality (2).
    Eq,
    /// Structural inequality (2).
    Ne,
    /// Integer/string less-than (2).
    Lt,
    /// Integer/string less-or-equal (2).
    Le,
    /// Integer/string greater-than (2).
    Gt,
    /// Integer/string greater-or-equal (2).
    Ge,
    /// String concatenation (2).
    Concat,
    /// Bitwise AND on integers (2) — needed by the BPF `JSET` opcode.
    BitAnd,
    /// Boolean negation (1).
    Not,
    /// String length (1).
    StrSize,
    /// Integer to string (1).
    IntToString,
    /// Print a string to the session output buffer (1).
    Print,
    /// Allocate a reference cell (1).
    Ref,
    /// Dereference (1).
    Deref,
    /// Reference assignment (2).
    Assign,
    /// `array (n, init)`: allocate an array of `n` copies of `init` (2).
    MkArray,
    /// `sub (a, i)`: array indexing (2). Fails if out of bounds.
    ArrSub,
    /// `update (a, i, v)`: array update (3). Fails if out of bounds.
    ArrUpdate,
    /// `length a`: array length (1).
    ArrLen,
}

impl Prim {
    /// Number of arguments the primitive consumes.
    pub fn arity(self) -> usize {
        match self {
            Prim::Neg
            | Prim::Not
            | Prim::StrSize
            | Prim::IntToString
            | Prim::Print
            | Prim::Ref
            | Prim::Deref
            | Prim::ArrLen => 1,
            Prim::ArrUpdate => 3,
            _ => 2,
        }
    }
}

/// One function of a recursive `fun ... and ...` group, in curried form
/// with an explicit first parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct FunDef {
    /// The function's name (in scope in every body of the group).
    pub name: Name,
    /// The first (machine-level) parameter.
    pub param: Name,
    /// The body; additional curried parameters appear as nested [`CExpr::Lam`].
    pub body: CExprS,
}

/// One arm of a single-level datatype dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    /// Constructor tag to match.
    pub con: ConId,
    /// Binder for the payload (`None` for nullary constructors).
    pub binder: Option<Name>,
    /// Arm body.
    pub rhs: CExprS,
}

/// Core expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum CExpr {
    /// A literal constant.
    Lit(Lit),
    /// A value variable (from Γ).
    Var(Name),
    /// A code variable (from Δ); *using* one invokes its generator.
    CodeVar(Name),
    /// λ-abstraction.
    Lam(Name, Box<CExprS>),
    /// Application.
    App(Box<CExprS>, Box<CExprS>),
    /// Saturated primitive application.
    Prim(Prim, Vec<CExprS>),
    /// Conditional.
    If(Box<CExprS>, Box<CExprS>, Box<CExprS>),
    /// Non-recursive let binding.
    Let(Name, Box<CExprS>, Box<CExprS>),
    /// Recursive function group.
    LetRec(Rc<Vec<FunDef>>, Box<CExprS>),
    /// Tuple construction (n >= 2). Represented as right-nested machine
    /// pairs: `(a, b, c)` is `(a, (b, c))`.
    Tuple(Vec<CExprS>),
    /// Tuple projection: `Proj { index, arity }` of a tuple expression.
    Proj {
        /// Zero-based component index.
        index: usize,
        /// Number of components in the tuple type.
        arity: usize,
        /// The tuple expression.
        tuple: Box<CExprS>,
    },
    /// Datatype constructor application (`None` payload for nullary).
    Con(ConId, Option<Box<CExprS>>),
    /// Single-level dispatch on a datatype value.
    Case {
        /// Scrutinee.
        scrut: Box<CExprS>,
        /// Arms (distinct tags).
        arms: Vec<CaseArm>,
        /// Fallback when no arm matches.
        default: Option<Box<CExprS>>,
    },
    /// `code M` — a generator for the code of `M` (modal introduction).
    Code(Box<CExprS>),
    /// `lift M` — evaluate `M` now; generator quotes the value.
    Lift(Box<CExprS>),
    /// `let cogen u = M in N` — bind the code variable `u`.
    LetCogen(Name, Box<CExprS>, Box<CExprS>),
    /// Run-time failure with a message (produced for inexhaustive matches).
    Fail(Rc<str>),
    /// Type ascription `e : ty` (checked by the type checker, erased by
    /// the compiler and interpreter).
    Ascribe(Box<CExprS>, mlbox_syntax::ast::TyS),
}

impl CExpr {
    /// Wraps the expression with a span.
    pub fn at(self, span: Span) -> CExprS {
        Spanned::new(self, span)
    }
}

/// An elaborated top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreDecl {
    /// `val x = e` (patterns are decomposed into several such binds).
    Val(Name, CExprS),
    /// A recursive function group.
    Fun(Rc<Vec<FunDef>>),
    /// `cogen u = e`.
    Cogen(Name, CExprS),
    /// A bare expression evaluated for its value.
    Expr(CExprS),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prim_arities() {
        assert_eq!(Prim::Add.arity(), 2);
        assert_eq!(Prim::Not.arity(), 1);
        assert_eq!(Prim::ArrUpdate.arity(), 3);
        assert_eq!(Prim::MkArray.arity(), 2);
    }
}
