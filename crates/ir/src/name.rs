//! Alpha-renamed variable names.
//!
//! Elaboration gives every binder a globally unique [`Name`] so that later
//! phases (type checking, compilation to environment paths) never need to
//! reason about shadowing.

use std::fmt;
use std::rc::Rc;

/// A unique variable name: the source spelling plus a disambiguating id.
///
/// Equality and hashing use only the id.
#[derive(Debug, Clone)]
pub struct Name {
    text: Rc<str>,
    id: u32,
}

impl Name {
    /// The source spelling of the variable.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The unique id assigned at elaboration time.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// A synthetic name with a fixed id, for internal use where collision
    /// with [`NameGen`]-produced names is impossible (ids count up from 0).
    pub(crate) fn synthetic(id: u32) -> Name {
        Name {
            text: Rc::from("$_"),
            id,
        }
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.text, self.id)
    }
}

/// A generator of fresh [`Name`]s.
#[derive(Debug, Default)]
pub struct NameGen {
    next: u32,
}

impl NameGen {
    /// A new generator starting at id 0.
    pub fn new() -> Self {
        NameGen::default()
    }

    /// A fresh name with the given source spelling.
    pub fn fresh(&mut self, text: &str) -> Name {
        let id = self.next;
        self.next += 1;
        Name {
            text: Rc::from(text),
            id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_names_are_distinct() {
        let mut g = NameGen::new();
        let a = g.fresh("x");
        let b = g.fresh("x");
        assert_ne!(a, b);
        assert_eq!(a.text(), b.text());
    }

    #[test]
    fn equality_ignores_text() {
        let mut g = NameGen::new();
        let a = g.fresh("x");
        let a2 = a.clone();
        assert_eq!(a, a2);
    }

    #[test]
    fn display_shows_text_and_id() {
        let mut g = NameGen::new();
        let a = g.fresh("poly");
        assert_eq!(a.to_string(), "poly#0");
    }
}
