//! The datatype environment: user-declared datatypes plus the builtin
//! `list` and `bool`-like primitives' constructor metadata.
//!
//! Constructors get globally unique [`ConId`]s, used as dispatch tags by
//! the interpreter and the CCAM.

use mlbox_syntax::ast::TyS;

/// A globally unique constructor tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConId(pub u32);

/// A datatype id (index into [`DataEnv::datatypes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataId(pub u32);

/// Metadata for one constructor.
#[derive(Debug, Clone)]
pub struct ConInfo {
    /// Constructor name as written in source.
    pub name: String,
    /// The datatype the constructor belongs to.
    pub data: DataId,
    /// Position within the datatype's constructor list.
    pub index: u32,
    /// Argument type as written in the declaration (`None` for nullary).
    /// Type variables refer to the datatype's `tyvars`.
    pub arg: Option<TyS>,
}

impl ConInfo {
    /// Whether the constructor carries a payload.
    pub fn has_arg(&self) -> bool {
        self.arg.is_some()
    }
}

/// Metadata for one datatype.
#[derive(Debug, Clone)]
pub struct DataInfo {
    /// Datatype name.
    pub name: String,
    /// Declared type parameters.
    pub tyvars: Vec<String>,
    /// The datatype's constructors.
    pub cons: Vec<ConId>,
}

/// All datatypes known to a program, with constructor tag interning.
#[derive(Debug, Clone, Default)]
pub struct DataEnv {
    datatypes: Vec<DataInfo>,
    cons: Vec<ConInfo>,
}

/// The [`ConId`] of the builtin `nil` list constructor.
pub const NIL: ConId = ConId(0);
/// The [`ConId`] of the builtin `::` list constructor.
pub const CONS: ConId = ConId(1);
/// The [`DataId`] of the builtin `list` datatype.
pub const LIST: DataId = DataId(0);

impl DataEnv {
    /// A fresh environment containing only the builtin `'a list` datatype
    /// (`nil` and `::`).
    pub fn new() -> Self {
        let mut env = DataEnv::default();
        let list = env.declare(
            "list".to_string(),
            vec!["a".to_string()],
            vec![("nil".to_string(), None), ("::".to_string(), None)],
        );
        debug_assert_eq!(list, LIST);
        // The `::` payload is `'a * 'a list`; we cannot express it as a
        // surface `TyS` conveniently before parsing, so the type checker
        // special-cases LIST/CONS. Mark it as carrying a payload:
        env.cons[CONS.0 as usize].arg = Some(mlbox_syntax::span::Spanned::new(
            mlbox_syntax::ast::Ty::Con("__cons_payload".to_string(), Vec::new()),
            mlbox_syntax::span::Span::SYNTH,
        ));
        env
    }

    /// Declares a datatype; returns its id. Constructors are listed as
    /// `(name, argument type)` pairs.
    pub fn declare(
        &mut self,
        name: String,
        tyvars: Vec<String>,
        cons: Vec<(String, Option<TyS>)>,
    ) -> DataId {
        let data = DataId(self.datatypes.len() as u32);
        let mut ids = Vec::with_capacity(cons.len());
        for (index, (cname, arg)) in cons.into_iter().enumerate() {
            let id = ConId(self.cons.len() as u32);
            self.cons.push(ConInfo {
                name: cname,
                data,
                index: index as u32,
                arg,
            });
            ids.push(id);
        }
        self.datatypes.push(DataInfo {
            name,
            tyvars,
            cons: ids,
        });
        data
    }

    /// Metadata for a constructor.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this environment.
    pub fn con(&self, id: ConId) -> &ConInfo {
        &self.cons[id.0 as usize]
    }

    /// Metadata for a datatype.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this environment.
    pub fn datatype(&self, id: DataId) -> &DataInfo {
        &self.datatypes[id.0 as usize]
    }

    /// All datatypes, in declaration order.
    pub fn datatypes(&self) -> impl Iterator<Item = (DataId, &DataInfo)> {
        self.datatypes
            .iter()
            .enumerate()
            .map(|(i, d)| (DataId(i as u32), d))
    }

    /// Number of interned constructors.
    pub fn con_count(&self) -> usize {
        self.cons.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_list_is_first() {
        let env = DataEnv::new();
        assert_eq!(env.con(NIL).name, "nil");
        assert_eq!(env.con(CONS).name, "::");
        assert!(env.con(CONS).has_arg());
        assert!(!env.con(NIL).has_arg());
        assert_eq!(env.datatype(LIST).name, "list");
    }

    #[test]
    fn declare_assigns_sequential_tags() {
        let mut env = DataEnv::new();
        let d = env.declare(
            "t".into(),
            vec![],
            vec![("A".into(), None), ("B".into(), None)],
        );
        let info = env.datatype(d).clone();
        assert_eq!(info.cons.len(), 2);
        assert_eq!(env.con(info.cons[0]).name, "A");
        assert_eq!(env.con(info.cons[1]).index, 1);
        assert_eq!(env.con(info.cons[1]).data, d);
    }
}
