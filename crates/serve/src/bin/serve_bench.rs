//! `serve-bench` — throughput sweep for the filter-serving engine.
//!
//! Sweeps workers × batch size over the four Table 1 filters, with every
//! packet verified against two oracles (the native BPF interpreter for
//! verdicts; a single-threaded artifact instance for verdicts *and*
//! per-packet reduction-step counts), and emits `BENCH_serve.json` on
//! stdout. Progress goes to stderr.
//!
//! Usage:
//!
//! ```text
//! serve-bench [--smoke] [--fuse] [--flat-env] [--native] [--persist]
//!             [--workers 1,2,4] [--batches 8,32] [--rounds N] [--tenants N]
//! ```
//!
//! `--smoke` is the CI configuration: 2 workers, one batch per filter.
//! `--persist` switches to the persistence benchmark: it measures
//! cold-start (loading a stored artifact vs. re-running the generator)
//! for the Table 1 filters, then drives a multi-tenant sweep through a
//! disk-backed pool whose cache is deliberately smaller than the filter
//! population — evicted artifacts must come back from the store, not
//! the generator — and emits `BENCH_serve_persist.json` instead of
//! `BENCH_serve.json`. `--tenants N` overrides the sweep's tenant count.
//! `--fuse` runs the whole sweep (oracle included) under
//! `SessionOptions::fuse`, so artifacts carry fused superinstructions
//! and the per-packet step oracle checks the fused cost model.
//! `--flat-env` does the same under `SessionOptions::flat_env`, so
//! artifacts carry frame environments and the oracle checks flat-mode
//! step counts.
//! `--native` runs every worker (and the oracle) through the
//! thread-coded native tier (`SessionOptions::native`); step counts are
//! identical to the interpreter, only dispatch changes.
//! `--tiered` runs the adaptive-tiering comparison instead: a mixed
//! hot/cold multi-tenant workload served once per static flavor point
//! (all 8 combinations of optimize × fuse × native) and once under the
//! adaptive profile (`SessionOptions::adaptive`), each against a fresh
//! pool and cache so specialization cost is inside the measurement.
//! Reps are interleaved round-robin and the comparison is paired per
//! round: the adaptive point must beat every static point in a majority
//! of rounds — asserted, not just reported — while its verdicts *and
//! per-packet step counts* stay identical to the plain profile. Emits
//! `BENCH_serve_tiered.json`.

use mlbox::{SessionOptions, TierPolicy};
use mlbox_bpf::harness::{expect_verdict, filter_arg};
use mlbox_bpf::insn::Insn;
use mlbox_bpf::native::run_filter;
use mlbox_bpf::packet::Packet;
use mlbox_bpf::{
    chain_filter, multi_port_filter, port_filter, telnet_filter, FilterHarness, PacketGen,
};
use mlbox_serve::{AdmissionError, ArtifactStore, FilterCache, PoolConfig, ServePool, Ticket};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    smoke: bool,
    persist: bool,
    tiered: bool,
    tenants: usize,
    workers_sweep: Vec<usize>,
    batch_sizes: Vec<usize>,
    rounds: usize,
    packets_per_filter: usize,
    /// The one options value used for the oracle harness, the pre-warm,
    /// and every pool worker — they must agree, or the exact per-packet
    /// step assertions (and the one-miss-per-filter cache identity)
    /// would compare different execution modes.
    options: SessionOptions,
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let options = SessionOptions {
        fuse: args.iter().any(|a| a == "--fuse"),
        flat_env: args.iter().any(|a| a == "--flat-env"),
        native: args.iter().any(|a| a == "--native"),
        ..SessionOptions::default()
    };
    let list = |flag: &str, default: Vec<usize>| -> Vec<usize> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.split(',')
                    .map(|n| n.parse().expect("numeric sweep value"))
                    .collect()
            })
            .unwrap_or(default)
    };
    let scalar = |flag: &str, default: usize| -> usize { list(flag, vec![default])[0] };
    let persist = args.iter().any(|a| a == "--persist");
    let tiered = args.iter().any(|a| a == "--tiered");
    if smoke {
        Config {
            smoke,
            persist,
            tiered,
            tenants: scalar("--tenants", 48),
            workers_sweep: list("--workers", vec![2]),
            batch_sizes: list("--batches", vec![16]),
            rounds: scalar("--rounds", 1),
            packets_per_filter: 16,
            options,
        }
    } else {
        Config {
            smoke,
            persist,
            tiered,
            tenants: scalar("--tenants", 2048),
            workers_sweep: list("--workers", vec![1, 2, 4]),
            batch_sizes: list("--batches", vec![8, 32]),
            rounds: scalar("--rounds", 3),
            packets_per_filter: 64,
            options,
        }
    }
}

/// One filter's workload with oracle answers attached.
struct Workload {
    name: &'static str,
    filter: Arc<Vec<Insn>>,
    packets: Vec<Packet>,
    /// Single-threaded artifact oracle: (verdict, steps) per packet.
    expected: Vec<(i64, u64)>,
    /// Steps the one-time specialization cost (for the report).
    specialize_steps: u64,
    /// Instructions in the extracted artifact.
    artifact_instructions: usize,
}

fn build_workloads(config: &Config) -> Vec<Workload> {
    let filters: Vec<(&'static str, Vec<Insn>)> = vec![
        ("accept_telnet", telnet_filter()),
        ("accept_port_80", port_filter(80)),
        ("accept_ports_22_23_80", multi_port_filter(&[22, 23, 80])),
        ("chain_8", chain_filter(8)),
    ];
    filters
        .into_iter()
        .enumerate()
        .map(|(i, (name, filter))| {
            let mut generator = PacketGen::new(41 + i as u64);
            let packets = generator.workload(config.packets_per_filter, 0.5);
            let mut harness = FilterHarness::with_options(&filter, config.options.clone())
                .expect("harness builds");
            let specialize_steps = harness.specialize().expect("filter specializes").steps;
            let artifact = harness.compile_artifact().expect("artifact extracts");
            let artifact_instructions = artifact.instructions();
            let mut instance = artifact.instantiate();
            let expected = packets
                .iter()
                .map(|pkt| {
                    let (value, stats) = instance.run(filter_arg(pkt)).expect("oracle run");
                    let verdict = expect_verdict(&value).expect("integer verdict");
                    assert_eq!(
                        verdict,
                        run_filter(&filter, &pkt.bytes),
                        "{name}: oracle disagrees with the native interpreter"
                    );
                    (verdict, stats.steps)
                })
                .collect();
            Workload {
                name,
                filter: Arc::new(filter),
                packets,
                expected,
                specialize_steps,
                artifact_instructions,
            }
        })
        .collect()
}

struct SweepPoint {
    workers: usize,
    batch_size: usize,
    batches: u64,
    packets: u64,
    steps: u64,
    elapsed_secs: f64,
}

impl SweepPoint {
    fn packets_per_sec(&self) -> f64 {
        self.packets as f64 / self.elapsed_secs.max(1e-9)
    }

    fn steps_per_packet(&self) -> f64 {
        self.steps as f64 / (self.packets as f64).max(1.0)
    }
}

/// Runs one (workers, batch_size) sweep point against the shared cache,
/// verifying every batch against the oracle.
fn run_sweep_point(
    config: &Config,
    cache: &Arc<FilterCache>,
    workloads: &[Workload],
    workers: usize,
    batch_size: usize,
) -> SweepPoint {
    let pool = ServePool::with_cache(
        PoolConfig {
            workers,
            queue_depth: 64,
            cache_capacity: 64,
            options: config.options.clone(),
            store: None,
        },
        Arc::clone(cache),
    );
    let started = Instant::now();
    let mut tickets: Vec<(usize, usize, Ticket)> = Vec::new();
    for _ in 0..config.rounds {
        for (w, workload) in workloads.iter().enumerate() {
            for (chunk_index, chunk) in workload.packets.chunks(batch_size).enumerate() {
                let ticket = pool.submit(Arc::clone(&workload.filter), chunk.to_vec());
                tickets.push((w, chunk_index * batch_size, ticket));
            }
        }
    }
    let mut packets = 0u64;
    let mut steps = 0u64;
    let mut batches = 0u64;
    for (w, offset, ticket) in tickets {
        let workload = &workloads[w];
        let result = ticket.wait();
        let output = result
            .outcome
            .unwrap_or_else(|e| panic!("{}: batch failed: {e}", workload.name));
        batches += 1;
        for (i, (&verdict, &step_count)) in
            output.verdicts.iter().zip(output.steps.iter()).enumerate()
        {
            let (expected_verdict, expected_steps) = workload.expected[offset + i];
            assert_eq!(
                verdict,
                expected_verdict,
                "{}: packet {} verdict diverged from the oracle",
                workload.name,
                offset + i
            );
            assert_eq!(
                step_count,
                expected_steps,
                "{}: packet {} step count diverged from the oracle",
                workload.name,
                offset + i
            );
            packets += 1;
            steps += step_count;
        }
    }
    let elapsed_secs = started.elapsed().as_secs_f64();
    pool.shutdown();
    SweepPoint {
        workers,
        batch_size,
        batches,
        packets,
        steps,
        elapsed_secs,
    }
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// Cold-start numbers for one filter: what re-running the generator
/// costs vs. loading the persisted artifact.
struct ColdStart {
    name: &'static str,
    compile_ms: f64,
    load_ms: f64,
    speedup: f64,
}

/// Measures compile-vs-load for the Table 1 filters against `store`.
/// Compile = build a harness session and extract the artifact (what a
/// cold process without a store must do); load = read, decode, verify,
/// and compatibility-check the stored container (what a cold process
/// with a store does). Both are min-of-reps; every loaded artifact is
/// verified to serve the same verdicts as the native interpreter.
fn measure_cold_start(config: &Config, store: &ArtifactStore) -> Vec<ColdStart> {
    let filters: Vec<(&'static str, Vec<Insn>)> = vec![
        ("accept_telnet", telnet_filter()),
        ("accept_port_80", port_filter(80)),
        ("accept_ports_22_23_80", multi_port_filter(&[22, 23, 80])),
        ("chain_8", chain_filter(8)),
    ];
    let compile_reps = if config.smoke { 2 } else { 5 };
    let load_reps = if config.smoke { 20 } else { 100 };
    filters
        .into_iter()
        .map(|(name, filter)| {
            let fingerprint = mlbox_bpf::insn::fingerprint(&filter);
            let mut compile_ms = f64::INFINITY;
            let mut artifact = None;
            for _ in 0..compile_reps {
                let started = Instant::now();
                let mut harness = FilterHarness::with_options(&filter, config.options.clone())
                    .expect("harness builds");
                let compiled = harness.compile_artifact().expect("artifact extracts");
                compile_ms = compile_ms.min(started.elapsed().as_secs_f64() * 1e3);
                artifact = Some(compiled);
            }
            store.save(&artifact.expect("compiled")).expect("save");
            let mut load_ms = f64::INFINITY;
            let mut loaded = None;
            for _ in 0..load_reps {
                let started = Instant::now();
                let from_disk = store
                    .load(fingerprint, &config.options)
                    .expect("store readable")
                    .expect("artifact was just saved");
                load_ms = load_ms.min(started.elapsed().as_secs_f64() * 1e3);
                loaded = Some(from_disk);
            }
            // The loaded artifact must actually serve correctly.
            let mut instance = loaded.expect("loaded").instantiate();
            let packets = PacketGen::new(97).workload(4, 0.5);
            for pkt in &packets {
                let (value, _) = instance.run(filter_arg(pkt)).expect("loaded artifact runs");
                assert_eq!(
                    expect_verdict(&value).expect("integer verdict"),
                    run_filter(&filter, &pkt.bytes),
                    "{name}: loaded artifact diverges from the native interpreter"
                );
            }
            let speedup = compile_ms / load_ms.max(1e-9);
            eprintln!(
                "serve-bench:   {name}: compile {compile_ms:.3} ms, load {load_ms:.3} ms \
                 ({speedup:.0}x)"
            );
            ColdStart {
                name,
                compile_ms,
                load_ms,
                speedup,
            }
        })
        .collect()
}

/// One tenant of the multi-tenant sweep.
struct Tenant {
    filter: Arc<Vec<Insn>>,
    packets: Vec<Packet>,
}

/// The `--persist` benchmark: cold-start measurement plus a
/// store-backed multi-tenant sweep with a deliberately undersized
/// cache, emitting `BENCH_serve_persist.json` on stdout.
fn run_persist(config: &Config) {
    let root = std::env::temp_dir().join(format!("mlbox-serve-bench-{}", std::process::id()));
    let store = Arc::new(ArtifactStore::open(&root).expect("open artifact store"));

    eprintln!(
        "serve-bench: measuring cold start (store at {})...",
        root.display()
    );
    let cold = measure_cold_start(config, &store);
    let min_speedup = cold.iter().map(|c| c.speedup).fold(f64::INFINITY, f64::min);
    assert!(
        min_speedup >= 10.0,
        "cold-start from the store must be >=10x faster than recompiling \
         (measured {min_speedup:.1}x)"
    );

    // The tenant sweep: `filters` distinct filter programs shared by
    // `tenants` tenants, served through a cache that cannot hold the
    // whole population (9 filters into capacity 8 is one per shard, so
    // at least one shard must evict). Every artifact that comes back
    // after eviction is a store load, not a generator run — the sweep
    // asserts the generator ran exactly once per distinct filter.
    let nfilters = if config.smoke { 9 } else { 32 };
    let tenants = config.tenants;
    let cache_capacity = 8;
    let filters: Vec<Arc<Vec<Insn>>> = (0..nfilters)
        .map(|i| {
            let port = 2000 + i as u16;
            Arc::new(if i % 2 == 0 {
                port_filter(port)
            } else {
                multi_port_filter(&[22, 80, port])
            })
        })
        .collect();
    let workload: Vec<Tenant> = (0..tenants)
        .map(|t| {
            let mut generator = PacketGen::new(1000 + t as u64);
            Tenant {
                filter: Arc::clone(&filters[t % nfilters]),
                packets: generator.workload(4, 0.5),
            }
        })
        .collect();

    // Pre-populate the store — the cold-process scenario: yesterday's
    // artifacts are on disk, today's process serves from them. With the
    // store populated up front, the sweep's save counter measures
    // generator runs *during serving* exactly (a concurrent first-touch
    // could otherwise double-specialize one filter benignly).
    for filter in &filters {
        let mut harness =
            FilterHarness::with_options(filter, config.options.clone()).expect("harness builds");
        let artifact = harness.compile_artifact().expect("artifact extracts");
        store.save(&artifact).expect("save");
    }
    let saves_before_sweep = store.stats().saves;

    eprintln!(
        "serve-bench: sweeping {tenants} tenants x {nfilters} filters \
         (cache capacity {cache_capacity})..."
    );
    let pool = ServePool::new(PoolConfig {
        workers: 2,
        queue_depth: 32,
        cache_capacity,
        options: config.options.clone(),
        store: Some(Arc::clone(&store)),
    });
    let started = Instant::now();
    let mut pending: VecDeque<(usize, Ticket)> = VecDeque::new();
    let mut packets_total = 0u64;
    let mut verify = |t: usize, ticket: Ticket| {
        let tenant: &Tenant = &workload[t];
        let output = ticket
            .wait()
            .outcome
            .unwrap_or_else(|e| panic!("tenant {t}: batch failed: {e}"));
        for (i, (&verdict, pkt)) in output.verdicts.iter().zip(&tenant.packets).enumerate() {
            assert_eq!(
                verdict,
                run_filter(&tenant.filter, &pkt.bytes),
                "tenant {t}: packet {i} verdict diverged from the native interpreter"
            );
            packets_total += 1;
        }
    };
    for (t, tenant) in workload.iter().enumerate() {
        loop {
            match pool.try_submit(Arc::clone(&tenant.filter), tenant.packets.clone()) {
                Ok(ticket) => {
                    pending.push_back((t, ticket));
                    break;
                }
                // Admission control in action: the queue is full, so
                // drain the oldest in-flight batch and try again.
                Err(AdmissionError::QueueFull { .. }) => {
                    let (done, ticket) = pending.pop_front().expect("work is in flight");
                    verify(done, ticket);
                }
                Err(AdmissionError::PoolClosed) => panic!("pool closed mid-sweep"),
            }
        }
    }
    for (t, ticket) in pending {
        verify(t, ticket);
    }
    let elapsed_secs = started.elapsed().as_secs_f64();
    let report = pool.shutdown();
    let store_stats = store.stats();

    // The whole point of the store tier: across every tenant request and
    // every eviction, the generator never ran during serving — every
    // cache miss was answered from disk.
    assert_eq!(
        store_stats.saves, saves_before_sweep,
        "the generator must not run while serving a populated store"
    );
    assert!(
        report.cache.evictions > 0,
        "the sweep must overflow the cache to exercise the store tier"
    );
    assert!(
        store_stats.loads > 0,
        "evicted artifacts must come back from the store"
    );
    assert_eq!(packets_total, (tenants * 4) as u64);

    let resident = store.len().expect("store readable");
    let _ = std::fs::remove_dir_all(&root);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve_persist\",\n");
    out.push_str(&format!("  \"smoke\": {},\n", config.smoke));
    out.push_str(&format!("  \"fuse\": {},\n", config.options.fuse));
    out.push_str(&format!("  \"flat_env\": {},\n", config.options.flat_env));
    out.push_str(&format!("  \"native\": {},\n", config.options.native));
    out.push_str("  \"cold_start\": [\n");
    for (i, c) in cold.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"compile_ms\": {}, \"load_ms\": {}, \"speedup\": {}}}{}\n",
            c.name,
            json_f(c.compile_ms),
            json_f(c.load_ms),
            json_f(c.speedup),
            if i + 1 < cold.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"cold_start_min_speedup\": {},\n",
        json_f(min_speedup)
    ));
    out.push_str(&format!(
        "  \"sweep\": {{\"tenants\": {tenants}, \"filters\": {nfilters}, \
         \"cache_capacity\": {cache_capacity}, \"packets\": {packets_total}, \
         \"elapsed_ms\": {}}},\n",
        json_f(elapsed_secs * 1e3)
    ));
    out.push_str(&format!(
        "  \"cache\": {{\"requests\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"expired\": {}, \"hit_rate\": {}}},\n",
        report.cache.requests(),
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.cache.expired,
        json_f(report.cache.hit_rate())
    ));
    out.push_str(&format!(
        "  \"store\": {{\"saves\": {}, \"loads\": {}, \"misses\": {}, \"resident\": {resident}}},\n",
        store_stats.saves, store_stats.loads, store_stats.misses
    ));
    out.push_str(&format!("  \"shed\": {},\n", report.shed));
    out.push_str(&format!(
        "  \"latency\": {{\"count\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \
         \"max_ms\": {}, \"mean_ms\": {}}},\n",
        report.latency.count,
        json_f(report.latency.p50_ms()),
        json_f(report.latency.p90_nanos as f64 / 1e6),
        json_f(report.latency.p99_ms()),
        json_f(report.latency.max_nanos as f64 / 1e6),
        json_f(report.latency.mean_nanos as f64 / 1e6)
    ));
    out.push_str("  \"oracle\": \"verified\"\n");
    out.push_str("}\n");
    print!("{out}");
    eprintln!(
        "serve-bench: persist ok (min cold-start speedup {min_speedup:.0}x, \
         {} evictions, {} store loads, p99 {:.3} ms)",
        report.cache.evictions,
        store_stats.loads,
        report.latency.p99_ms()
    );
}

/// One distinct filter of the tiered workload, with its packets and the
/// plain-profile oracle answers. Verdicts must hold under every flavor;
/// step counts must hold under the adaptive profile (promotion is
/// invisible in the cost model) but not under static fuse, which changes
/// the step model by design.
struct TieredFilter {
    filter: Arc<Vec<Insn>>,
    packets: Vec<Packet>,
    /// Plain-profile (verdict, steps) per packet.
    expected: Vec<(i64, u64)>,
}

/// One batch of the tiered schedule: a filter and a packet range.
struct TieredJob {
    filter: usize,
    start: usize,
    len: usize,
}

/// One execution-profile point of the tiered comparison.
struct TieredPoint {
    name: String,
    options: SessionOptions,
    packets: u64,
    /// Best-of-reps wall time for the whole workload, specialization
    /// included (fresh pool and cache per rep).
    elapsed_secs: f64,
    promotions: u64,
    refreezes: u64,
    tier_occupancy: [u64; 3],
    cache_misses: u64,
}

impl TieredPoint {
    fn packets_per_sec(&self) -> f64 {
        self.packets as f64 / self.elapsed_secs.max(1e-9)
    }
}

/// Builds the mixed hot/cold tenant population: a small hot set (the
/// Table 1 filters) carrying most of the packet volume, plus a long
/// tail of cold tenants that each specialize once and run one small
/// batch. The hot side rewards fast steady-state dispatch; the cold
/// side punishes profiles that pay rendering cost up front for code
/// that never gets hot.
fn build_tiered_filters(config: &Config) -> (Vec<TieredFilter>, Vec<TieredJob>) {
    let hot_packets = if config.smoke { 2048 } else { 8192 };
    let hot_batch = if config.smoke { 32 } else { 64 };
    let cold_tenants = if config.smoke { 16 } else { 48 };
    // The hot side is Zipf-distributed: rank r serves hot_packets / r,
    // so the top tenant dominates the way real serving traffic does.
    let mut programs: Vec<(Vec<Insn>, usize)> = vec![
        (multi_port_filter(&[22, 23, 80]), hot_packets),
        (chain_filter(8), hot_packets / 2),
        (port_filter(80), hot_packets / 3),
        (telnet_filter(), hot_packets / 4),
    ];
    for i in 0..cold_tenants {
        let port = 3000 + i as u16;
        programs.push((
            match i % 3 {
                0 => port_filter(port),
                1 => multi_port_filter(&[22, 80, port]),
                _ => chain_filter(6 + i % 10),
            },
            4,
        ));
    }
    let filters: Vec<TieredFilter> = programs
        .into_iter()
        .enumerate()
        .map(|(i, (filter, npackets))| {
            let mut generator = PacketGen::new(71 + i as u64);
            let packets = generator.workload(npackets, 0.5);
            let mut instance = FilterHarness::new(&filter)
                .expect("harness builds")
                .compile_artifact()
                .expect("artifact extracts")
                .instantiate();
            let expected = packets
                .iter()
                .map(|pkt| {
                    let (value, stats) = instance.run(filter_arg(pkt)).expect("oracle run");
                    let verdict = expect_verdict(&value).expect("integer verdict");
                    assert_eq!(
                        verdict,
                        run_filter(&filter, &pkt.bytes),
                        "tiered filter {i}: oracle disagrees with the native interpreter"
                    );
                    (verdict, stats.steps)
                })
                .collect();
            TieredFilter {
                filter: Arc::new(filter),
                packets,
                expected,
            }
        })
        .collect();
    // Deterministically shuffled batch schedule, so hot and cold work
    // interleave the way real tenant traffic would instead of running
    // in convenient phases.
    let mut jobs: Vec<TieredJob> = Vec::new();
    for (f, filter) in filters.iter().enumerate() {
        let batch = if filter.packets.len() > 4 {
            hot_batch
        } else {
            filter.packets.len()
        };
        let mut start = 0;
        while start < filter.packets.len() {
            let len = batch.min(filter.packets.len() - start);
            jobs.push(TieredJob {
                filter: f,
                start,
                len,
            });
            start += len;
        }
    }
    let mut lcg = 0x2545F4914F6CDD1Du64;
    for i in (1..jobs.len()).rev() {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        jobs.swap(i, (lcg >> 33) as usize % (i + 1));
    }
    (filters, jobs)
}

/// Serves the whole tiered schedule once through a fresh pool + cache
/// under `options`, verifying every verdict (and, when `check_steps`,
/// every per-packet step count) against the plain-profile oracle.
fn run_tiered_once(
    options: &SessionOptions,
    filters: &[TieredFilter],
    jobs: &[TieredJob],
    check_steps: bool,
) -> TieredPoint {
    let started = Instant::now();
    // One worker: the nine points compare dispatch quality per core, and
    // a single lane keeps the measurement free of scheduler interleaving
    // (the worker-scaling story is the main sweep's job, not this one's).
    let pool = ServePool::new(PoolConfig {
        workers: 1,
        queue_depth: 64,
        cache_capacity: 256,
        options: options.clone(),
        store: None,
    });
    let tickets: Vec<Ticket> = jobs
        .iter()
        .map(|job| {
            let filter = &filters[job.filter];
            let packets = filter.packets[job.start..job.start + job.len].to_vec();
            pool.submit(Arc::clone(&filter.filter), packets)
        })
        .collect();
    let mut packets = 0u64;
    for (ticket, job_ref) in tickets.into_iter().zip(jobs) {
        let filter = &filters[job_ref.filter];
        let output = ticket
            .wait()
            .outcome
            .unwrap_or_else(|e| panic!("tiered filter {}: batch failed: {e}", job_ref.filter));
        for (i, (&verdict, &steps)) in output.verdicts.iter().zip(&output.steps).enumerate() {
            let (expected_verdict, expected_steps) = filter.expected[job_ref.start + i];
            assert_eq!(
                verdict,
                expected_verdict,
                "tiered filter {}: packet {} verdict diverged",
                job_ref.filter,
                job_ref.start + i
            );
            if check_steps {
                assert_eq!(
                    steps,
                    expected_steps,
                    "tiered filter {}: packet {} step count diverged from the plain \
                     profile (promotion must be invisible in the cost model)",
                    job_ref.filter,
                    job_ref.start + i
                );
            }
            packets += 1;
        }
    }
    let elapsed_secs = started.elapsed().as_secs_f64();
    let report = pool.shutdown();
    TieredPoint {
        name: String::new(),
        options: options.clone(),
        packets,
        elapsed_secs,
        promotions: report.total_promotions(),
        refreezes: report.total_refreezes(),
        tier_occupancy: report.tier_occupancy(),
        cache_misses: report.cache.misses,
    }
}

/// The `--tiered` benchmark: all 8 static flavor points vs. the
/// adaptive profile over the same mixed hot/cold workload, emitting
/// `BENCH_serve_tiered.json`.
fn run_tiered(config: &Config) {
    eprintln!("serve-bench: building tiered workload and plain oracle...");
    let (filters, jobs) = build_tiered_filters(config);
    let reps = 7;
    let mut flavor_points: Vec<(String, SessionOptions, bool)> = (0..8u8)
        .map(|bits| {
            let options = SessionOptions {
                optimize: bits & 1 != 0,
                fuse: bits & 2 != 0,
                native: bits & 4 != 0,
                ..SessionOptions::default()
            };
            let mut name = String::from("static");
            for (on, tag) in [
                (options.optimize, "+opt"),
                (options.fuse, "+fuse"),
                (options.native, "+native"),
            ] {
                if on {
                    name.push_str(tag);
                }
            }
            if name == "static" {
                name.push_str("_plain");
            }
            (name, options, false)
        })
        .collect();
    // The serving policy promotes hot blocks to the fused rendering but
    // stops short of the native tier: thread-coded dispatch pays a
    // per-activation entry cost that the short, call-heavy blocks of
    // filter code never amortize, so tier 1 is the serving sweet spot
    // (the machine-level dispatch benchmarks are where tier 2 pays off).
    // The threshold sits above the activations a cold tenant's 4-packet
    // burst produces: promoting those blocks would spend fuse-render
    // time on code that is about to go idle.
    flavor_points.push((
        "adaptive".to_string(),
        SessionOptions {
            adaptive: Some(TierPolicy {
                promote_after: 32,
                use_native: false,
                ..TierPolicy::default()
            }),
            ..SessionOptions::default()
        },
        true,
    ));

    // Reps are interleaved round-robin across the nine points (rather
    // than run back-to-back per point) so a transient load spike on the
    // host degrades at most one rep of each point instead of sinking
    // every rep of whichever point it happened to land on; best-of-N
    // per point then discards the degraded reps.
    let mut best: Vec<Option<TieredPoint>> = flavor_points.iter().map(|_| None).collect();
    let mut rounds: Vec<Vec<f64>> = flavor_points.iter().map(|_| Vec::new()).collect();
    for _ in 0..reps {
        for (slot, (_, options, adaptive)) in flavor_points.iter().enumerate() {
            let point = run_tiered_once(options, &filters, &jobs, *adaptive);
            rounds[slot].push(point.elapsed_secs);
            if best[slot]
                .as_ref()
                .is_none_or(|b| point.elapsed_secs < b.elapsed_secs)
            {
                best[slot] = Some(point);
            }
        }
    }
    let mut points: Vec<TieredPoint> = Vec::new();
    for ((name, _, _), best) in flavor_points.iter().zip(best) {
        let mut point = best.expect("at least one rep");
        point.name.clone_from(name);
        eprintln!(
            "serve-bench:   {name}: {} packets in {:.1} ms ({:.0} packets/sec, \
             {} promotions, occupancy {:?})",
            point.packets,
            point.elapsed_secs * 1e3,
            point.packets_per_sec(),
            point.promotions,
            point.tier_occupancy
        );
        points.push(point);
    }

    let adaptive = points.last().expect("adaptive point ran");
    assert!(
        adaptive.promotions > 0,
        "the adaptive profile never promoted a block"
    );
    assert!(
        adaptive.tier_occupancy[1] + adaptive.tier_occupancy[2] > 0,
        "promoted renderings never executed"
    );
    // The throughput comparison is paired: adaptive and each static
    // point are timed within the same interleaved round (seconds apart
    // at most), so host-load drift across the run cancels out of the
    // per-round verdict. Adaptive must win the majority of rounds
    // against every static point — a single-number best-of comparison
    // would let a slow phase of the host decide the outcome.
    let adaptive_rounds = rounds.last().expect("adaptive rounds recorded");
    for (point, static_rounds) in points[..points.len() - 1].iter().zip(&rounds) {
        let wins = adaptive_rounds
            .iter()
            .zip(static_rounds)
            .filter(|(a, s)| a < s)
            .count();
        assert!(
            2 * wins > reps,
            "adaptive must beat {} in a majority of paired rounds, won {wins}/{reps} \
             (best-of: adaptive {:.0} vs {} {:.0} packets/sec)",
            point.name,
            adaptive.packets_per_sec(),
            point.name,
            point.packets_per_sec()
        );
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve_tiered\",\n");
    out.push_str(&format!("  \"smoke\": {},\n", config.smoke));
    out.push_str(&format!(
        "  \"filters\": {}, \"jobs\": {}, \"reps\": {reps},\n",
        filters.len(),
        jobs.len()
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let adaptive_wins = adaptive_rounds
            .iter()
            .zip(&rounds[i])
            .filter(|(a, s)| a < s)
            .count();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"optimize\": {}, \"fuse\": {}, \"native\": {}, \
             \"adaptive\": {}, \"packets\": {}, \"elapsed_ms\": {}, \"packets_per_sec\": {}, \
             \"adaptive_round_wins\": {adaptive_wins}, \
             \"promotions\": {}, \"refreezes\": {}, \"tier_steps\": [{}, {}, {}], \
             \"cache_misses\": {}}}{}\n",
            p.name,
            p.options.optimize,
            p.options.fuse,
            p.options.native,
            p.options.adaptive.is_some(),
            p.packets,
            json_f(p.elapsed_secs * 1e3),
            json_f(p.packets_per_sec()),
            p.promotions,
            p.refreezes,
            p.tier_occupancy[0],
            p.tier_occupancy[1],
            p.tier_occupancy[2],
            p.cache_misses,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"oracle\": \"verified\",\n");
    out.push_str("  \"adaptive_beats_all_static\": true\n");
    out.push_str("}\n");
    print!("{out}");
    eprintln!(
        "serve-bench: tiered ok (adaptive {:.0} packets/sec beats all 8 static points)",
        adaptive.packets_per_sec()
    );
}

fn main() {
    let config = parse_args();
    if config.persist {
        run_persist(&config);
        return;
    }
    if config.tiered {
        run_tiered(&config);
        return;
    }
    eprintln!("serve-bench: building workloads and oracles...");
    let workloads = build_workloads(&config);
    let distinct_filters = workloads.len() as u64;

    // One cache for the whole sweep: pre-warm it (the only misses), then
    // every batch in every sweep point must hit.
    let cache = Arc::new(FilterCache::new(64));
    for workload in &workloads {
        cache
            .get_or_specialize(&workload.filter, &config.options)
            .expect("pre-warm specialization");
    }

    let mut sweep = Vec::new();
    for &workers in &config.workers_sweep {
        for &batch_size in &config.batch_sizes {
            eprintln!("serve-bench: workers={workers} batch={batch_size} ...");
            let point = run_sweep_point(&config, &cache, &workloads, workers, batch_size);
            eprintln!(
                "serve-bench:   {} packets in {:.1} ms ({:.0} packets/sec, {:.1} steps/packet)",
                point.packets,
                point.elapsed_secs * 1e3,
                point.packets_per_sec(),
                point.steps_per_packet()
            );
            sweep.push(point);
        }
    }

    // The acceptance identity: every request after pre-warm hits, so
    // hit rate == (requests - distinct filters) / requests, *exactly*.
    let stats = cache.stats();
    assert_eq!(
        stats.misses, distinct_filters,
        "exactly one specialization per distinct filter"
    );
    assert_eq!(stats.evictions, 0, "the sweep must fit in the cache");
    let requests = stats.requests();
    assert_eq!(
        stats.hits,
        requests - distinct_filters,
        "cache hit rate deviates from (requests - distinct)/requests"
    );

    // 1 -> max-workers scaling per batch size (for equal batch sizes and
    // the same total work). Meaningful only when the host has cores to
    // scale onto, so it is reported, not asserted.
    let speedup = |from: usize, to: usize| -> Option<f64> {
        let of = |w: usize, b: usize| {
            sweep
                .iter()
                .find(|p| p.workers == w && p.batch_size == b)
                .map(SweepPoint::packets_per_sec)
        };
        let mut ratios: Vec<f64> = Vec::new();
        for &b in &config.batch_sizes {
            if let (Some(base), Some(high)) = (of(from, b), of(to, b)) {
                ratios.push(high / base);
            }
        }
        ratios.iter().copied().reduce(f64::max)
    };
    let speedup_1_to_4 = speedup(1, 4);

    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(&format!("  \"smoke\": {},\n", config.smoke));
    out.push_str(&format!("  \"fuse\": {},\n", config.options.fuse));
    out.push_str(&format!("  \"flat_env\": {},\n", config.options.flat_env));
    out.push_str(&format!("  \"native\": {},\n", config.options.native));
    out.push_str(&format!("  \"available_parallelism\": {parallelism},\n"));
    out.push_str("  \"filters\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"bpf_len\": {}, \"artifact_instructions\": {}, \"specialize_steps\": {}, \"packets\": {}}}{}\n",
            w.name,
            w.filter.len(),
            w.artifact_instructions,
            w.specialize_steps,
            w.packets.len(),
            if i + 1 < workloads.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"cache\": {{\"requests\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {}}},\n",
        requests,
        stats.hits,
        stats.misses,
        stats.evictions,
        json_f(stats.hit_rate())
    ));
    out.push_str("  \"oracle\": \"verified\",\n");
    out.push_str("  \"sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"batch_size\": {}, \"batches\": {}, \"packets\": {}, \"elapsed_ms\": {}, \"packets_per_sec\": {}, \"steps_per_packet\": {}}}{}\n",
            p.workers,
            p.batch_size,
            p.batches,
            p.packets,
            json_f(p.elapsed_secs * 1e3),
            json_f(p.packets_per_sec()),
            json_f(p.steps_per_packet()),
            if i + 1 < sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    match speedup_1_to_4 {
        Some(s) => out.push_str(&format!("  \"speedup_1_to_4\": {}\n", json_f(s))),
        None => out.push_str("  \"speedup_1_to_4\": null\n"),
    }
    out.push_str("}\n");
    print!("{out}");
    eprintln!(
        "serve-bench: ok ({requests} cache requests, hit rate {:.3})",
        stats.hit_rate()
    );
}
