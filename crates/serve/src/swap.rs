//! Live filter hot-swap, keyed by generation.
//!
//! A tenant's filter changes while traffic is in flight. The contract a
//! serving engine owes its callers:
//!
//! 1. **No torn reads** — every batch runs against exactly one complete
//!    filter program, never a mix of old and new instructions. Here that
//!    falls out of immutability: published filters are `Arc<Vec<Insn>>`
//!    snapshots taken under one lock; a swap publishes a *new* `Arc`, it
//!    never mutates the old one.
//! 2. **Old generations drain** — batches submitted before a swap keep
//!    their snapshot (the `Arc` rides inside the request) and complete
//!    against it; the swap only affects batches submitted after it.
//! 3. **Attribution** — every result carries the generation its batch
//!    was snapshotted from, so a caller can tell which filter produced
//!    which verdicts across the swap boundary.

use mlbox_bpf::insn::Insn;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

#[derive(Debug)]
struct Current {
    generation: u64,
    filter: Arc<Vec<Insn>>,
}

/// A filter slot whose program can be replaced while a pool serves it.
#[derive(Debug)]
pub struct SwappableFilter {
    current: RwLock<Current>,
    swaps: AtomicU64,
}

impl SwappableFilter {
    /// A slot holding `filter` at generation 0.
    pub fn new(filter: Vec<Insn>) -> SwappableFilter {
        SwappableFilter {
            current: RwLock::new(Current {
                generation: 0,
                filter: Arc::new(filter),
            }),
            swaps: AtomicU64::new(0),
        }
    }

    /// An atomic snapshot of the current generation and its filter. The
    /// pair is read under one lock, so the filter always belongs to the
    /// returned generation.
    pub fn current(&self) -> (u64, Arc<Vec<Insn>>) {
        let guard = self.current.read().expect("swap slot poisoned");
        (guard.generation, Arc::clone(&guard.filter))
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.current.read().expect("swap slot poisoned").generation
    }

    /// Publishes `filter` as the next generation and returns its number.
    /// In-flight work holding earlier snapshots is unaffected.
    pub fn swap(&self, filter: Vec<Insn>) -> u64 {
        let mut guard = self.current.write().expect("swap slot poisoned");
        guard.generation += 1;
        guard.filter = Arc::new(filter);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        guard.generation
    }

    /// Number of swaps performed.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlbox_bpf::{port_filter, telnet_filter};

    #[test]
    fn snapshots_are_generation_consistent() {
        let slot = SwappableFilter::new(telnet_filter());
        let (g0, f0) = slot.current();
        assert_eq!(g0, 0);
        let g1 = slot.swap(port_filter(80));
        assert_eq!(g1, 1);
        let (g, f1) = slot.current();
        assert_eq!(g, 1);
        // The old snapshot is intact — drain-in-flight depends on it.
        assert_eq!(*f0, telnet_filter());
        assert_eq!(*f1, port_filter(80));
        assert_eq!(slot.swaps(), 1);
    }

    #[test]
    fn concurrent_swaps_and_reads_never_tear() {
        // Generation n must always pair with the filter published at
        // generation n. Readers race a swapper and check the pairing by
        // a property of the filter itself (its length).
        let slot = Arc::new(SwappableFilter::new(port_filter(1)));
        let lens: Vec<usize> = vec![port_filter(1).len(), telnet_filter().len()];
        let swapper = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                for i in 0..500 {
                    if i % 2 == 0 {
                        slot.swap(telnet_filter());
                    } else {
                        slot.swap(port_filter(1));
                    }
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                let lens = lens.clone();
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        let (generation, filter) = slot.current();
                        let expected = lens[(generation % 2) as usize];
                        assert_eq!(
                            filter.len(),
                            expected,
                            "generation {generation} paired with wrong filter"
                        );
                    }
                })
            })
            .collect();
        swapper.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(slot.generation(), 500);
    }
}
