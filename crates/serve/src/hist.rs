//! Lock-free latency histograms for the serving engine.
//!
//! Batch latencies span five orders of magnitude (a cache-hit batch of
//! one packet vs. a cold specialization), so the histogram uses
//! log-scaled buckets: four linear sub-buckets per power of two, giving
//! ≤25% relative error per recorded sample while covering the full
//! `u64` nanosecond range in 256 fixed buckets. Recording is one
//! relaxed atomic increment — workers on the hot path never contend.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 256;

/// A concurrent, fixed-size, log-bucketed histogram of durations in
/// nanoseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a nanosecond value: 4 linear sub-buckets per octave.
fn bucket_of(nanos: u64) -> usize {
    if nanos < 4 {
        return nanos as usize;
    }
    let octave = 63 - u64::from(nanos.leading_zeros()); // ≥ 2
    let sub = (nanos >> (octave - 2)) & 3;
    ((octave * 4 + sub) as usize).min(BUCKETS - 1)
}

/// Upper bound (inclusive) of a bucket, i.e. the value reported for
/// samples that landed in it — conservative for quantiles.
fn bucket_high(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let octave = (idx / 4) as u64;
    let sub = (idx % 4) as u64;
    let step = 1u64 << (octave - 2);
    (1u64 << octave) + (sub + 1) * step - 1
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn record(&self, d: std::time::Duration) {
        self.record_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one duration given in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The value (in nanoseconds, bucket upper bound) at or below which a
    /// fraction `q` of samples fall. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                // Never report past the true maximum; the top occupied
                // bucket's upper bound can overshoot it.
                return bucket_high(idx).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// A point-in-time summary of the recorded samples.
    pub fn snapshot(&self) -> LatencySnapshot {
        let count = self.count();
        LatencySnapshot {
            count,
            p50_nanos: self.quantile(0.50),
            p90_nanos: self.quantile(0.90),
            p99_nanos: self.quantile(0.99),
            max_nanos: self.max.load(Ordering::Relaxed),
            mean_nanos: self
                .sum
                .load(Ordering::Relaxed)
                .checked_div(count)
                .unwrap_or(0),
        }
    }
}

/// Summary statistics extracted from a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Median, in nanoseconds (bucket-resolution).
    pub p50_nanos: u64,
    /// 90th percentile, in nanoseconds.
    pub p90_nanos: u64,
    /// 99th percentile, in nanoseconds.
    pub p99_nanos: u64,
    /// Largest recorded sample, exact.
    pub max_nanos: u64,
    /// Arithmetic mean, in nanoseconds.
    pub mean_nanos: u64,
}

impl LatencySnapshot {
    /// Median in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.p50_nanos as f64 / 1e6
    }

    /// 99th percentile in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.p99_nanos as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for sample in [0u64, 1, 3, 4, 5, 100, 1_000, 1_000_000, u64::MAX / 2] {
            let idx = bucket_of(sample);
            assert!(idx >= prev, "bucket order broken at {sample}");
            assert!(bucket_high(idx) >= sample, "upper bound below sample");
            prev = idx;
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let h = LatencyHistogram::new();
        for n in 1..=1000u64 {
            h.record_nanos(n * 1000); // 1µs .. 1ms, uniform
        }
        let p50 = h.quantile(0.50);
        // True p50 is 500_000; the bucket resolution is 25%.
        assert!((375_000..=625_000).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((742_500..=1_237_500).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1_000_000, "max is exact");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(
            (s.count, s.p50_nanos, s.p99_nanos, s.max_nanos, s.mean_nanos),
            (0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for n in 0..1000 {
                        h.record_nanos(n);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
