//! The disk-backed artifact store.
//!
//! Persists [`CompiledFilter`] containers (the `mlbox::wire` format)
//! content-addressed by `(source fingerprint, options fingerprint)` —
//! the same pair that keys the in-memory specialization cache, so the
//! store is exactly the cache's next tier. Properties:
//!
//! - **Atomic publication**: `save` writes to a temporary file in the
//!   store directory and `rename`s it into place, so a concurrent
//!   `load` sees either the complete artifact or nothing — never a
//!   partial write. Double-saves of the same artifact are idempotent
//!   (same content, same name).
//! - **Session-free loads**: `load` goes file → bytes → decode →
//!   [`CompiledFilter`] without ever constructing a `Session`; the
//!   expensive generator pipeline only runs when the store misses.
//! - **Verification on the way in**: the container's checksum, version,
//!   and fingerprints are checked by the decoder, the decoded options
//!   must hash to the fingerprint in the file name (a renamed file
//!   cannot impersonate another key), and `load` refuses artifacts the
//!   consumer's options are incompatible with (the frame-bearing /
//!   flat-env rule) — corruption surfaces as a typed error at load
//!   time, not as a wrong verdict at serve time.

use mlbox::{CompiledFilter, Error, SessionOptions};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::SystemTime;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (permissions, disk full, …).
    Io(io::Error),
    /// The file exists but is not a loadable artifact (corrupt,
    /// truncated, version-skewed, option-incompatible).
    Artifact(Error),
    /// The artifact decoded cleanly but does not belong under the file
    /// name it was found at.
    KeyMismatch {
        /// The key implied by the file name.
        expected: (u64, u64),
        /// The key the decoded artifact carries.
        found: (u64, u64),
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "artifact store I/O error: {e}"),
            StoreError::Artifact(e) => write!(f, "artifact store: {e}"),
            StoreError::KeyMismatch { expected, found } => write!(
                f,
                "artifact store: file named for key {:016x}-{:016x} contains \
                 key {:016x}-{:016x}",
                expected.0, expected.1, found.0, found.1
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Artifact(e) => Some(e),
            StoreError::KeyMismatch { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<Error> for StoreError {
    fn from(e: Error) -> Self {
        StoreError::Artifact(e)
    }
}

/// Point-in-time store counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Artifacts written (including idempotent re-saves).
    pub saves: u64,
    /// Artifacts successfully loaded from disk.
    pub loads: u64,
    /// Load attempts that found no file for the key.
    pub misses: u64,
}

/// What one [`ArtifactStore::gc`] sweep did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Artifacts unlinked by the sweep.
    pub evicted: usize,
    /// Bytes those artifacts occupied.
    pub bytes_evicted: u64,
    /// Bytes still resident after the sweep.
    pub resident_bytes: u64,
}

/// A directory of persisted artifacts, one file per
/// `(source fingerprint, options fingerprint)` key.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    /// Distinguishes concurrent in-flight temp files from one store
    /// handle; the process id distinguishes handles across processes.
    tmp_counter: AtomicU64,
    saves: AtomicU64,
    loads: AtomicU64,
    misses: AtomicU64,
    /// Logical recency clock: bumped on every load and save, so the GC
    /// can order residents by last touch without trusting file mtimes
    /// (which `rename` publication does not refresh on every platform).
    clock: AtomicU64,
    /// File name → last touch (clock value) through this handle.
    /// Entries other handles or processes wrote are absent and fall
    /// back to their mtime, ranked older than anything touched here.
    recency: Mutex<HashMap<String, u64>>,
}

/// File extension of persisted artifacts.
pub const ARTIFACT_EXT: &str = "mlart";

impl ArtifactStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<ArtifactStore, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ArtifactStore {
            root,
            tmp_counter: AtomicU64::new(0),
            saves: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            recency: Mutex::new(HashMap::new()),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The canonical file name for a key.
    pub fn file_name(source_fingerprint: u64, options_fingerprint: u64) -> String {
        format!("{source_fingerprint:016x}-{options_fingerprint:016x}.{ARTIFACT_EXT}")
    }

    /// The path an artifact with this key lives at (whether or not one
    /// is currently stored).
    pub fn path_for(&self, source_fingerprint: u64, options: &SessionOptions) -> PathBuf {
        self.root
            .join(Self::file_name(source_fingerprint, options.fingerprint()))
    }

    /// Persists `artifact` atomically (write to a temp file, then
    /// rename into place), returning its path.
    ///
    /// # Errors
    ///
    /// Returns the I/O error on filesystem failure.
    pub fn save(&self, artifact: &CompiledFilter) -> Result<PathBuf, StoreError> {
        let final_path = self.root.join(Self::file_name(
            artifact.source_fingerprint(),
            artifact.options_fingerprint(),
        ));
        let tmp_path = self.root.join(format!(
            ".tmp-{}-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed),
            final_path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("artifact")
        ));
        let bytes = artifact.to_wire_bytes();
        fs::write(&tmp_path, &bytes)?;
        match fs::rename(&tmp_path, &final_path) {
            Ok(()) => {}
            Err(e) => {
                // Don't leak the temp file on a failed publish.
                let _ = fs::remove_file(&tmp_path);
                return Err(e.into());
            }
        }
        self.saves.fetch_add(1, Ordering::Relaxed);
        self.touch(&final_path);
        Ok(final_path)
    }

    /// Loads the artifact for `(source_fingerprint, options)`, verifying
    /// the container and that the consumer may hydrate it
    /// ([`CompiledFilter::from_wire_bytes_for`]). `Ok(None)` means the
    /// store has no artifact for the key; any present-but-unusable file
    /// is an error, never silently skipped.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on I/O failure, a corrupt or
    /// version-skewed container, an option-incompatible artifact, or a
    /// file whose content does not match its name.
    pub fn load(
        &self,
        source_fingerprint: u64,
        options: &SessionOptions,
    ) -> Result<Option<CompiledFilter>, StoreError> {
        let path = self.path_for(source_fingerprint, options);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        };
        let artifact = CompiledFilter::from_wire_bytes_for(&bytes, options)?;
        let expected = (source_fingerprint, options.fingerprint());
        let found = (
            artifact.source_fingerprint(),
            artifact.options_fingerprint(),
        );
        if expected != found {
            return Err(StoreError::KeyMismatch { expected, found });
        }
        self.loads.fetch_add(1, Ordering::Relaxed);
        self.touch(&path);
        Ok(Some(artifact))
    }

    /// Whether an artifact for the key is currently stored.
    pub fn contains(&self, source_fingerprint: u64, options: &SessionOptions) -> bool {
        self.path_for(source_fingerprint, options).exists()
    }

    /// Number of artifacts currently stored (temp files excluded).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be read.
    pub fn len(&self) -> Result<usize, StoreError> {
        let mut n = 0;
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == ARTIFACT_EXT) {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Whether the store holds no artifacts.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be read.
    pub fn is_empty(&self) -> Result<bool, StoreError> {
        Ok(self.len()? == 0)
    }

    /// Stamps `path` as the most recently touched resident.
    fn touch(&self, path: &Path) {
        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
            let t = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
            self.recency.lock().unwrap().insert(name.to_string(), t);
        }
    }

    /// Shrinks the resident set to at most `max_bytes`, unlinking
    /// least-recently-loaded artifacts first (publication counts as a
    /// touch; artifacts this handle never touched rank by mtime, older
    /// than anything it did). Eviction is an atomic unlink — a
    /// concurrent `load` that already opened the file keeps its bytes,
    /// and one that comes later misses and regenerates. An artifact
    /// loaded *during* the sweep is re-stamped by the load and skipped
    /// rather than evicted.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be scanned or an
    /// unlink fails for a reason other than the file already being gone.
    pub fn gc(&self, max_bytes: u64) -> Result<GcReport, StoreError> {
        self.gc_with_hook(max_bytes, |_| {})
    }

    /// [`ArtifactStore::gc`] with a hook run after victim selection and
    /// before each unlink — the seam the sweep-vs-load race test drives.
    #[doc(hidden)]
    pub fn gc_with_hook(
        &self,
        max_bytes: u64,
        mut before_unlink: impl FnMut(&Path),
    ) -> Result<GcReport, StoreError> {
        let sweep_start = self.clock.load(Ordering::Relaxed);
        let mut entries = Vec::new();
        let mut resident = 0u64;
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().is_none_or(|e| e != ARTIFACT_EXT) {
                continue;
            }
            let meta = entry.metadata()?;
            resident += meta.len();
            // Rank: (0, mtime) for entries unknown to this handle, then
            // (1, touch stamp) — foreign files age out first.
            let rank = match self.stamp_of(&path) {
                Some(stamp) => (1u8, stamp),
                None => {
                    let mtime = meta
                        .modified()
                        .ok()
                        .and_then(|t| t.duration_since(SystemTime::UNIX_EPOCH).ok())
                        .map_or(0, |d| d.as_secs());
                    (0u8, mtime)
                }
            };
            entries.push((rank, path, meta.len()));
        }
        entries.sort();
        let mut report = GcReport {
            evicted: 0,
            bytes_evicted: 0,
            resident_bytes: resident,
        };
        for (_, path, len) in entries {
            if report.resident_bytes <= max_bytes {
                break;
            }
            before_unlink(&path);
            // Re-check: any touch since the sweep began out-ranks the
            // ordering the victims were chosen under, so the entry is
            // hot again and survives.
            if self.stamp_of(&path).is_some_and(|s| s > sweep_start) {
                continue;
            }
            match fs::remove_file(&path) {
                Ok(()) => {}
                // Already gone (another sweep or handle): not our byte.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            }
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                self.recency.lock().unwrap().remove(name);
            }
            report.evicted += 1;
            report.bytes_evicted += len;
            report.resident_bytes -= len;
        }
        Ok(report)
    }

    /// The recency stamp of `path`, if this handle has touched it.
    fn stamp_of(&self, path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        self.recency.lock().unwrap().get(name).copied()
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            saves: self.saves.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}
