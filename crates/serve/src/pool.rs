//! The batched worker pool.
//!
//! Each worker thread owns a private [`Machine`] — CCAM values are
//! `Rc`/`RefCell` graphs, so a shared machine behind a lock would
//! serialize exactly the work the pool exists to parallelize. Workers
//! drain [`BatchRequest`]s from one bounded channel (natural
//! backpressure: `submit` blocks when the queue is full; `try_submit`
//! sheds with a typed reason instead), resolve the filter through the
//! shared [`FilterCache`] (optionally backed by a disk
//! [`ArtifactStore`]), hydrate the artifact once into their own heap,
//! and run the batch packet by packet, recording a verdict and a
//! reduction-step count per packet. Every batch's queue wait and
//! service time land in a shared [`LatencyHistogram`].

use crate::cache::{CacheKey, CacheStats, FilterCache};
use crate::hist::{LatencyHistogram, LatencySnapshot};
use crate::store::ArtifactStore;
use crate::swap::SwappableFilter;
use ccam::machine::Machine;
use ccam::value::Value;
use mlbox::artifact::{app_code, apply, machine_for};
use mlbox::SessionOptions;
use mlbox_bpf::harness::{expect_verdict, filter_arg};
use mlbox_bpf::insn::Insn;
use mlbox_bpf::packet::Packet;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads (each owns a machine).
    pub workers: usize,
    /// Bounded request-queue depth; `submit` blocks beyond it and
    /// `try_submit` sheds.
    pub queue_depth: usize,
    /// Capacity of the specialization cache created by
    /// [`ServePool::new`] (ignored by [`ServePool::with_cache`]).
    pub cache_capacity: usize,
    /// Machine/compilation mode for every artifact the pool serves.
    pub options: SessionOptions,
    /// Disk tier behind the cache: misses load persisted artifacts
    /// before falling back to specialization, and fresh specializations
    /// are persisted for the next cold start.
    pub store: Option<Arc<ArtifactStore>>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 2,
            queue_depth: 64,
            cache_capacity: 64,
            options: SessionOptions::default(),
            store: None,
        }
    }
}

/// One unit of pool work: a filter and the packets to run through it.
#[derive(Debug)]
struct BatchRequest {
    filter: Arc<Vec<Insn>>,
    packets: Vec<Packet>,
    /// Generation the filter was snapshotted at, for swappable filters.
    generation: Option<u64>,
    submitted: Instant,
    reply: Sender<BatchResult>,
}

/// Per-packet results of one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutput {
    /// Filter verdict per packet, in submission order.
    pub verdicts: Vec<i64>,
    /// CCAM reduction steps per packet, in submission order.
    pub steps: Vec<u64>,
}

/// What comes back for a submitted batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Which worker ran the batch.
    pub worker: usize,
    /// Fingerprint of the filter program the batch ran against.
    pub filter_fingerprint: u64,
    /// The filter generation the batch was submitted under, for batches
    /// submitted through a [`SwappableFilter`].
    pub generation: Option<u64>,
    /// Time the batch waited in the queue before a worker picked it up.
    pub queued_nanos: u64,
    /// Time the worker spent on the batch (cache resolution, hydration
    /// if needed, and running every packet).
    pub service_nanos: u64,
    /// Per-packet outputs, or a rendered error (specialization or
    /// machine failure).
    pub outcome: Result<BatchOutput, String>,
}

/// Why a batch was refused admission (never silently dropped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded queue is at capacity; shedding now is cheaper than
    /// queueing into a latency collapse.
    QueueFull {
        /// The configured queue depth that was exceeded.
        depth: usize,
    },
    /// Every worker has exited (the pool is shutting down).
    PoolClosed,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { depth } => {
                write!(f, "request shed: queue full at depth {depth}")
            }
            AdmissionError::PoolClosed => write!(f, "request shed: pool closed"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A handle to one in-flight batch.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<BatchResult>,
}

impl Ticket {
    /// Blocks until the batch completes.
    ///
    /// # Panics
    ///
    /// Panics if the pool was torn down without answering (a bug — the
    /// worker replies even on failure).
    pub fn wait(self) -> BatchResult {
        self.rx
            .recv()
            .expect("pool dropped a batch without replying")
    }
}

/// Counters from one worker's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Batches drained.
    pub batches: u64,
    /// Packets run.
    pub packets: u64,
    /// Total CCAM reduction steps across those packets.
    pub steps: u64,
    /// Artifact hydrations (local installs of cached artifacts).
    pub installs: u64,
    /// Blocks the worker's machine promoted under an adaptive tier
    /// policy ([`SessionOptions::adaptive`]); zero for static profiles.
    pub promotions: u64,
    /// Freeze misses that re-rendered an already-frozen arena (the
    /// arena grew between runs).
    pub refreezes: u64,
    /// Baseline reduction steps the worker's machine executed at each
    /// tier (0 cold, 1 fused, 2 fused + native). Sums to `steps` under
    /// an adaptive policy; all zero under static profiles.
    pub tier_steps: [u64; 3],
}

/// The pool's final accounting, returned by [`ServePool::shutdown`].
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// One entry per worker.
    pub workers: Vec<WorkerStats>,
    /// Shared-cache counters at shutdown.
    pub cache: CacheStats,
    /// Batches refused by [`ServePool::try_submit`].
    pub shed: u64,
    /// End-to-end (queue + service) batch latency distribution.
    pub latency: LatencySnapshot,
}

impl PoolReport {
    /// Packets run across all workers.
    pub fn total_packets(&self) -> u64 {
        self.workers.iter().map(|w| w.packets).sum()
    }

    /// Reduction steps across all workers.
    pub fn total_steps(&self) -> u64 {
        self.workers.iter().map(|w| w.steps).sum()
    }

    /// Tier promotions across all workers (adaptive profiles only).
    pub fn total_promotions(&self) -> u64 {
        self.workers.iter().map(|w| w.promotions).sum()
    }

    /// Stale-snapshot re-renderings across all workers.
    pub fn total_refreezes(&self) -> u64 {
        self.workers.iter().map(|w| w.refreezes).sum()
    }

    /// Baseline steps executed at each tier across all workers — the
    /// pool's tier occupancy. Index 0 is the cold interpreter, 1 the
    /// fused rendering, 2 fused + native.
    pub fn tier_occupancy(&self) -> [u64; 3] {
        let mut total = [0u64; 3];
        for w in &self.workers {
            for (slot, steps) in total.iter_mut().zip(w.tier_steps) {
                *slot += steps;
            }
        }
        total
    }
}

/// A running pool of filter-serving workers.
#[derive(Debug)]
pub struct ServePool {
    tx: Option<SyncSender<BatchRequest>>,
    handles: Vec<JoinHandle<WorkerStats>>,
    cache: Arc<FilterCache>,
    latency: Arc<LatencyHistogram>,
    shed: AtomicU64,
    queue_depth: usize,
}

// Workers hydrate artifacts and run the CCAM, both of which recurse on
// the Rust stack; give them room well beyond the 2 MiB default.
const WORKER_STACK: usize = 64 * 1024 * 1024;

impl ServePool {
    /// Spawns `config.workers` workers around a fresh cache.
    pub fn new(config: PoolConfig) -> ServePool {
        let cache = Arc::new(FilterCache::new(config.cache_capacity));
        ServePool::with_cache(config, cache)
    }

    /// Spawns workers around an existing (possibly pre-warmed, possibly
    /// shared with other pools) cache.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` is zero or a worker thread cannot be
    /// spawned.
    pub fn with_cache(config: PoolConfig, cache: Arc<FilterCache>) -> ServePool {
        assert!(config.workers > 0, "a pool needs at least one worker");
        let queue_depth = config.queue_depth.max(1);
        let (tx, rx) = sync_channel::<BatchRequest>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let latency = Arc::new(LatencyHistogram::new());
        let handles = (0..config.workers)
            .map(|index| {
                let rx = Arc::clone(&rx);
                let cache = Arc::clone(&cache);
                let options = config.options.clone();
                let store = config.store.clone();
                let latency = Arc::clone(&latency);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{index}"))
                    .stack_size(WORKER_STACK)
                    .spawn(move || {
                        worker_loop(index, &rx, &cache, &options, store.as_deref(), &latency)
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ServePool {
            tx: Some(tx),
            handles,
            cache,
            latency,
            shed: AtomicU64::new(0),
            queue_depth,
        }
    }

    /// The pool's specialization cache (e.g. for pre-warming).
    pub fn cache(&self) -> &Arc<FilterCache> {
        &self.cache
    }

    /// Batches refused by [`try_submit`](ServePool::try_submit) so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// The end-to-end latency distribution recorded so far.
    pub fn latency(&self) -> LatencySnapshot {
        self.latency.snapshot()
    }

    /// Enqueues a batch; blocks while the queue is full. The returned
    /// [`Ticket`] resolves when a worker finishes the batch.
    ///
    /// # Panics
    ///
    /// Panics if called after [`ServePool::shutdown`] (impossible by
    /// construction — `shutdown` consumes the pool).
    pub fn submit(&self, filter: Arc<Vec<Insn>>, packets: Vec<Packet>) -> Ticket {
        self.submit_tagged(filter, packets, None)
    }

    /// Enqueues a batch against the current generation of a swappable
    /// filter slot; the result carries the generation the batch was
    /// snapshotted at. Blocks while the queue is full.
    pub fn submit_swappable(&self, slot: &SwappableFilter, packets: Vec<Packet>) -> Ticket {
        let (generation, filter) = slot.current();
        self.submit_tagged(filter, packets, Some(generation))
    }

    fn submit_tagged(
        &self,
        filter: Arc<Vec<Insn>>,
        packets: Vec<Packet>,
        generation: Option<u64>,
    ) -> Ticket {
        let (reply, rx) = mpsc::channel();
        self.tx
            .as_ref()
            .expect("pool is shut down")
            .send(BatchRequest {
                filter,
                packets,
                generation,
                submitted: Instant::now(),
                reply,
            })
            .expect("all pool workers died");
        Ticket { rx }
    }

    /// Admission-controlled submit: enqueues the batch if the bounded
    /// queue has room, otherwise sheds immediately with the reason —
    /// under overload, refusing new work beats queueing into a latency
    /// collapse. Shed batches are counted (see
    /// [`shed`](ServePool::shed) and [`PoolReport::shed`]).
    ///
    /// # Errors
    ///
    /// [`AdmissionError::QueueFull`] when the queue is at capacity;
    /// [`AdmissionError::PoolClosed`] when the workers are gone.
    pub fn try_submit(
        &self,
        filter: Arc<Vec<Insn>>,
        packets: Vec<Packet>,
    ) -> Result<Ticket, AdmissionError> {
        self.try_submit_tagged(filter, packets, None)
    }

    /// [`try_submit`](ServePool::try_submit) against the current
    /// generation of a swappable filter slot.
    ///
    /// # Errors
    ///
    /// Same admission errors as [`try_submit`](ServePool::try_submit).
    pub fn try_submit_swappable(
        &self,
        slot: &SwappableFilter,
        packets: Vec<Packet>,
    ) -> Result<Ticket, AdmissionError> {
        let (generation, filter) = slot.current();
        self.try_submit_tagged(filter, packets, Some(generation))
    }

    fn try_submit_tagged(
        &self,
        filter: Arc<Vec<Insn>>,
        packets: Vec<Packet>,
        generation: Option<u64>,
    ) -> Result<Ticket, AdmissionError> {
        let (reply, rx) = mpsc::channel();
        let request = BatchRequest {
            filter,
            packets,
            generation,
            submitted: Instant::now(),
            reply,
        };
        match self
            .tx
            .as_ref()
            .expect("pool is shut down")
            .try_send(request)
        {
            Ok(()) => Ok(Ticket { rx }),
            Err(TrySendError::Full(_)) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                Err(AdmissionError::QueueFull {
                    depth: self.queue_depth,
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                Err(AdmissionError::PoolClosed)
            }
        }
    }

    /// Graceful shutdown: closes the queue, lets workers drain what was
    /// already submitted, joins them, and returns the final accounting.
    ///
    /// # Panics
    ///
    /// Propagates a worker panic.
    pub fn shutdown(mut self) -> PoolReport {
        self.tx = None; // disconnect: workers finish the queue, then exit
        let workers = self
            .handles
            .drain(..)
            .map(|h| h.join().expect("pool worker panicked"))
            .collect();
        PoolReport {
            workers,
            cache: self.cache.stats(),
            shed: self.shed.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        // `shutdown` already drained `handles`; otherwise make sure no
        // worker threads outlive the pool.
        self.tx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    index: usize,
    rx: &Mutex<Receiver<BatchRequest>>,
    cache: &FilterCache,
    options: &SessionOptions,
    store: Option<&ArtifactStore>,
    latency: &LatencyHistogram,
) -> WorkerStats {
    let mut machine = machine_for(options);
    let app = app_code();
    // This worker's hydrated entry points: the shared artifact is
    // `Arc`ed portable data; each worker rebuilds it as `Rc` values in
    // its own heap exactly once per filter.
    let mut installed: HashMap<CacheKey, Value> = HashMap::new();
    let mut stats = WorkerStats {
        worker: index,
        batches: 0,
        packets: 0,
        steps: 0,
        installs: 0,
        promotions: 0,
        refreezes: 0,
        tier_steps: [0; 3],
    };
    loop {
        // Hold the receiver lock only for the dequeue, not the work.
        let request = match rx.lock().expect("pool queue poisoned").recv() {
            Ok(r) => r,
            Err(_) => break, // queue closed and drained: graceful exit
        };
        let queued_nanos =
            u64::try_from(request.submitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let started = Instant::now();
        let result = run_batch(
            &mut machine,
            &app,
            cache,
            options,
            store,
            &mut installed,
            &request,
            &mut stats,
        );
        let service_nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        latency.record_nanos(queued_nanos.saturating_add(service_nanos));
        stats.batches += 1;
        let fingerprint = mlbox_bpf::insn::fingerprint(&request.filter);
        // A dropped ticket is the caller's business, not an error here.
        let _ = request.reply.send(BatchResult {
            worker: index,
            filter_fingerprint: fingerprint,
            generation: request.generation,
            queued_nanos,
            service_nanos,
            outcome: result,
        });
    }
    // Tier counters live on the machine (promotion is a machine-level
    // event, not a per-packet one); fold the lifetime totals in on exit.
    let machine_stats = machine.stats();
    stats.promotions = machine_stats.promotions;
    stats.refreezes = machine_stats.refreezes;
    stats.tier_steps = machine_stats.tier_steps;
    stats
}

#[allow(clippy::too_many_arguments)]
fn run_batch(
    machine: &mut Machine,
    app: &ccam::CodeRef,
    cache: &FilterCache,
    options: &SessionOptions,
    store: Option<&ArtifactStore>,
    installed: &mut HashMap<CacheKey, Value>,
    request: &BatchRequest,
    stats: &mut WorkerStats,
) -> Result<BatchOutput, String> {
    let key = CacheKey::new(&request.filter, options);
    // Every batch is one cache request — the hit/miss counters account
    // for batches, not workers. The shared lookup is cheap (a read lock
    // plus a `OnceLock` read); only the *hydration* of the artifact into
    // this worker's Rc heap is memoized locally.
    let artifact = match store {
        Some(store) => cache.get_or_load_or_specialize(&request.filter, options, store)?,
        None => cache.get_or_specialize(&request.filter, options)?,
    };
    let entry = match installed.get(&key) {
        Some(v) => v.clone(),
        None => {
            // Checked hydration: a frame-bearing (flat_env) artifact
            // must never install into a worker running another env
            // mode. The cache key already separates the modes, so this
            // only fires if an artifact was handed over out of band.
            let entry = artifact
                .hydrate_entry_for(options)
                .map_err(|e| e.to_string())?;
            stats.installs += 1;
            installed.insert(key, entry.clone());
            entry
        }
    };
    let mut verdicts = Vec::with_capacity(request.packets.len());
    let mut steps = Vec::with_capacity(request.packets.len());
    for pkt in &request.packets {
        let (value, delta) =
            apply(machine, app, &entry, filter_arg(pkt)).map_err(|e| e.to_string())?;
        verdicts.push(expect_verdict(&value).map_err(|e| e.to_string())?);
        steps.push(delta.steps);
        stats.packets += 1;
        stats.steps += delta.steps;
    }
    Ok(BatchOutput { verdicts, steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlbox_bpf::{port_filter, telnet_filter, FilterHarness, PacketGen};

    #[test]
    fn pool_serves_batches_and_shuts_down() {
        let pool = ServePool::new(PoolConfig {
            workers: 2,
            ..PoolConfig::default()
        });
        let filter = Arc::new(telnet_filter());
        let mut g = PacketGen::new(31);
        let packets = g.workload(6, 0.5);
        let tickets: Vec<Ticket> = (0..4)
            .map(|_| pool.submit(Arc::clone(&filter), packets.clone()))
            .collect();
        let mut outputs = Vec::new();
        for t in tickets {
            let result = t.wait();
            assert_eq!(result.generation, None);
            assert!(result.service_nanos > 0);
            outputs.push(result.outcome.expect("batch runs"));
        }
        // Same filter, same packets, any worker: identical answers.
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0]);
        }
        let report = pool.shutdown();
        assert_eq!(report.total_packets(), 24);
        assert_eq!(report.cache.misses, 1, "one specialization for 4 batches");
        assert_eq!(report.cache.hits, 3);
        assert_eq!(report.shed, 0);
        assert_eq!(report.latency.count, 4, "one latency sample per batch");
    }

    #[test]
    fn pool_matches_the_harness_oracle() {
        let filter = port_filter(80);
        let mut g = PacketGen::new(32);
        let packets = g.workload(5, 0.4);
        let mut oracle = FilterHarness::new(&filter).unwrap();
        let mut instance = oracle.compile_artifact().unwrap().instantiate();
        let pool = ServePool::new(PoolConfig::default());
        let out = pool
            .submit(Arc::new(filter), packets.clone())
            .wait()
            .outcome
            .unwrap();
        for (i, pkt) in packets.iter().enumerate() {
            let (v, s) = instance.run(filter_arg(pkt)).unwrap();
            assert_eq!(out.verdicts[i], expect_verdict(&v).unwrap());
            assert_eq!(out.steps[i], s.steps, "packet {i} step count");
        }
    }

    #[test]
    fn specialization_failures_come_back_as_errors() {
        let pool = ServePool::new(PoolConfig::default());
        let bad = Arc::new(vec![Insn::JeqK { k: 0, jt: 9, jf: 9 }]);
        let result = pool.submit(Arc::clone(&bad), vec![]).wait();
        assert!(result.outcome.is_err());
        // And the failure is cached, not recomputed.
        let again = pool.submit(bad, vec![]).wait();
        assert!(again.outcome.is_err());
        let report = pool.shutdown();
        assert_eq!(report.cache.misses, 1);
        assert_eq!(report.cache.hits, 1);
    }

    #[test]
    fn overload_sheds_with_a_reason_instead_of_blocking() {
        // One worker, queue depth 1: the worker parks on the first slow
        // batch while the queue holds one more; every further try_submit
        // must shed with QueueFull, not block.
        let pool = ServePool::new(PoolConfig {
            workers: 1,
            queue_depth: 1,
            ..PoolConfig::default()
        });
        let filter = Arc::new(telnet_filter());
        let mut g = PacketGen::new(33);
        let packets = g.workload(40, 0.5);
        let mut tickets = Vec::new();
        let mut shed = 0usize;
        // Submit far more than (in-flight + queue) can hold at once.
        for _ in 0..24 {
            match pool.try_submit(Arc::clone(&filter), packets.clone()) {
                Ok(t) => tickets.push(t),
                Err(AdmissionError::QueueFull { depth }) => {
                    assert_eq!(depth, 1);
                    shed += 1;
                }
                Err(AdmissionError::PoolClosed) => panic!("pool is open"),
            }
        }
        assert!(shed > 0, "a 1-deep queue cannot admit 24 instant submits");
        // Everything admitted still completes correctly.
        for t in tickets {
            t.wait().outcome.expect("admitted batch runs");
        }
        let report = pool.shutdown();
        assert_eq!(report.shed, shed as u64);
        assert_eq!(report.latency.count, 24 - report.shed, "admitted batches");
    }

    #[test]
    fn adaptive_pool_promotes_and_matches_the_plain_oracle() {
        // A pool serving under an adaptive profile must return exactly
        // the verdicts and step counts of the plain (Paper) profile —
        // promotion changes the rendering, never the observable cost —
        // while the report shows the tier controller actually working.
        let policy = mlbox::TierPolicy {
            promote_after: 1,
            ..mlbox::TierPolicy::default()
        };
        let options = SessionOptions {
            adaptive: Some(policy),
            ..SessionOptions::default()
        };
        let filter = port_filter(80);
        let mut g = PacketGen::new(35);
        let packets = g.workload(8, 0.4);
        let mut oracle = FilterHarness::new(&filter).unwrap();
        let mut instance = oracle.compile_artifact().unwrap().instantiate();
        let pool = ServePool::new(PoolConfig {
            workers: 1,
            options,
            ..PoolConfig::default()
        });
        // Several batches so blocks cross the promotion threshold.
        let outputs: Vec<BatchOutput> = (0..4)
            .map(|_| {
                pool.submit(Arc::new(filter.clone()), packets.clone())
                    .wait()
                    .outcome
                    .expect("adaptive batch runs")
            })
            .collect();
        for out in &outputs {
            for (i, pkt) in packets.iter().enumerate() {
                let (v, s) = instance.run(filter_arg(pkt)).unwrap();
                assert_eq!(out.verdicts[i], expect_verdict(&v).unwrap());
                assert_eq!(out.steps[i], s.steps, "packet {i} step count");
            }
        }
        let report = pool.shutdown();
        assert!(report.total_promotions() > 0, "no block was promoted");
        let occupancy = report.tier_occupancy();
        assert_eq!(
            occupancy.iter().sum::<u64>(),
            report.total_steps(),
            "tier occupancy must partition the pool's steps"
        );
        assert!(
            occupancy[2] > 0,
            "promoted blocks should run in the native tier"
        );
    }

    #[test]
    fn swappable_submissions_carry_their_generation() {
        let pool = ServePool::new(PoolConfig::default());
        let slot = SwappableFilter::new(telnet_filter());
        let mut g = PacketGen::new(34);
        let packets = g.workload(4, 0.5);
        let before = pool.submit_swappable(&slot, packets.clone());
        slot.swap(port_filter(23));
        let after = pool.submit_swappable(&slot, packets.clone());
        let r0 = before.wait();
        let r1 = after.wait();
        assert_eq!(r0.generation, Some(0));
        assert_eq!(r1.generation, Some(1));
        // Both generations of the telnet-ish filters agree on verdicts
        // only if the programs agree; what must hold unconditionally is
        // that each batch ran against its snapshot's fingerprint.
        assert_eq!(
            r0.filter_fingerprint,
            mlbox_bpf::insn::fingerprint(&telnet_filter())
        );
        assert_eq!(
            r1.filter_fingerprint,
            mlbox_bpf::insn::fingerprint(&port_filter(23))
        );
        pool.shutdown();
    }
}
