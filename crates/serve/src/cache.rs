//! The concurrent specialization cache.
//!
//! Keyed by (filter-program fingerprint, options fingerprint), so
//! artifacts compiled under different machine modes can never alias.
//! Entries are `OnceLock`s inside sharded `RwLock` maps: the shard lock
//! is held only long enough to find or insert the entry, and the
//! (expensive — a whole session build plus a generator run)
//! specialization itself happens in `OnceLock::get_or_init`, where
//! concurrent requesters of the *same* filter block until the one
//! initializer finishes and requesters of *other* filters proceed
//! untouched. N workers asking for one filter trigger exactly one
//! specialization, by construction rather than by luck.

use mlbox::fingerprint::Fnv1a;
use mlbox::{CompiledFilter, SessionOptions};
use mlbox_bpf::insn::{fingerprint, Insn};
use mlbox_bpf::FilterHarness;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// What a cached specialization is indexed by. Both halves are stable
/// fingerprints ([`mlbox_bpf::insn::fingerprint`],
/// [`SessionOptions::fingerprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Fingerprint of the filter program.
    pub filter: u64,
    /// Fingerprint of the session options the artifact is compiled under.
    pub options: u64,
}

impl CacheKey {
    /// The key for `filter` specialized under `options`.
    pub fn new(filter: &[Insn], options: &SessionOptions) -> CacheKey {
        CacheKey {
            filter: fingerprint(filter),
            options: options.fingerprint(),
        }
    }

    fn shard_of(&self, shards: usize) -> usize {
        // The halves are already FNV digests; fold and re-mix so shard
        // choice doesn't correlate with the low bits of either.
        let mut h = Fnv1a::new();
        h.write_u64(self.filter);
        h.write_u64(self.options);
        (h.finish() % shards as u64) as usize
    }
}

/// A point-in-time snapshot of cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from an already-initialized entry (including
    /// requests that blocked on another thread's in-flight
    /// specialization — the work was still done once).
    pub hits: u64,
    /// Requests whose initializer actually ran.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// hits / requests, or 0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let req = self.requests();
        if req == 0 {
            0.0
        } else {
            self.hits as f64 / req as f64
        }
    }
}

type Entry<T> = Arc<OnceLock<Result<Arc<T>, String>>>;

#[derive(Debug)]
struct Shard<T> {
    map: HashMap<CacheKey, Entry<T>>,
    // Insertion order, for FIFO eviction: the artifacts are immutable
    // and cheap to rebuild relative to bookkeeping an LRU under a write
    // lock, so first-in-first-out is deliberate.
    order: Vec<CacheKey>,
}

impl<T> Shard<T> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            order: Vec::new(),
        }
    }
}

/// A sharded, capacity-bounded, exactly-once concurrent cache.
///
/// Generic over the cached artifact so tests can exercise the
/// concurrency contract with cheap payloads; the serving layer uses
/// [`FilterCache`].
#[derive(Debug)]
pub struct SpecializationCache<T> {
    shards: Vec<RwLock<Shard<T>>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

const SHARDS: usize = 8;

impl<T> SpecializationCache<T> {
    /// A cache holding at most (roughly) `capacity` entries, FIFO-evicted
    /// per shard beyond that.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        SpecializationCache {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::new())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, running `init` to fill the entry if absent.
    /// Exactly one concurrent caller per key runs `init`; the others
    /// block until it finishes and share the result. Failures are cached
    /// too — a filter that fails to specialize fails every request
    /// identically instead of re-specializing per request.
    ///
    /// # Errors
    ///
    /// Returns the error `init` produced (now or on a previous request).
    ///
    /// # Panics
    ///
    /// Panics if a shard lock is poisoned (a previous `init` panicked).
    pub fn get_or_init(
        &self,
        key: CacheKey,
        init: impl FnOnce() -> Result<Arc<T>, String>,
    ) -> Result<Arc<T>, String> {
        let shard = &self.shards[key.shard_of(SHARDS)];
        // Fast path: the entry exists; never take the write lock.
        let entry = shard
            .read()
            .expect("cache shard poisoned")
            .map
            .get(&key)
            .cloned();
        let entry = match entry {
            Some(e) => e,
            None => {
                let mut guard = shard.write().expect("cache shard poisoned");
                match guard.map.get(&key) {
                    // Lost the insert race to another writer; use theirs.
                    Some(e) => e.clone(),
                    None => {
                        if guard.map.len() >= self.per_shard_capacity {
                            let oldest = guard.order.remove(0);
                            guard.map.remove(&oldest);
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                        let entry = Entry::<T>::default();
                        guard.map.insert(key, entry.clone());
                        guard.order.push(key);
                        entry
                    }
                }
            }
        };
        // Initialize outside any shard lock: a slow specialization must
        // not stall requests for other filters in the same shard.
        let mut ran = false;
        let result = entry
            .get_or_init(|| {
                ran = true;
                init()
            })
            .clone();
        // Only the caller whose initializer ran counts a miss, so
        // misses == distinct keys exactly, even under contention.
        if ran {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Current counters and residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("cache shard poisoned").map.len())
                .sum(),
        }
    }
}

/// The cache the serving layer actually uses: filter programs to
/// [`CompiledFilter`] artifacts.
pub type FilterCache = SpecializationCache<CompiledFilter>;

impl FilterCache {
    /// Returns the artifact for `filter` specialized under `options`,
    /// building a one-shot harness session and running the generator if
    /// (and only if) no other request has done so already.
    ///
    /// # Errors
    ///
    /// Returns a rendered error if the filter is invalid or
    /// specialization fails; the failure is cached.
    pub fn get_or_specialize(
        &self,
        filter: &[Insn],
        options: &SessionOptions,
    ) -> Result<Arc<CompiledFilter>, String> {
        let key = CacheKey::new(filter, options);
        self.get_or_init(key, || {
            let mut harness =
                FilterHarness::with_options(filter, options.clone()).map_err(|e| e.to_string())?;
            let artifact = harness.compile_artifact().map_err(|e| e.to_string())?;
            Ok(Arc::new(artifact))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlbox_bpf::{port_filter, telnet_filter};

    #[test]
    fn misses_count_distinct_keys_and_hits_the_rest() {
        let cache: SpecializationCache<u64> = SpecializationCache::new(16);
        let k1 = CacheKey {
            filter: 1,
            options: 0,
        };
        let k2 = CacheKey {
            filter: 2,
            options: 0,
        };
        for _ in 0..5 {
            cache.get_or_init(k1, || Ok(Arc::new(10))).unwrap();
        }
        for _ in 0..3 {
            cache.get_or_init(k2, || Ok(Arc::new(20))).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 6);
        assert_eq!(stats.requests(), 8);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn same_filter_different_options_do_not_alias() {
        let filter = telnet_filter();
        let plain = SessionOptions::default();
        let optimized = SessionOptions {
            optimize: true,
            ..SessionOptions::default()
        };
        assert_ne!(
            CacheKey::new(&filter, &plain),
            CacheKey::new(&filter, &optimized)
        );
        let cache = FilterCache::new(16);
        cache.get_or_specialize(&filter, &plain).unwrap();
        cache.get_or_specialize(&filter, &optimized).unwrap();
        assert_eq!(cache.stats().misses, 2, "one specialization per mode");
    }

    #[test]
    fn fused_and_unfused_artifacts_never_alias() {
        // A fused artifact has a different instruction stream (and step
        // counts) than the default one; serving it from the unfused slot
        // would silently change the cost model mid-flight.
        let filter = telnet_filter();
        let plain = SessionOptions::default();
        let fused = SessionOptions {
            fuse: true,
            ..SessionOptions::default()
        };
        assert_ne!(
            CacheKey::new(&filter, &plain),
            CacheKey::new(&filter, &fused)
        );
        let cache = FilterCache::new(16);
        let a = cache.get_or_specialize(&filter, &plain).unwrap();
        let b = cache.get_or_specialize(&filter, &fused).unwrap();
        assert_eq!(cache.stats().misses, 2, "one specialization per mode");
        assert!(
            b.instructions() < a.instructions(),
            "the fused artifact carries fused (fewer) instructions: {} vs {}",
            b.instructions(),
            a.instructions()
        );
    }

    #[test]
    fn flat_env_and_default_artifacts_never_alias() {
        // A flat-env artifact compiles `acc n`/`env_cons` streams and
        // may carry frame-backed values; serving it from the pair-spine
        // slot (or vice versa) would change both the instruction stream
        // and the step accounting. The options fingerprint must keep the
        // two modes in separate cache entries.
        let filter = telnet_filter();
        let plain = SessionOptions::default();
        let flat = SessionOptions {
            flat_env: true,
            ..SessionOptions::default()
        };
        assert_ne!(
            CacheKey::new(&filter, &plain),
            CacheKey::new(&filter, &flat)
        );
        let cache = FilterCache::new(16);
        cache.get_or_specialize(&filter, &plain).unwrap();
        cache.get_or_specialize(&filter, &flat).unwrap();
        assert_eq!(cache.stats().misses, 2, "one specialization per mode");
    }

    #[test]
    fn native_and_interpreted_artifacts_never_alias() {
        // A native artifact executes through the thread-coded tier; its
        // instruction stream is identical to the interpreted one, but the
        // machine each pool worker builds from the artifact's options
        // must dispatch in the right tier. The options fingerprint keeps
        // the two in separate cache entries.
        let filter = telnet_filter();
        let plain = SessionOptions::default();
        let native = SessionOptions {
            native: true,
            ..SessionOptions::default()
        };
        assert_ne!(
            CacheKey::new(&filter, &plain),
            CacheKey::new(&filter, &native)
        );
        let cache = FilterCache::new(16);
        cache.get_or_specialize(&filter, &plain).unwrap();
        cache.get_or_specialize(&filter, &native).unwrap();
        assert_eq!(cache.stats().misses, 2, "one specialization per mode");
    }

    #[test]
    fn failures_are_cached() {
        let bad = vec![Insn::JeqK { k: 0, jt: 9, jf: 9 }];
        let cache = FilterCache::new(16);
        let opts = SessionOptions::default();
        let e1 = cache.get_or_specialize(&bad, &opts).unwrap_err();
        let e2 = cache.get_or_specialize(&bad, &opts).unwrap_err();
        assert_eq!(e1, e2);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1), "failure hits the cache");
    }

    #[test]
    fn capacity_is_bounded_by_fifo_eviction() {
        let cache: SpecializationCache<u64> = SpecializationCache::new(8);
        // Per-shard capacity is 1, so hammering keys that land in one
        // shard forces evictions.
        let keys: Vec<CacheKey> = (0..64)
            .map(|i| CacheKey {
                filter: i,
                options: 0,
            })
            .collect();
        for k in &keys {
            cache.get_or_init(*k, || Ok(Arc::new(k.filter))).unwrap();
        }
        let stats = cache.stats();
        assert!(stats.entries <= 8, "resident {} > capacity", stats.entries);
        assert!(stats.evictions > 0);
        assert_eq!(stats.misses, 64);
    }

    #[test]
    fn cached_artifacts_are_shared_not_rebuilt() {
        let cache = FilterCache::new(16);
        let opts = SessionOptions::default();
        let filter = port_filter(80);
        let a = cache.get_or_specialize(&filter, &opts).unwrap();
        let b = cache.get_or_specialize(&filter, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
