//! The concurrent specialization cache.
//!
//! Keyed by (filter-program fingerprint, options fingerprint), so
//! artifacts compiled under different machine modes can never alias.
//! Entries are `OnceLock`s inside sharded `RwLock` maps: the shard lock
//! is held only long enough to find or insert the entry, and the
//! (expensive — a whole session build plus a generator run)
//! specialization itself happens in `OnceLock::get_or_init`, where
//! concurrent requesters of the *same* filter block until the one
//! initializer finishes and requesters of *other* filters proceed
//! untouched. N workers asking for one filter trigger exactly one
//! specialization, by construction rather than by luck.
//!
//! **Eviction is cost-aware**, not FIFO: each entry carries its measured
//! initialization cost (wall nanoseconds of the specialization that
//! built it) and a size (instruction count for filter artifacts), and
//! when a shard is full the entry with the smallest `cost × size`
//! weight is dropped — the entry that is cheapest to rebuild and frees
//! the least. A multi-tenant sweep where one tenant's filter took 200ms
//! to specialize and another's took 2ms should never evict the former
//! to admit a third copy of the latter.
//!
//! **Eviction remembers.** Each shard keeps an ARC-style *ghost list*:
//! the rebuild weight of recently evicted entries, keyed by the evicted
//! key. When a key on the ghost list is re-admitted — typically via a
//! fast disk-store load rather than a full re-specialization — the new
//! entry is pre-seeded with the weight it earned originally, so the
//! cheapness of the *reload* does not mark a genuinely expensive filter
//! as the shard's next victim. Without this, a popular filter evicted
//! once thrashes forever: every reload is cheap, so every reload makes
//! it the minimum-weight entry again.
//!
//! **Entries expire.** Successful entries live for the configured
//! [`CacheConfig::ttl`] (unbounded by default). *Failed* specializations
//! are special: they are cached (so a broken filter fails fast instead
//! of re-running the generator per request) but only for the bounded
//! [`CacheConfig::negative_ttl`] — a transient failure must not poison a
//! tenant until process restart, and a permanently broken filter is
//! cheap to re-discover.

use crate::store::ArtifactStore;
use mlbox::fingerprint::Fnv1a;
use mlbox::{CompiledFilter, SessionOptions};
use mlbox_bpf::insn::{fingerprint, Insn};
use mlbox_bpf::FilterHarness;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// What a cached specialization is indexed by. Both halves are stable
/// fingerprints ([`mlbox_bpf::insn::fingerprint`],
/// [`SessionOptions::fingerprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Fingerprint of the filter program.
    pub filter: u64,
    /// Fingerprint of the session options the artifact is compiled under.
    pub options: u64,
}

impl CacheKey {
    /// The key for `filter` specialized under `options`.
    pub fn new(filter: &[Insn], options: &SessionOptions) -> CacheKey {
        CacheKey {
            filter: fingerprint(filter),
            options: options.fingerprint(),
        }
    }

    fn shard_of(&self, shards: usize) -> usize {
        // The halves are already FNV digests; fold and re-mix so shard
        // choice doesn't correlate with the low bits of either.
        let mut h = Fnv1a::new();
        h.write_u64(self.filter);
        h.write_u64(self.options);
        (h.finish() % shards as u64) as usize
    }
}

/// Cache tuning knobs.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum resident entries (approximately; enforced per shard).
    pub capacity: usize,
    /// Lifetime of successful entries; `None` = never expire.
    pub ttl: Option<Duration>,
    /// Lifetime of *failed* entries. Always bounded: a cached failure
    /// must age out so a transient problem (exhausted fuel budget, a
    /// racing deploy) does not poison the key until process restart.
    pub negative_ttl: Duration,
    /// How many evicted keys the ghost list remembers (approximately;
    /// enforced per shard). A re-admitted key found on the ghost list is
    /// pre-seeded with the eviction-time weight it earned originally, so
    /// a cheap reload does not make it the instant next victim. Zero
    /// disables the ghost list.
    pub ghost_capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 64,
            ttl: None,
            negative_ttl: Duration::from_secs(30),
            ghost_capacity: 256,
        }
    }
}

impl CacheConfig {
    /// A config with the given capacity and default lifetimes.
    pub fn with_capacity(capacity: usize) -> CacheConfig {
        CacheConfig {
            capacity,
            ..CacheConfig::default()
        }
    }
}

/// A point-in-time snapshot of cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from an already-initialized entry (including
    /// requests that blocked on another thread's in-flight
    /// specialization — the work was still done once).
    pub hits: u64,
    /// Requests whose initializer actually ran.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Entries dropped because their TTL (positive or negative) lapsed.
    pub expired: u64,
    /// Re-admissions that found their key on the ghost list and kept
    /// their original rebuild weight.
    pub ghost_hits: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.hits + self.misses
    }

    /// hits / requests, or 0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let req = self.requests();
        if req == 0 {
            0.0
        } else {
            self.hits as f64 / req as f64
        }
    }
}

/// One cache slot: the exactly-once cell plus the metadata eviction and
/// expiry decide by. `cost`/`size` are written once by the thread whose
/// initializer ran, before any other thread can read the filled cell's
/// weight for eviction — a racing reader sees at worst the pessimistic
/// default (0 ⇒ min weight), which only makes the entry *more* evictable.
#[derive(Debug)]
struct EntryState<T> {
    cell: OnceLock<Result<Arc<T>, String>>,
    inserted: Instant,
    /// Measured initialization cost, nanoseconds.
    cost: AtomicU64,
    /// Size in the cache's own unit (instruction count for artifacts).
    size: AtomicU64,
}

impl<T> EntryState<T> {
    fn new() -> Self {
        EntryState {
            cell: OnceLock::new(),
            inserted: Instant::now(),
            cost: AtomicU64::new(0),
            size: AtomicU64::new(0),
        }
    }

    /// Rebuild-cost × size, the eviction weight. At least 1 for any
    /// initialized entry so weights multiply meaningfully.
    fn weight(&self) -> u64 {
        self.cost
            .load(Ordering::Relaxed)
            .max(1)
            .saturating_mul(self.size.load(Ordering::Relaxed).max(1))
    }

    /// Whether the entry's lifetime has lapsed under `config`.
    fn expired(&self, config: &CacheConfig) -> bool {
        match self.cell.get() {
            None => false, // in flight: never expire under the initializer
            Some(Ok(_)) => config.ttl.is_some_and(|ttl| self.inserted.elapsed() > ttl),
            Some(Err(_)) => self.inserted.elapsed() > config.negative_ttl,
        }
    }
}

type Entry<T> = Arc<EntryState<T>>;

#[derive(Debug)]
struct Shard<T> {
    map: HashMap<CacheKey, Entry<T>>,
    /// Ghost list: eviction-time (cost, size) of recently evicted
    /// entries, with `ghost_order` tracking eviction recency for the
    /// capacity bound.
    ghost: HashMap<CacheKey, (u64, u64)>,
    ghost_order: VecDeque<CacheKey>,
}

impl<T> Shard<T> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            ghost: HashMap::new(),
            ghost_order: VecDeque::new(),
        }
    }

    /// Records an evicted entry's weight, dropping the oldest ghosts
    /// beyond `capacity`.
    fn remember_ghost(&mut self, key: CacheKey, cost: u64, size: u64, capacity: usize) {
        if capacity == 0 {
            return;
        }
        if self.ghost.insert(key, (cost, size)).is_some() {
            self.ghost_order.retain(|k| *k != key);
        }
        self.ghost_order.push_back(key);
        while self.ghost.len() > capacity {
            match self.ghost_order.pop_front() {
                Some(old) => {
                    self.ghost.remove(&old);
                }
                None => break,
            }
        }
    }

    /// Takes a remembered weight for a re-admitted key, if any.
    fn recall_ghost(&mut self, key: &CacheKey) -> Option<(u64, u64)> {
        let remembered = self.ghost.remove(key)?;
        self.ghost_order.retain(|k| k != key);
        Some(remembered)
    }
}

type Sizer<T> = Box<dyn Fn(&T) -> u64 + Send + Sync>;

/// A sharded, capacity-bounded, exactly-once concurrent cache with
/// cost-aware eviction and per-entry TTLs.
///
/// Generic over the cached artifact so tests can exercise the
/// concurrency contract with cheap payloads; the serving layer uses
/// [`FilterCache`].
pub struct SpecializationCache<T> {
    shards: Vec<RwLock<Shard<T>>>,
    per_shard_capacity: usize,
    per_shard_ghost: usize,
    config: CacheConfig,
    sizer: Sizer<T>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expired: AtomicU64,
    ghost_hits: AtomicU64,
}

impl<T> fmt::Debug for SpecializationCache<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpecializationCache")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

const SHARDS: usize = 8;

impl<T> SpecializationCache<T> {
    /// A cache holding at most (roughly) `capacity` entries with default
    /// lifetimes, entries weighted 1 apiece (pure cost eviction).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_config(CacheConfig::with_capacity(capacity))
    }

    /// A cache with explicit tuning and unit entry sizes.
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity` is zero.
    pub fn with_config(config: CacheConfig) -> Self {
        Self::with_config_and_sizer(config, Box::new(|_| 1))
    }

    /// A cache with explicit tuning and an entry-size measure; eviction
    /// weight is measured-cost × size.
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity` is zero.
    pub fn with_config_and_sizer(config: CacheConfig, sizer: Sizer<T>) -> Self {
        assert!(config.capacity > 0, "cache capacity must be positive");
        SpecializationCache {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::new())).collect(),
            per_shard_capacity: config.capacity.div_ceil(SHARDS),
            per_shard_ghost: config.ghost_capacity.div_ceil(SHARDS),
            config,
            sizer,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            ghost_hits: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, running `init` to fill the entry if absent.
    /// Exactly one concurrent caller per key runs `init`; the others
    /// block until it finishes and share the result. Failures are cached
    /// too — a filter that fails to specialize fails every request
    /// identically instead of re-specializing per request — but only for
    /// [`CacheConfig::negative_ttl`]. The entry's eviction cost is the
    /// measured wall time of `init`.
    ///
    /// # Errors
    ///
    /// Returns the error `init` produced (now or on a previous request).
    ///
    /// # Panics
    ///
    /// Panics if a shard lock is poisoned (a previous `init` panicked).
    pub fn get_or_init(
        &self,
        key: CacheKey,
        init: impl FnOnce() -> Result<Arc<T>, String>,
    ) -> Result<Arc<T>, String> {
        self.get_or_init_costed(key, || {
            let started = Instant::now();
            let result = init();
            let cost = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            result.map(|value| (value, cost.max(1)))
        })
    }

    /// [`get_or_init`](Self::get_or_init) with the initializer reporting
    /// its own rebuild cost (for callers that know it better than wall
    /// time — e.g. a store load reporting the cost of the *original*
    /// specialization — and for deterministic eviction tests).
    ///
    /// # Errors
    ///
    /// Returns the error `init` produced (now or on a previous request).
    ///
    /// # Panics
    ///
    /// Panics if a shard lock is poisoned (a previous `init` panicked).
    pub fn get_or_init_costed(
        &self,
        key: CacheKey,
        init: impl FnOnce() -> Result<(Arc<T>, u64), String>,
    ) -> Result<Arc<T>, String> {
        let shard = &self.shards[key.shard_of(SHARDS)];
        // Fast path: a live entry exists; never take the write lock.
        let entry = {
            let guard = shard.read().expect("cache shard poisoned");
            match guard.map.get(&key) {
                Some(e) if !e.expired(&self.config) => Some(e.clone()),
                _ => None,
            }
        };
        let entry = match entry {
            Some(e) => e,
            None => {
                let mut guard = shard.write().expect("cache shard poisoned");
                // Drop every lapsed entry in the shard while we hold the
                // write lock anyway — expiry is lazy, amortized onto the
                // misses that need the lock regardless.
                let lapsed: Vec<CacheKey> = guard
                    .map
                    .iter()
                    .filter(|(_, e)| e.expired(&self.config))
                    .map(|(k, _)| *k)
                    .collect();
                for k in &lapsed {
                    guard.map.remove(k);
                    self.expired.fetch_add(1, Ordering::Relaxed);
                }
                match guard.map.get(&key) {
                    // Lost the insert race to another writer; use theirs.
                    Some(e) => e.clone(),
                    None => {
                        while guard.map.len() >= self.per_shard_capacity {
                            match victim_of(&guard.map) {
                                Some(v) => {
                                    if let Some(e) = guard.map.remove(&v) {
                                        // Remember successful victims so
                                        // a prompt re-admission keeps the
                                        // weight the entry earned when it
                                        // was actually built.
                                        if e.cell.get().is_some_and(|r| r.is_ok()) {
                                            let cost = e.cost.load(Ordering::Relaxed);
                                            let size = e.size.load(Ordering::Relaxed);
                                            guard.remember_ghost(
                                                v,
                                                cost,
                                                size,
                                                self.per_shard_ghost,
                                            );
                                        }
                                    }
                                    self.evictions.fetch_add(1, Ordering::Relaxed);
                                }
                                None => break,
                            }
                        }
                        let entry = Arc::new(EntryState::new());
                        if let Some((cost, size)) = guard.recall_ghost(&key) {
                            entry.cost.store(cost, Ordering::Relaxed);
                            entry.size.store(size, Ordering::Relaxed);
                            self.ghost_hits.fetch_add(1, Ordering::Relaxed);
                        }
                        guard.map.insert(key, entry.clone());
                        entry
                    }
                }
            }
        };
        // Initialize outside any shard lock: a slow specialization must
        // not stall requests for other filters in the same shard.
        let mut ran = false;
        let result = entry
            .cell
            .get_or_init(|| {
                ran = true;
                match init() {
                    Ok((value, cost)) => {
                        // A ghost re-admission pre-seeded `cost` with the
                        // weight the entry earned when it was originally
                        // built; a cheap rebuild (a store load) must not
                        // shrink it back to instant-victim territory.
                        let remembered = entry.cost.load(Ordering::Relaxed);
                        entry.cost.store(cost.max(remembered), Ordering::Relaxed);
                        entry.size.store((self.sizer)(&value), Ordering::Relaxed);
                        Ok(value)
                    }
                    Err(e) => Err(e),
                }
            })
            .clone();
        // Only the caller whose initializer ran counts a miss, so
        // misses == distinct keys exactly, even under contention.
        if ran {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Current counters and residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            ghost_hits: self.ghost_hits.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("cache shard poisoned").map.len())
                .sum(),
        }
    }
}

/// Picks the entry a full shard should drop: the initialized entry with
/// the smallest cost × size weight (cheapest to rebuild, least to free),
/// oldest first among equals. If *every* entry is still initializing —
/// their weights unknown and their initializers owed to blocked waiters
/// — the oldest in-flight entry is unlinked instead; its waiters keep
/// their `Arc` and complete normally, the map just stops tracking it.
fn victim_of<T>(map: &HashMap<CacheKey, Entry<T>>) -> Option<CacheKey> {
    let initialized = map
        .iter()
        .filter(|(_, e)| e.cell.get().is_some())
        .min_by_key(|(_, e)| (e.weight(), e.inserted))
        .map(|(k, _)| *k);
    initialized.or_else(|| map.iter().min_by_key(|(_, e)| e.inserted).map(|(k, _)| *k))
}

/// The cache the serving layer actually uses: filter programs to
/// [`CompiledFilter`] artifacts, sized by instruction count so eviction
/// weight is (specialization nanoseconds × artifact instructions).
pub type FilterCache = SpecializationCache<CompiledFilter>;

/// The sizer [`FilterCache`] constructors install.
fn artifact_sizer() -> Sizer<CompiledFilter> {
    Box::new(|artifact| artifact.instructions() as u64)
}

impl FilterCache {
    /// A filter cache with explicit tuning, sized by instruction count.
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity` is zero.
    pub fn for_filters(config: CacheConfig) -> FilterCache {
        FilterCache::with_config_and_sizer(config, artifact_sizer())
    }

    /// Returns the artifact for `filter` specialized under `options`,
    /// building a one-shot harness session and running the generator if
    /// (and only if) no other request has done so already.
    ///
    /// # Errors
    ///
    /// Returns a rendered error if the filter is invalid or
    /// specialization fails; the failure is cached (for
    /// [`CacheConfig::negative_ttl`]).
    pub fn get_or_specialize(
        &self,
        filter: &[Insn],
        options: &SessionOptions,
    ) -> Result<Arc<CompiledFilter>, String> {
        let key = CacheKey::new(filter, options);
        self.get_or_init(key, || specialize(filter, options))
    }

    /// Like [`get_or_specialize`](FilterCache::get_or_specialize), with
    /// the disk `store` as the tier between this cache and the
    /// generator: a cache miss first tries to load the persisted
    /// artifact (container-verified, session-free); only if the store
    /// also misses does the generator run — and its product is saved, so
    /// the *next* cold process (or post-eviction request) loads instead
    /// of recompiling.
    ///
    /// # Errors
    ///
    /// Returns a rendered error if the store has a corrupt or
    /// incompatible artifact for the key, or if specialization fails.
    pub fn get_or_load_or_specialize(
        &self,
        filter: &[Insn],
        options: &SessionOptions,
        store: &ArtifactStore,
    ) -> Result<Arc<CompiledFilter>, String> {
        let key = CacheKey::new(filter, options);
        self.get_or_init(key, || {
            if let Some(artifact) = store.load(key.filter, options).map_err(|e| e.to_string())? {
                return Ok(Arc::new(artifact));
            }
            let artifact = specialize(filter, options)?;
            store.save(&artifact).map_err(|e| e.to_string())?;
            Ok(artifact)
        })
    }
}

fn specialize(filter: &[Insn], options: &SessionOptions) -> Result<Arc<CompiledFilter>, String> {
    let mut harness =
        FilterHarness::with_options(filter, options.clone()).map_err(|e| e.to_string())?;
    let artifact = harness.compile_artifact().map_err(|e| e.to_string())?;
    Ok(Arc::new(artifact))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlbox_bpf::{port_filter, telnet_filter};

    /// Keys that all land in one shard, for deterministic eviction tests.
    fn same_shard_keys(n: usize) -> Vec<CacheKey> {
        let mut keys = Vec::new();
        let mut filter = 0u64;
        while keys.len() < n {
            let key = CacheKey { filter, options: 0 };
            if key.shard_of(SHARDS) == 0 {
                keys.push(key);
            }
            filter += 1;
        }
        keys
    }

    #[test]
    fn misses_count_distinct_keys_and_hits_the_rest() {
        let cache: SpecializationCache<u64> = SpecializationCache::new(16);
        let k1 = CacheKey {
            filter: 1,
            options: 0,
        };
        let k2 = CacheKey {
            filter: 2,
            options: 0,
        };
        for _ in 0..5 {
            cache.get_or_init(k1, || Ok(Arc::new(10))).unwrap();
        }
        for _ in 0..3 {
            cache.get_or_init(k2, || Ok(Arc::new(20))).unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 6);
        assert_eq!(stats.requests(), 8);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn same_filter_different_options_do_not_alias() {
        let filter = telnet_filter();
        let plain = SessionOptions::default();
        let optimized = SessionOptions {
            optimize: true,
            ..SessionOptions::default()
        };
        assert_ne!(
            CacheKey::new(&filter, &plain),
            CacheKey::new(&filter, &optimized)
        );
        let cache = FilterCache::new(16);
        cache.get_or_specialize(&filter, &plain).unwrap();
        cache.get_or_specialize(&filter, &optimized).unwrap();
        assert_eq!(cache.stats().misses, 2, "one specialization per mode");
    }

    #[test]
    fn fused_and_unfused_artifacts_never_alias() {
        // A fused artifact has a different instruction stream (and step
        // counts) than the default one; serving it from the unfused slot
        // would silently change the cost model mid-flight.
        let filter = telnet_filter();
        let plain = SessionOptions::default();
        let fused = SessionOptions {
            fuse: true,
            ..SessionOptions::default()
        };
        assert_ne!(
            CacheKey::new(&filter, &plain),
            CacheKey::new(&filter, &fused)
        );
        let cache = FilterCache::new(16);
        let a = cache.get_or_specialize(&filter, &plain).unwrap();
        let b = cache.get_or_specialize(&filter, &fused).unwrap();
        assert_eq!(cache.stats().misses, 2, "one specialization per mode");
        assert!(
            b.instructions() < a.instructions(),
            "the fused artifact carries fused (fewer) instructions: {} vs {}",
            b.instructions(),
            a.instructions()
        );
    }

    #[test]
    fn flat_env_and_default_artifacts_never_alias() {
        // A flat-env artifact compiles `acc n`/`env_cons` streams and
        // may carry frame-backed values; serving it from the pair-spine
        // slot (or vice versa) would change both the instruction stream
        // and the step accounting. The options fingerprint must keep the
        // two modes in separate cache entries.
        let filter = telnet_filter();
        let plain = SessionOptions::default();
        let flat = SessionOptions {
            flat_env: true,
            ..SessionOptions::default()
        };
        assert_ne!(
            CacheKey::new(&filter, &plain),
            CacheKey::new(&filter, &flat)
        );
        let cache = FilterCache::new(16);
        cache.get_or_specialize(&filter, &plain).unwrap();
        cache.get_or_specialize(&filter, &flat).unwrap();
        assert_eq!(cache.stats().misses, 2, "one specialization per mode");
    }

    #[test]
    fn native_and_interpreted_artifacts_never_alias() {
        // A native artifact executes through the thread-coded tier; its
        // instruction stream is identical to the interpreted one, but the
        // machine each pool worker builds from the artifact's options
        // must dispatch in the right tier. The options fingerprint keeps
        // the two in separate cache entries.
        let filter = telnet_filter();
        let plain = SessionOptions::default();
        let native = SessionOptions {
            native: true,
            ..SessionOptions::default()
        };
        assert_ne!(
            CacheKey::new(&filter, &plain),
            CacheKey::new(&filter, &native)
        );
        let cache = FilterCache::new(16);
        cache.get_or_specialize(&filter, &plain).unwrap();
        cache.get_or_specialize(&filter, &native).unwrap();
        assert_eq!(cache.stats().misses, 2, "one specialization per mode");
    }

    #[test]
    fn failures_are_cached() {
        use mlbox_bpf::insn::Insn;
        let bad = vec![Insn::JeqK { k: 0, jt: 9, jf: 9 }];
        let cache = FilterCache::new(16);
        let opts = SessionOptions::default();
        let e1 = cache.get_or_specialize(&bad, &opts).unwrap_err();
        let e2 = cache.get_or_specialize(&bad, &opts).unwrap_err();
        assert_eq!(e1, e2);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1), "failure hits the cache");
    }

    #[test]
    fn failures_expire_after_the_negative_ttl() {
        // The bugfix this PR ships: a cached failure must age out instead
        // of poisoning its key (and holding capacity) until restart.
        let cache: SpecializationCache<u64> = SpecializationCache::with_config(CacheConfig {
            capacity: 16,
            ttl: None,
            negative_ttl: Duration::from_millis(40),
            ..CacheConfig::default()
        });
        let key = CacheKey {
            filter: 7,
            options: 0,
        };
        cache
            .get_or_init(key, || Err("transient".into()))
            .unwrap_err();
        // Within the TTL the failure is served from cache...
        cache
            .get_or_init(key, || panic!("must not re-run yet"))
            .unwrap_err();
        std::thread::sleep(Duration::from_millis(60));
        // ...after it, the initializer runs again and can now succeed.
        let v = cache.get_or_init(key, || Ok(Arc::new(42))).unwrap();
        assert_eq!(*v, 42);
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "failure re-initialized after TTL");
        assert_eq!(stats.expired, 1);
        // The recovered success does not expire (no positive TTL here).
        std::thread::sleep(Duration::from_millis(60));
        cache
            .get_or_init(key, || panic!("success must persist"))
            .unwrap();
    }

    #[test]
    fn successes_expire_after_the_positive_ttl() {
        let cache: SpecializationCache<u64> = SpecializationCache::with_config(CacheConfig {
            capacity: 16,
            ttl: Some(Duration::from_millis(40)),
            negative_ttl: Duration::from_secs(30),
            ..CacheConfig::default()
        });
        let key = CacheKey {
            filter: 9,
            options: 0,
        };
        cache.get_or_init(key, || Ok(Arc::new(1))).unwrap();
        cache
            .get_or_init(key, || panic!("fresh entry must be served"))
            .unwrap();
        std::thread::sleep(Duration::from_millis(60));
        cache.get_or_init(key, || Ok(Arc::new(2))).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "entry rebuilt after TTL");
        assert_eq!(stats.expired, 1);
    }

    #[test]
    fn capacity_is_bounded() {
        let cache: SpecializationCache<u64> = SpecializationCache::new(8);
        // Per-shard capacity is 1, so hammering many keys forces
        // evictions whatever shard they land in.
        for i in 0..64u64 {
            let k = CacheKey {
                filter: i,
                options: 0,
            };
            cache.get_or_init(k, || Ok(Arc::new(i))).unwrap();
        }
        let stats = cache.stats();
        assert!(stats.entries <= 8, "resident {} > capacity", stats.entries);
        assert!(stats.evictions > 0);
        assert_eq!(stats.misses, 64);
    }

    #[test]
    fn eviction_prefers_the_cheapest_entry() {
        // Capacity 16 ⇒ 2 per shard. Fill one shard with an expensive
        // and a cheap entry, then insert a third: the cheap one must go,
        // whatever order they arrived in (i.e. not FIFO).
        let cache: SpecializationCache<u64> = SpecializationCache::new(16);
        let keys = same_shard_keys(3);
        let (cheap, dear, next) = (keys[0], keys[1], keys[2]);
        cache
            .get_or_init_costed(cheap, || Ok((Arc::new(1), 10)))
            .unwrap();
        cache
            .get_or_init_costed(dear, || Ok((Arc::new(2), 1_000_000)))
            .unwrap();
        cache
            .get_or_init_costed(next, || Ok((Arc::new(3), 500)))
            .unwrap();
        assert_eq!(cache.stats().evictions, 1);
        // The expensive entry survived...
        cache
            .get_or_init_costed(dear, || panic!("expensive entry was evicted"))
            .unwrap();
        // ...the cheap one did not.
        let mut reran = false;
        cache
            .get_or_init_costed(cheap, || {
                reran = true;
                Ok((Arc::new(1), 10))
            })
            .unwrap();
        assert!(reran, "cheap entry should have been the victim");
    }

    #[test]
    fn eviction_weight_includes_size() {
        // Same measured cost, different sizes: the smaller entry is the
        // cheaper victim (it frees less, but costs the same to rebuild —
        // weight = cost × size makes small-and-cheap go first).
        let cache: SpecializationCache<Vec<u8>> = SpecializationCache::with_config_and_sizer(
            CacheConfig::with_capacity(16),
            Box::new(|v: &Vec<u8>| v.len() as u64),
        );
        let keys = same_shard_keys(3);
        let (small, large, next) = (keys[0], keys[1], keys[2]);
        cache
            .get_or_init_costed(small, || Ok((Arc::new(vec![0u8; 2]), 100)))
            .unwrap();
        cache
            .get_or_init_costed(large, || Ok((Arc::new(vec![0u8; 4096]), 100)))
            .unwrap();
        cache
            .get_or_init_costed(next, || Ok((Arc::new(vec![0u8; 8]), 100)))
            .unwrap();
        cache
            .get_or_init_costed(large, || panic!("large entry was evicted"))
            .unwrap();
        let mut reran = false;
        cache
            .get_or_init_costed(small, || {
                reran = true;
                Ok((Arc::new(vec![0u8; 2]), 100))
            })
            .unwrap();
        assert!(reran, "small entry should have been the victim");
    }

    #[test]
    fn ghost_readmission_keeps_the_original_weight() {
        // Capacity 16 ⇒ 2 per shard, with a positive TTL so both slots
        // open up mid-test. An expensive entry is evicted, then — after
        // the original residents lapse — re-admitted via a *cheap*
        // rebuild (the store-load pattern) next to a mid-priced
        // neighbour. The ghost list restores the original build cost,
        // so the next insert evicts the neighbour; at reload cost the
        // re-admitted entry would have been the victim instead.
        let cache: SpecializationCache<u64> = SpecializationCache::with_config(CacheConfig {
            capacity: 16,
            ttl: Some(Duration::from_millis(100)),
            ..CacheConfig::default()
        });
        let keys = same_shard_keys(5);
        let (dear, a, b, mid, next) = (keys[0], keys[1], keys[2], keys[3], keys[4]);
        cache
            .get_or_init_costed(dear, || Ok((Arc::new(1), 1_000_000)))
            .unwrap();
        cache
            .get_or_init_costed(a, || Ok((Arc::new(2), 2_000_000)))
            .unwrap();
        // The shard is full; `dear` (minimum weight) is evicted and
        // remembered by the ghost list.
        cache
            .get_or_init_costed(b, || Ok((Arc::new(3), 3_000_000)))
            .unwrap();
        assert_eq!(cache.stats().evictions, 1);
        // Both residents lapse, freeing the shard...
        std::thread::sleep(Duration::from_millis(150));
        // ...so the mid-priced entry and the cheaply reloaded `dear`
        // are admitted side by side without evicting each other.
        cache
            .get_or_init_costed(mid, || Ok((Arc::new(4), 500_000)))
            .unwrap();
        cache
            .get_or_init_costed(dear, || Ok((Arc::new(1), 50)))
            .unwrap();
        assert_eq!(cache.stats().ghost_hits, 1);
        // The next insert sees weights {mid: 500_000, dear: 1_000_000}
        // — the reload cost of 50 did not stick — and evicts `mid`.
        cache
            .get_or_init_costed(next, || Ok((Arc::new(5), 4_000_000)))
            .unwrap();
        cache
            .get_or_init_costed(dear, || panic!("re-admitted entry thrashed"))
            .unwrap();
    }

    #[test]
    fn ghost_list_is_bounded_and_can_be_disabled() {
        let cache: SpecializationCache<u64> = SpecializationCache::with_config(CacheConfig {
            capacity: 8,
            ghost_capacity: 0,
            ..CacheConfig::default()
        });
        let keys = same_shard_keys(3);
        cache
            .get_or_init_costed(keys[0], || Ok((Arc::new(1), 1_000_000)))
            .unwrap();
        cache
            .get_or_init_costed(keys[1], || Ok((Arc::new(2), 2_000_000)))
            .unwrap();
        // keys[0] was evicted (per-shard capacity 1) but nothing was
        // remembered: the re-admission is not a ghost hit.
        cache
            .get_or_init_costed(keys[0], || Ok((Arc::new(1), 50)))
            .unwrap();
        assert_eq!(cache.stats().ghost_hits, 0);
    }

    #[test]
    fn tenant_sweep_hit_rate_improves_with_the_ghost_list() {
        // The 2048-tenant thrash scenario: a small hot set is swept over
        // repeatedly while cold tenants stream through a cache far
        // smaller than the tenant count. First builds are expensive;
        // rebuilds after eviction are cheap (the store-load pattern).
        // Without the ghost list a hot tenant evicted once re-enters at
        // its reload cost, becomes the minimum-weight entry, and
        // thrashes forever; with it, hot tenants keep their true weight.
        const TENANTS: usize = 2048;
        const HOT: usize = 4;
        const SPECIALIZE: u64 = 1_000_000;
        const RELOAD: u64 = 100;
        let run = |ghost_capacity: usize| -> CacheStats {
            let cache: SpecializationCache<u64> = SpecializationCache::with_config(CacheConfig {
                capacity: 64, // ≪ TENANTS; 8 per shard
                ghost_capacity,
                ..CacheConfig::default()
            });
            let keys = same_shard_keys(TENANTS);
            let (hot, cold) = keys.split_at(HOT);
            // A key's first build costs SPECIALIZE; later rebuilds cost
            // RELOAD, exactly as get_or_load_or_specialize behaves once
            // the artifact is on disk.
            let mut built = std::collections::HashSet::new();
            let mut access = |cache: &SpecializationCache<u64>, key: CacheKey| {
                let cost = if built.insert(key) {
                    SPECIALIZE
                } else {
                    RELOAD
                };
                cache
                    .get_or_init_costed(key, || Ok((Arc::new(0), cost)))
                    .unwrap();
            };
            for key in hot {
                access(&cache, *key);
            }
            for key in cold {
                access(&cache, *key);
                for key in hot {
                    access(&cache, *key);
                }
            }
            cache.stats()
        };
        let without = run(0);
        let with = run(CacheConfig::default().ghost_capacity);
        assert!(with.ghost_hits > 0, "ghost list never consulted");
        assert!(
            with.hit_rate() > without.hit_rate() + 0.05,
            "ghost list should lift the sweep hit rate: {:.3} vs {:.3}",
            with.hit_rate(),
            without.hit_rate()
        );
    }

    #[test]
    fn cached_artifacts_are_shared_not_rebuilt() {
        let cache = FilterCache::new(16);
        let opts = SessionOptions::default();
        let filter = port_filter(80);
        let a = cache.get_or_specialize(&filter, &opts).unwrap();
        let b = cache.get_or_specialize(&filter, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
