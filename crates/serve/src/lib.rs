//! **mlbox-serve** — a concurrent filter-serving engine over the CCAM.
//!
//! The paper's premise is *generate once, run many*: a generating
//! extension pays its specialization cost once and the generated code is
//! then run on a stream of inputs (Table 1's packet-filter rows). This
//! crate makes that operational at production shape:
//!
//! - a **specialization cache** ([`cache`]) keyed by (filter-program
//!   fingerprint, [`SessionOptions`](mlbox::SessionOptions) fingerprint),
//!   guaranteeing that N workers requesting the same filter trigger
//!   exactly one specialization;
//! - a **batched worker pool** ([`pool`]) of threads that each own a
//!   private [`Machine`](ccam::Machine), drain packet batches from a
//!   bounded channel (blocking `submit` or shed-with-reason
//!   `try_submit`), and run them against cached
//!   [`CompiledFilter`](mlbox::CompiledFilter) artifacts;
//! - a **disk artifact store** ([`store`]) persisting specialized
//!   filters in the versioned, checksummed `mlbox::wire` container, so
//!   a cold process hydrates yesterday's artifacts instead of
//!   re-running the generator;
//! - **hot swap** ([`swap`]): generation-keyed filter slots whose
//!   program can be replaced under live traffic, in-flight batches
//!   draining against the snapshot they were submitted with;
//! - **latency histograms** ([`hist`]): lock-free log-bucketed
//!   end-to-end batch latency, surfacing p50/p99 per configuration;
//! - a `serve-bench` binary sweeping workers × batch size over the
//!   Table 1 filters (plus `--persist` cold-start and `--tenants`
//!   multi-tenant sweeps), verifying every verdict and step count
//!   against the single-threaded oracle, and emitting
//!   `BENCH_serve.json` / `BENCH_serve_persist.json`.
//!
//! Machines stay single-threaded — CCAM values are `Rc`/`RefCell`
//! graphs, and sharing one machine behind a lock would serialize exactly
//! the work we want to parallelize. What crosses threads is the frozen
//! *artifact* (`Send + Sync` by construction); each worker hydrates it
//! once into its own heap and runs packets locally.

pub mod cache;
pub mod hist;
pub mod pool;
pub mod store;
pub mod swap;

pub use cache::{CacheConfig, CacheKey, CacheStats, FilterCache, SpecializationCache};
pub use hist::{LatencyHistogram, LatencySnapshot};
pub use pool::{
    AdmissionError, BatchOutput, BatchResult, PoolConfig, PoolReport, ServePool, Ticket,
    WorkerStats,
};
pub use store::{ArtifactStore, StoreError, StoreStats};
pub use swap::SwappableFilter;
