//! The serving layer's concurrency contract, CI-sized:
//!
//! 1. N threads hammering one cache key trigger exactly one
//!    specialization (the others block and share it);
//! 2. N workers × M packets through the cache + pool produce
//!    byte-identical verdicts *and* identical per-packet reduction-step
//!    counts to a fresh single-threaded `FilterHarness` oracle;
//! 3. the cache hit rate is exactly
//!    (requests − distinct filters) / requests.

use mlbox::SessionOptions;
use mlbox_bpf::harness::{expect_verdict, filter_arg};
use mlbox_bpf::insn::Insn;
use mlbox_bpf::{port_filter, telnet_filter, FilterHarness, PacketGen};
use mlbox_serve::{CacheKey, PoolConfig, ServePool, SpecializationCache, Ticket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn contended_key_specializes_exactly_once() {
    let cache: Arc<SpecializationCache<u64>> = Arc::new(SpecializationCache::new(16));
    let runs = Arc::new(AtomicU64::new(0));
    let key = CacheKey {
        filter: 0xfeed,
        options: 0xbeef,
    };
    let threads = 8;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cache = Arc::clone(&cache);
            let runs = Arc::clone(&runs);
            scope.spawn(move || {
                let value = cache
                    .get_or_init(key, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window: everyone must wait for
                        // this initializer, not run their own.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(Arc::new(77))
                    })
                    .unwrap();
                assert_eq!(*value, 77);
            });
        }
    });
    assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one initializer");
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, threads - 1);
}

#[test]
fn pool_is_byte_identical_to_a_fresh_single_threaded_oracle() {
    let workers = 4;
    let packets_per_filter = 12;
    let batch_size = 4;
    let filters: Vec<(Arc<Vec<Insn>>, u64)> = vec![
        (Arc::new(telnet_filter()), 51),
        (Arc::new(port_filter(80)), 52),
    ];

    // Workloads first, so the oracle and the pool see identical bytes.
    let workloads: Vec<_> = filters
        .iter()
        .map(|(filter, seed)| {
            let packets = PacketGen::new(*seed).workload(packets_per_filter, 0.5);
            (Arc::clone(filter), packets)
        })
        .collect();

    // The oracle: a fresh single-threaded harness per filter, measured
    // through the same artifact/apply path the workers use.
    let mut expected: Vec<Vec<(i64, u64)>> = Vec::new();
    for (filter, packets) in &workloads {
        let mut harness = FilterHarness::new(filter).unwrap();
        let mut instance = harness.compile_artifact().unwrap().instantiate();
        expected.push(
            packets
                .iter()
                .map(|pkt| {
                    let (value, stats) = instance.run(filter_arg(pkt)).unwrap();
                    (expect_verdict(&value).unwrap(), stats.steps)
                })
                .collect(),
        );
    }

    let pool = ServePool::new(PoolConfig {
        workers,
        queue_depth: 8,
        cache_capacity: 16,
        ..PoolConfig::default()
    });
    let mut tickets: Vec<(usize, usize, Ticket)> = Vec::new();
    for (f, (filter, packets)) in workloads.iter().enumerate() {
        for (c, chunk) in packets.chunks(batch_size).enumerate() {
            tickets.push((
                f,
                c * batch_size,
                pool.submit(Arc::clone(filter), chunk.to_vec()),
            ));
        }
    }
    let batches = tickets.len() as u64;
    for (f, offset, ticket) in tickets {
        let output = ticket.wait().outcome.expect("batch runs");
        for (i, (&verdict, &steps)) in output.verdicts.iter().zip(&output.steps).enumerate() {
            let (want_verdict, want_steps) = expected[f][offset + i];
            assert_eq!(verdict, want_verdict, "filter {f} packet {}", offset + i);
            assert_eq!(steps, want_steps, "filter {f} packet {} steps", offset + i);
        }
    }

    // Hit-rate identity: every batch is a request; only the first
    // request per distinct filter misses.
    let report = pool.shutdown();
    let distinct = filters.len() as u64;
    assert_eq!(report.cache.requests(), batches);
    assert_eq!(report.cache.misses, distinct);
    assert_eq!(report.cache.hits, batches - distinct);
    assert_eq!(
        report.total_packets(),
        (packets_per_filter * filters.len()) as u64
    );
}

#[test]
fn modes_keep_separate_cache_entries_end_to_end() {
    // The same filter served under two machine modes must specialize
    // twice — options are half of the cache key.
    let filter = Arc::new(telnet_filter());
    let packets = PacketGen::new(53).workload(4, 0.5);
    let optimized = SessionOptions {
        optimize: true,
        ..SessionOptions::default()
    };

    let run_mode = |options: SessionOptions| {
        let pool = ServePool::new(PoolConfig {
            workers: 2,
            options,
            ..PoolConfig::default()
        });
        let out = pool
            .submit(Arc::clone(&filter), packets.clone())
            .wait()
            .outcome
            .expect("batch runs");
        pool.shutdown();
        out
    };
    let plain = run_mode(SessionOptions::default());
    let fast = run_mode(optimized);
    assert_eq!(plain.verdicts, fast.verdicts, "modes agree on verdicts");
    // The optimizer may only make generated code cheaper to run.
    for (a, b) in plain.steps.iter().zip(&fast.steps) {
        assert!(b <= a, "optimized mode took more steps ({b} > {a})");
    }
}
