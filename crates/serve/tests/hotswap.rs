//! Hot swap under concurrent load: filters are replaced while batches
//! are in flight, and the engine must never serve a torn artifact —
//! every batch's verdicts match exactly the generation it was submitted
//! under, old generations drain completely, and all tickets resolve.

use mlbox_bpf::insn::Insn;
use mlbox_bpf::native::run_filter;
use mlbox_bpf::{multi_port_filter, port_filter, PacketGen};
use mlbox_serve::{PoolConfig, ServePool, SwappableFilter, Ticket};
use std::sync::Arc;

/// The filter program published at each generation. Distinct programs
/// with distinct verdict patterns, so a torn or mixed artifact cannot
/// accidentally produce the right answers.
fn filter_at(generation: u64) -> Vec<Insn> {
    match generation % 3 {
        0 => port_filter(23),
        1 => port_filter(80),
        _ => multi_port_filter(&[22, 23, 80]),
    }
}

#[test]
fn swaps_under_concurrent_load_serve_each_generation_intact() {
    let pool = Arc::new(ServePool::new(PoolConfig {
        workers: 4,
        queue_depth: 64,
        cache_capacity: 16,
        ..PoolConfig::default()
    }));
    let slot = Arc::new(SwappableFilter::new(filter_at(0)));
    let swaps = 30;

    // A wave submitted strictly before any swap: these batches are
    // guaranteed to be superseded while (possibly still) in flight, so
    // the drain property is always exercised.
    let mut early_gen = PacketGen::new(599);
    let early: Vec<(Vec<mlbox_bpf::packet::Packet>, Ticket)> = (0..8)
        .map(|_| {
            let packets = early_gen.workload(3, 0.5);
            let ticket = pool.submit_swappable(&slot, packets.clone());
            (packets, ticket)
        })
        .collect();

    // Submitters race the swapper: each submits batches against
    // whatever generation is current at that instant and remembers the
    // ticket. The swapper replaces the filter program continuously.
    let submitters: Vec<_> = (0..3)
        .map(|s| {
            let pool = Arc::clone(&pool);
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                let mut generator = PacketGen::new(600 + s);
                let mut pending: Vec<(Vec<mlbox_bpf::packet::Packet>, Ticket)> = Vec::new();
                for _ in 0..40 {
                    let packets = generator.workload(3, 0.5);
                    let ticket = pool.submit_swappable(&slot, packets.clone());
                    pending.push((packets, ticket));
                }
                pending
            })
        })
        .collect();
    let swapper = {
        let slot = Arc::clone(&slot);
        std::thread::spawn(move || {
            for generation in 1..=swaps {
                slot.swap(filter_at(generation));
                std::thread::yield_now();
            }
        })
    };

    let late: Vec<_> = submitters
        .into_iter()
        .flat_map(|s| s.join().unwrap())
        .collect();
    swapper.join().unwrap();

    let mut batches = 0u64;
    let mut cross_generation_batches = 0u64;
    for (packets, ticket) in early.into_iter().chain(late) {
        let result = ticket.wait();
        let generation = result.generation.expect("swappable submissions are tagged");
        // The batch's verdicts must match the native oracle for THE
        // generation it was submitted under — wholly, not per-packet
        // mixed with any other generation's program.
        let program = filter_at(generation);
        assert_eq!(
            mlbox_bpf::insn::fingerprint(&program),
            result.filter_fingerprint,
            "generation {generation} served a different program"
        );
        let output = result.outcome.expect("batch completes");
        for (i, pkt) in packets.iter().enumerate() {
            assert_eq!(
                output.verdicts[i],
                run_filter(&program, &pkt.bytes),
                "generation {generation}: packet {i} verdict torn"
            );
        }
        batches += 1;
        if generation < slot.generation() {
            cross_generation_batches += 1;
        }
    }
    assert_eq!(
        batches, 128,
        "every ticket resolved — old generations drained"
    );
    // The race is real: some batches were submitted under generations
    // that were already superseded by the time they were verified.
    assert!(
        cross_generation_batches > 0,
        "no batch outlived a swap; the test did not exercise the race"
    );
    assert_eq!(slot.generation(), swaps);

    let pool = Arc::try_unwrap(pool).expect("all submitters done");
    let report = pool.shutdown();
    assert_eq!(report.latency.count, batches);
    assert!(
        report.cache.misses <= 3,
        "at most one specialization per distinct program"
    );
}
