//! The artifact store's persistence contract: save/load round-trips,
//! typed errors for corrupt or mismatched files, idempotent saves, no
//! leftover temp files, and cache integration (a store-backed cache
//! never re-runs the generator for an artifact that is on disk).

use mlbox::SessionOptions;
use mlbox_bpf::harness::{expect_verdict, filter_arg};
use mlbox_bpf::native::run_filter;
use mlbox_bpf::{port_filter, telnet_filter, FilterHarness, PacketGen};
use mlbox_serve::{ArtifactStore, CacheConfig, FilterCache, StoreError};
use std::path::PathBuf;

/// A fresh store directory per test, removed on drop.
struct TempStore {
    root: PathBuf,
    store: ArtifactStore,
}

impl TempStore {
    fn new(tag: &str) -> TempStore {
        let root =
            std::env::temp_dir().join(format!("mlbox-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = ArtifactStore::open(&root).expect("open store");
        TempStore { root, store }
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn compile(filter: &[mlbox_bpf::insn::Insn], options: &SessionOptions) -> mlbox::CompiledFilter {
    let mut harness = FilterHarness::with_options(filter, options.clone()).unwrap();
    harness.compile_artifact().unwrap()
}

#[test]
fn save_load_roundtrip_serves_identically() {
    let temp = TempStore::new("roundtrip");
    let options = SessionOptions::default();
    let filter = telnet_filter();
    let artifact = compile(&filter, &options);
    let path = temp.store.save(&artifact).unwrap();
    assert!(path.exists());
    assert_eq!(temp.store.len().unwrap(), 1);

    let fingerprint = mlbox_bpf::insn::fingerprint(&filter);
    assert!(temp.store.contains(fingerprint, &options));
    let loaded = temp
        .store
        .load(fingerprint, &options)
        .unwrap()
        .expect("artifact is on disk");

    // The loaded artifact serves the same verdicts and step counts.
    let mut fresh = artifact.instantiate();
    let mut disk = loaded.instantiate();
    for pkt in PacketGen::new(71).workload(8, 0.5) {
        let (v1, s1) = fresh.run(filter_arg(&pkt)).unwrap();
        let (v2, s2) = disk.run(filter_arg(&pkt)).unwrap();
        let verdict = expect_verdict(&v2).unwrap();
        assert_eq!(expect_verdict(&v1).unwrap(), verdict);
        assert_eq!(verdict, run_filter(&filter, &pkt.bytes));
        assert_eq!(s1.steps, s2.steps);
    }
    let stats = temp.store.stats();
    assert_eq!((stats.saves, stats.loads, stats.misses), (1, 1, 0));
}

#[test]
fn missing_artifacts_are_none_not_errors() {
    let temp = TempStore::new("missing");
    let options = SessionOptions::default();
    assert!(temp.store.load(0xdead, &options).unwrap().is_none());
    assert!(!temp.store.contains(0xdead, &options));
    assert_eq!(temp.store.stats().misses, 1);
    assert!(temp.store.is_empty().unwrap());
}

#[test]
fn double_saves_are_idempotent() {
    let temp = TempStore::new("idempotent");
    let options = SessionOptions::default();
    let artifact = compile(&port_filter(80), &options);
    let p1 = temp.store.save(&artifact).unwrap();
    let p2 = temp.store.save(&artifact).unwrap();
    assert_eq!(p1, p2, "same key, same path");
    assert_eq!(temp.store.len().unwrap(), 1, "one file, not two");
}

#[test]
fn no_temp_files_survive_saving() {
    let temp = TempStore::new("tmpfiles");
    let options = SessionOptions::default();
    for filter in [telnet_filter(), port_filter(23)] {
        temp.store.save(&compile(&filter, &options)).unwrap();
    }
    let leftovers: Vec<_> = std::fs::read_dir(&temp.root)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|name| !name.ends_with(".mlart"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
}

#[test]
fn corrupt_files_error_with_types_not_panics() {
    let temp = TempStore::new("corrupt");
    let options = SessionOptions::default();
    let filter = telnet_filter();
    let fingerprint = mlbox_bpf::insn::fingerprint(&filter);
    let path = temp.store.save(&compile(&filter, &options)).unwrap();

    // Flip one byte in the middle: the checksum catches it.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    match temp.store.load(fingerprint, &options) {
        Err(StoreError::Artifact(_)) => {}
        other => panic!("corrupt file gave {other:?}"),
    }

    // Truncate it: typed error too.
    bytes[mid] ^= 0xff; // restore
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    match temp.store.load(fingerprint, &options) {
        Err(StoreError::Artifact(_)) => {}
        other => panic!("truncated file gave {other:?}"),
    }
}

#[test]
fn renamed_files_cannot_impersonate_another_key() {
    let temp = TempStore::new("rename");
    let options = SessionOptions::default();
    let filter = telnet_filter();
    let path = temp.store.save(&compile(&filter, &options)).unwrap();
    // Give the telnet artifact the port-80 filter's file name.
    let other = mlbox_bpf::insn::fingerprint(&port_filter(80));
    let imposter = temp
        .root
        .join(ArtifactStore::file_name(other, options.fingerprint()));
    std::fs::rename(&path, &imposter).unwrap();
    match temp.store.load(other, &options) {
        Err(StoreError::KeyMismatch { expected, found }) => {
            assert_eq!(expected.0, other);
            assert_eq!(found.0, mlbox_bpf::insn::fingerprint(&filter));
        }
        other => panic!("imposter file gave {other:?}"),
    }
}

#[test]
fn incompatible_consumers_are_refused_at_load() {
    // An artifact saved under flat_env is refused by a default-mode
    // consumer *if it carries frames*; either way, the load path must
    // only ever hand back artifacts the consumer can hydrate. Exercise
    // the cheap half: a flat-env consumer asking for a key saved under
    // different options simply misses (different file name), it never
    // gets the wrong artifact.
    let temp = TempStore::new("modes");
    let plain = SessionOptions::default();
    let flat = SessionOptions {
        flat_env: true,
        ..SessionOptions::default()
    };
    let filter = telnet_filter();
    let fingerprint = mlbox_bpf::insn::fingerprint(&filter);
    temp.store.save(&compile(&filter, &plain)).unwrap();
    assert!(
        temp.store.load(fingerprint, &flat).unwrap().is_none(),
        "options are part of the key: no cross-mode aliasing"
    );
}

#[test]
fn store_backed_cache_never_recompiles_persisted_artifacts() {
    let temp = TempStore::new("cache");
    let options = SessionOptions::default();
    let filter = telnet_filter();

    // Populate the store (one generator run)...
    temp.store.save(&compile(&filter, &options)).unwrap();

    // ...then serve through a cache so small every request re-misses.
    let cache = FilterCache::for_filters(CacheConfig::with_capacity(1));
    for _ in 0..3 {
        let artifact = cache
            .get_or_load_or_specialize(&filter, &options, &temp.store)
            .unwrap();
        assert_eq!(
            artifact.source_fingerprint(),
            mlbox_bpf::insn::fingerprint(&filter)
        );
    }
    let stats = temp.store.stats();
    assert_eq!(stats.saves, 1, "the generator never ran through the cache");
    assert!(stats.loads >= 1, "the cache fetched from disk");

    // A filter that is NOT on disk is specialized once and saved.
    let fresh = port_filter(8080);
    cache
        .get_or_load_or_specialize(&fresh, &options, &temp.store)
        .unwrap();
    let stats = temp.store.stats();
    assert_eq!(stats.saves, 2, "the miss was specialized and persisted");
    assert_eq!(temp.store.len().unwrap(), 2);
}

#[test]
fn gc_evicts_least_recently_loaded_down_to_budget() {
    let temp = TempStore::new("gc");
    let options = SessionOptions::default();
    let filters = [port_filter(21), port_filter(22), port_filter(23)];
    let mut sizes = Vec::new();
    for f in &filters {
        let path = temp.store.save(&compile(f, &options)).unwrap();
        sizes.push(std::fs::metadata(&path).unwrap().len());
    }
    // Touch the first filter so the second becomes the coldest.
    let fp = |f: &[mlbox_bpf::insn::Insn]| mlbox_bpf::insn::fingerprint(f);
    temp.store.load(fp(&filters[0]), &options).unwrap().unwrap();

    // Budget for two artifacts: the coldest (filters[1]) goes.
    let budget = sizes.iter().sum::<u64>() - sizes[1];
    let report = temp.store.gc(budget).unwrap();
    assert_eq!(report.evicted, 1);
    assert_eq!(report.bytes_evicted, sizes[1]);
    assert!(report.resident_bytes <= budget);
    assert!(!temp.store.contains(fp(&filters[1]), &options));
    assert!(temp.store.contains(fp(&filters[0]), &options));
    assert!(temp.store.contains(fp(&filters[2]), &options));

    // A generous budget is a no-op sweep.
    let report = temp.store.gc(u64::MAX).unwrap();
    assert_eq!((report.evicted, report.bytes_evicted), (0, 0));
    // A zero budget clears the store.
    let report = temp.store.gc(0).unwrap();
    assert_eq!(report.resident_bytes, 0);
    assert!(temp.store.is_empty().unwrap());
}

#[test]
fn gc_never_removes_an_entry_loaded_during_the_sweep() {
    let temp = TempStore::new("gc-race");
    let options = SessionOptions::default();
    let filters = [port_filter(80), port_filter(443)];
    for f in &filters {
        temp.store.save(&compile(f, &options)).unwrap();
    }
    let fp = |f: &[mlbox_bpf::insn::Insn]| mlbox_bpf::insn::fingerprint(f);
    // Zero budget selects both as victims; the hook simulates a worker
    // loading each artifact between victim selection and its unlink.
    // Every victim is re-stamped mid-sweep, so the sweep removes nothing.
    let report = temp
        .store
        .gc_with_hook(0, |path| {
            let name = path.file_name().unwrap().to_str().unwrap();
            for f in &filters {
                let key = ArtifactStore::file_name(fp(f), options.fingerprint());
                if key == name {
                    temp.store.load(fp(f), &options).unwrap().unwrap();
                }
            }
        })
        .unwrap();
    assert_eq!(
        report.evicted, 0,
        "loads during the sweep pin their entries"
    );
    assert_eq!(temp.store.len().unwrap(), 2);
    // With no interference the same budget clears both.
    let report = temp.store.gc(0).unwrap();
    assert_eq!(report.evicted, 2);
}
