//! Shareable compiled-code artifacts: the *generate once, run many*
//! half of the paper, made operational.
//!
//! A [`Session`](crate::Session) is single-threaded by construction —
//! its values are `Rc`/`RefCell` graphs. A [`CompiledFilter`] is the
//! escape hatch: the finished, frozen result of running a generating
//! extension, extracted into the `Send + Sync` portable representation
//! ([`ccam::portable`]) together with the metadata a cache needs (the
//! options it was compiled under, a fingerprint of the source program,
//! and its instruction count). Any thread can then [`instantiate`] a
//! fresh machine from the artifact and run packets against it without
//! re-running the generator.
//!
//! [`instantiate`]: CompiledFilter::instantiate

use crate::error::Error;
use crate::session::SessionOptions;
use ccam::instr::Instr;
use ccam::machine::{Machine, MachineError, Stats};
use ccam::portable::PortableValue;
use ccam::seg::{CodeRef, CodeSeg};
use ccam::value::Value;
use std::sync::Arc;

/// A frozen, validated, thread-shareable compiled filter.
///
/// Produced by [`Session::compile_to_artifact`]; consumed by
/// [`CompiledFilter::instantiate`] on any thread.
///
/// [`Session::compile_to_artifact`]: crate::Session::compile_to_artifact
#[derive(Debug, Clone)]
pub struct CompiledFilter {
    entry: PortableValue,
    options: SessionOptions,
    source_fingerprint: u64,
    instructions: usize,
}

// A compiled artifact must be shareable across worker threads — that is
// its entire reason to exist. Compile-time enforcement.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledFilter>();
    assert_send_sync::<Arc<CompiledFilter>>();
};

impl CompiledFilter {
    /// Packages an already-extracted entry point with its metadata.
    /// Prefer [`Session::compile_to_artifact`], which also validates.
    ///
    /// [`Session::compile_to_artifact`]: crate::Session::compile_to_artifact
    pub fn new(entry: PortableValue, options: SessionOptions, source_fingerprint: u64) -> Self {
        let instructions = entry.instr_count();
        CompiledFilter {
            entry,
            options,
            source_fingerprint,
            instructions,
        }
    }

    /// The options the artifact was compiled under.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// Fingerprint of the source program the artifact was compiled from.
    pub fn source_fingerprint(&self) -> u64 {
        self.source_fingerprint
    }

    /// Fingerprint of the compilation options ([`SessionOptions::fingerprint`]).
    pub fn options_fingerprint(&self) -> u64 {
        self.options.fingerprint()
    }

    /// Number of distinct instructions in the artifact (shared code
    /// bodies counted once).
    pub fn instructions(&self) -> usize {
        self.instructions
    }

    /// The portable entry-point value.
    pub fn entry(&self) -> &PortableValue {
        &self.entry
    }

    /// Rebuilds the entry point as a machine value for the current
    /// thread. Sharing inside the artifact is preserved.
    pub fn hydrate_entry(&self) -> Value {
        self.entry.hydrate()
    }

    /// Checks that this artifact's value representation is sound for a
    /// consumer compiled under `consumer` options. An artifact whose
    /// value graph carries contiguous frames (it was generated with
    /// `flat_env`) must never hydrate into a session using a different
    /// environment mode: the consumer's step accounting assumes the
    /// pair-spine cost model, and silently running frame-backed
    /// closures would corrupt the measurement the serving oracle
    /// compares. The options fingerprint already keeps such artifacts
    /// in separate cache slots; this is the belt-and-braces check at
    /// the hydration boundary.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Artifact`] on a representation mismatch.
    pub fn check_compatible(&self, consumer: &SessionOptions) -> Result<(), Error> {
        if self.entry.uses_frames() && !consumer.flat_env {
            return Err(Error::Artifact(
                "artifact carries flat-env frame environments but the \
                 consuming session is not in flat_env mode; rebuild the \
                 artifact under the consumer's options"
                    .to_string(),
            ));
        }
        Ok(())
    }

    /// Rebuilds the entry point for a consumer running under `consumer`
    /// options, first rejecting representation mismatches
    /// (see [`check_compatible`](CompiledFilter::check_compatible)).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Artifact`] on a representation mismatch.
    pub fn hydrate_entry_for(&self, consumer: &SessionOptions) -> Result<Value, Error> {
        self.check_compatible(consumer)?;
        Ok(self.entry.hydrate())
    }

    /// A fresh single-threaded runner for this artifact: its own
    /// [`Machine`] (configured with the artifact's options) plus a
    /// hydrated copy of the entry point. Cheap — no parsing, type
    /// checking, or code generation happens.
    pub fn instantiate(&self) -> FilterInstance {
        FilterInstance {
            machine: machine_for(&self.options),
            entry: self.entry.hydrate(),
            app: app_code(),
        }
    }
}

/// Builds a machine configured exactly as a [`Session`](crate::Session)
/// with these options would configure its own.
pub fn machine_for(options: &SessionOptions) -> Machine {
    let mut machine = match options.fuel {
        Some(f) => Machine::with_fuel(f),
        None => Machine::new(),
    };
    machine.set_optimize(options.optimize);
    machine.set_count_opcodes(options.count_opcodes);
    machine.set_fuse(options.fuse);
    machine.set_native(options.native);
    if let Some(policy) = options.adaptive {
        let spine_units = !(options.indexed_env || options.flat_env);
        machine.set_tier_policy(Some(policy), spine_units);
    }
    machine
}

/// The single-instruction application program used by every artifact
/// runner. Using one shared entry sequence (bare `app` on a
/// `(closure, argument)` pair) guarantees the oracle and every pool
/// worker pay *identical* step counts for the same packet.
pub fn app_code() -> CodeRef {
    CodeSeg::new().entry(vec![Instr::App])
}

/// Applies `entry` to `arg` on `machine`, returning the result and the
/// statistics of this call alone. `app` should come from [`app_code`]
/// (passed in so callers can reuse one allocation across a batch).
///
/// # Errors
///
/// Returns any CCAM run-time error from the application.
pub fn apply(
    machine: &mut Machine,
    app: &CodeRef,
    entry: &Value,
    arg: Value,
) -> Result<(Value, Stats), MachineError> {
    let before = machine.stats();
    let result = machine.run(app.clone(), Value::pair(entry.clone(), arg))?;
    let stats = machine.stats().delta_since(&before);
    Ok((result, stats))
}

/// A single-threaded runner instantiated from a [`CompiledFilter`]:
/// one machine, one hydrated entry point.
#[derive(Debug)]
pub struct FilterInstance {
    machine: Machine,
    entry: Value,
    app: CodeRef,
}

impl FilterInstance {
    /// Applies the compiled filter to `arg`, returning the result and
    /// the statistics of this call alone.
    ///
    /// # Errors
    ///
    /// Returns any CCAM run-time error from the application.
    pub fn run(&mut self, arg: Value) -> Result<(Value, Stats), MachineError> {
        apply(&mut self.machine, &self.app, &self.entry, arg)
    }

    /// Total statistics accumulated by this instance.
    pub fn stats(&self) -> Stats {
        self.machine.stats()
    }

    /// Zeroes the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.machine.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;

    fn power_artifact() -> CompiledFilter {
        let mut s = Session::new().unwrap();
        s.run(
            "fun codePower e = if e = 0 then code (fn b => 1)
                               else let cogen p = codePower (e - 1)
                                    in code (fn b => b * (p b)) end",
        )
        .unwrap();
        s.compile_to_artifact("codePower 3", 0xc0de).unwrap()
    }

    #[test]
    fn artifact_round_trips_a_generated_function() {
        let artifact = power_artifact();
        assert!(artifact.instructions() > 0);
        assert_eq!(artifact.source_fingerprint(), 0xc0de);
        let mut instance = artifact.instantiate();
        let (v, stats) = instance.run(Value::Int(5)).unwrap();
        assert_eq!(v.to_string(), "125");
        assert!(stats.steps > 0);
        assert_eq!(stats.emitted, 0, "running an artifact generates nothing");
    }

    #[test]
    fn instances_are_independent_and_deterministic() {
        let artifact = power_artifact();
        let mut a = artifact.instantiate();
        let mut b = artifact.instantiate();
        let (va, sa) = a.run(Value::Int(7)).unwrap();
        let (vb, sb) = b.run(Value::Int(7)).unwrap();
        assert_eq!(va.to_string(), vb.to_string());
        assert_eq!(sa.steps, sb.steps, "same artifact, same per-call cost");
        a.reset_stats();
        assert_eq!(a.stats().steps, 0);
        assert_eq!(b.stats().steps, sb.steps, "reset is per-instance");
    }

    #[test]
    fn artifact_runs_on_another_thread() {
        let artifact = Arc::new(power_artifact());
        let shared = Arc::clone(&artifact);
        let remote = std::thread::spawn(move || {
            let mut instance = shared.instantiate();
            let (v, stats) = instance.run(Value::Int(4)).unwrap();
            (v.to_string(), stats.steps)
        })
        .join()
        .unwrap();
        let mut local = artifact.instantiate();
        let (v, stats) = local.run(Value::Int(4)).unwrap();
        assert_eq!(remote, (v.to_string(), stats.steps));
    }

    #[test]
    fn artifact_agrees_with_ml_level_eval() {
        // The unit-environment splice must produce the same function
        // `eval` would — same verdicts, same generated body.
        let mut s = Session::new().unwrap();
        s.run(
            "fun codePower e = if e = 0 then code (fn b => 1)
                               else let cogen p = codePower (e - 1)
                                    in code (fn b => b * (p b)) end
             val viaEval = eval (codePower 3)",
        )
        .unwrap();
        let artifact = s.compile_to_artifact("codePower 3", 0).unwrap();
        let mut instance = artifact.instantiate();
        for n in [0i64, 1, 2, 9] {
            let oracle = s.call("viaEval", Value::Int(n)).unwrap().0;
            let (v, _) = instance.run(Value::Int(n)).unwrap();
            assert_eq!(v.to_string(), oracle.to_string());
        }
    }

    #[test]
    fn non_function_results_are_rejected() {
        let mut s = Session::new().unwrap();
        let err = s.compile_to_artifact("lift 42", 0).unwrap_err();
        assert!(err.to_string().contains("not a function"), "{err}");
    }

    #[test]
    fn flat_env_artifacts_refuse_pair_spine_consumers() {
        let flat = SessionOptions {
            flat_env: true,
            ..SessionOptions::default()
        };
        let mut s = Session::with_options(flat.clone()).unwrap();
        // `f` closes over the frame-backed session environment, and
        // lifting it residualizes that frame into the generated code.
        s.run("val a = 1;\nval b = 2;\nval f = fn x => x + a + b")
            .unwrap();
        let artifact = s
            .compile_to_artifact("let cogen c = lift f in code (fn x => c x) end", 0)
            .unwrap();
        assert!(
            artifact.entry().uses_frames(),
            "the lifted closure must carry its frame environment"
        );
        // The artifact runs correctly under its own options...
        let mut instance = artifact.instantiate();
        let (v, _) = instance.run(Value::Int(4)).unwrap();
        assert_eq!(v.to_string(), "7");
        // ...checked hydration under matching options succeeds...
        artifact.hydrate_entry_for(&flat).unwrap();
        // ...and a pair-spine consumer is refused rather than silently
        // mis-measured.
        let err = artifact
            .hydrate_entry_for(&SessionOptions::default())
            .unwrap_err();
        assert!(err.to_string().contains("flat-env"), "{err}");
    }

    #[test]
    fn frame_free_artifacts_hydrate_for_any_consumer() {
        let artifact = power_artifact();
        assert!(!artifact.entry().uses_frames());
        artifact
            .hydrate_entry_for(&SessionOptions::default())
            .unwrap();
        artifact
            .hydrate_entry_for(&SessionOptions {
                flat_env: true,
                ..SessionOptions::default()
            })
            .unwrap();
    }

    #[test]
    fn unportable_residuals_are_rejected() {
        let mut s = Session::new().unwrap();
        // Lifting a ref cell residualizes it into the generated body as
        // an immediate — inherently thread-unsafe, so extraction must
        // refuse it.
        s.run("val r = ref 0").unwrap();
        let err = s
            .compile_to_artifact("let cogen c = lift r in code (fn x => c) end", 0)
            .unwrap_err();
        assert!(err.to_string().contains("ref cell"), "{err}");
    }
}
