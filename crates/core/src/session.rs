//! The incremental MLbox session: parse → elaborate → type check →
//! compile → run on the CCAM, one declaration at a time, with
//! per-declaration reduction-step accounting (the measurement surface of
//! the paper's Table 1).

use crate::artifact::CompiledFilter;
use crate::error::Error;
use crate::fingerprint::Fnv1a;
use crate::prelude::PRELUDE;
use crate::render::render_machine;
use ccam::instr::{validate, Instr};
use ccam::machine::{Machine, Stats, TierPolicy, Trace};
use ccam::portable::PortableValue;
use ccam::seg::CodeSeg;
use ccam::value::Value;
use mlbox_compile::compile::{compile_decl, compile_expr, DeclEffect};
use mlbox_compile::ctx::{Ctx, EnvMode};
use mlbox_ir::core::CoreDecl;
use mlbox_ir::data::DataEnv;
use mlbox_ir::elab::Elab;
use mlbox_syntax::parser::{parse_expr, parse_program};
use mlbox_types::check::{Checker, TypeCtx};

/// Configuration for a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Load the prelude (`eval`, lists, option, tables). Default: true.
    pub prelude: bool,
    /// Step budget for the machine (`None` = unlimited).
    pub fuel: Option<u64>,
    /// Run the modal type checker before compiling. Default: true.
    pub typecheck: bool,
    /// Enable emission-time peephole optimization of generated code
    /// (§4.2's envisioned "more sophisticated specialization system").
    /// Default: false, matching the paper's measured system.
    pub optimize: bool,
    /// Count executed steps per opcode (surfaced as
    /// [`Stats::opcodes`]). Default: false — the count array is carried
    /// in every stats snapshot, so it is opt-in.
    pub count_opcodes: bool,
    /// Compile variable accesses as fused indexed lookups (`acc n`)
    /// instead of the paper's `fst^n; snd` chains. Default: false, so the
    /// reduction-step counts of Table 1 stay exactly the paper's cost
    /// model; turn on to measure the indexed representation.
    pub indexed_env: bool,
    /// Grow the environment as contiguous `Vec`-backed frames
    /// (`env_cons`) so each `acc n` is an O(1) slot load instead of a
    /// spine walk (DESIGN.md §12). Implies indexed-style access paths and
    /// wins over [`indexed_env`](SessionOptions::indexed_env) when both
    /// are set. Default: false, keeping the paper's pair-spine
    /// representation and Table 1's exact cost model.
    pub flat_env: bool,
    /// Rewrite the hottest adjacent opcode pairs into fused
    /// superinstructions (DESIGN.md §11), both in statically compiled
    /// code and — via the freeze path — in run-time generated code.
    /// Default: false, so Table 1's step counts stay the paper's cost
    /// model; turn on to measure dispatch-fused execution.
    pub fuse: bool,
    /// Execute through the thread-coded native tier (DESIGN.md §13):
    /// blocks are lowered once into flat arrays of pre-decoded op
    /// closures — frozen generated code eagerly at freeze time, static
    /// code on first activation — so the dispatch loop is an indirect
    /// call per step instead of a decode-and-match. Observable semantics,
    /// step counts, traces, and fuel accounting are identical to the
    /// interpreter; only wall-clock changes. Default: false.
    pub native: bool,
    /// Run under the adaptive tier controller (DESIGN.md §15): compile
    /// and freeze everything plainly (the Paper tier), count per-block
    /// activations at run time, and promote hot blocks through
    /// fuse→native using each block's own measured instruction mix.
    /// Step counts, verdicts, traces, and fuel behave exactly as under
    /// the [`Paper`](ExecProfile::Paper) profile — promotion changes
    /// wall clock only. Mutually exclusive with the static
    /// `optimize`/`fuse`/`native` flags ([`Session::with_options`]
    /// rejects the combination). Default: `None` (static behavior).
    pub adaptive: Option<TierPolicy>,
}

/// The tiering regime a session executes under — the axis of
/// [`SessionOptions`] that decides *how* compiled code runs, separated
/// from the semantic axes (prelude, fuel, typecheck, env mode, opcode
/// counting). Derived by [`SessionOptions::profile`], installed by
/// [`SessionOptions::with_profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecProfile {
    /// The paper's measured system: no optimizer, no fusion, no native
    /// tier. The golden step-count lockfiles and the wire-format golden
    /// artifact are pinned to this profile.
    Paper,
    /// One fixed point of the 2×2×2 `(optimize, fuse, native)` flavor
    /// lattice, chosen up front for the whole session — the behavior of
    /// the pre-adaptive flag set.
    Static(ExecFlags),
    /// The run-time tier controller: every block starts on the Paper
    /// tier and is promoted per the policy once its activation count
    /// crosses `promote_after`.
    Adaptive(TierPolicy),
}

/// The static tiering flags — one point of the freeze-flavor lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ExecFlags {
    /// Emission-time peephole optimization.
    pub optimize: bool,
    /// Superinstruction fusion of static and frozen code.
    pub fuse: bool,
    /// Thread-coded native execution.
    pub native: bool,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            prelude: true,
            fuel: None,
            typecheck: true,
            optimize: false,
            count_opcodes: false,
            indexed_env: false,
            flat_env: false,
            fuse: false,
            native: false,
            adaptive: None,
        }
    }
}

impl SessionOptions {
    /// A stable fingerprint of every option that affects compiled code
    /// or its measured cost. Two sessions whose options fingerprint
    /// equally produce byte-identical code and step counts for the same
    /// program, so the serving layer uses this as half of its cache key
    /// (the other half fingerprints the filter program): artifacts
    /// compiled under different modes can never alias.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_bool(self.prelude);
        match self.fuel {
            Some(f) => {
                h.write_u8(1);
                h.write_u64(f);
            }
            None => h.write_u8(0),
        }
        h.write_bool(self.typecheck);
        h.write_bool(self.optimize);
        h.write_bool(self.count_opcodes);
        h.write_bool(self.indexed_env);
        h.write_bool(self.flat_env);
        h.write_bool(self.fuse);
        h.write_bool(self.native);
        // The adaptive policy is appended *after* every pre-existing
        // field, and only when present: Paper- and Static-profile
        // fingerprints — and therefore every golden lockfile and wire
        // artifact — are byte-for-byte what they were before tiering
        // became dynamic.
        if let Some(policy) = self.adaptive {
            h.write_u8(1);
            h.write_u64(policy.promote_after);
            h.write_u64(policy.fuse_top_k as u64);
            h.write_bool(policy.use_native);
        }
        h.finish()
    }

    /// The tiering regime these options select (see [`ExecProfile`]).
    pub fn profile(&self) -> ExecProfile {
        if let Some(policy) = self.adaptive {
            ExecProfile::Adaptive(policy)
        } else if self.optimize || self.fuse || self.native {
            ExecProfile::Static(ExecFlags {
                optimize: self.optimize,
                fuse: self.fuse,
                native: self.native,
            })
        } else {
            ExecProfile::Paper
        }
    }

    /// Default options running under `profile` — the inverse of
    /// [`profile`](SessionOptions::profile).
    pub fn with_profile(profile: ExecProfile) -> SessionOptions {
        let mut o = SessionOptions::default();
        o.set_profile(profile);
        o
    }

    /// Replaces the tiering regime, leaving the semantic options (env
    /// mode, fuel, typecheck, …) untouched.
    pub fn set_profile(&mut self, profile: ExecProfile) {
        self.optimize = false;
        self.fuse = false;
        self.native = false;
        self.adaptive = None;
        match profile {
            ExecProfile::Paper => {}
            ExecProfile::Static(f) => {
                self.optimize = f.optimize;
                self.fuse = f.fuse;
                self.native = f.native;
            }
            ExecProfile::Adaptive(policy) => self.adaptive = Some(policy),
        }
    }
}

/// The result of processing one declaration.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Binding name, if the declaration bound one.
    pub name: Option<String>,
    /// Rendered principal type (empty if type checking is off).
    pub ty: String,
    /// Rendered value.
    pub value: String,
    /// The raw machine value.
    pub raw: Value,
    /// Machine statistics for this declaration alone.
    pub stats: Stats,
}

/// An incremental MLbox evaluation session backed by the CCAM.
///
/// # Examples
///
/// ```
/// use mlbox::Session;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut session = Session::new()?;
/// let outcomes = session.run(
///     "fun codePower e = if e = 0 then code (fn b => 1)
///                        else let cogen p = codePower (e - 1)
///                             in code (fn b => b * (p b)) end
///      val square = eval (codePower 2);
///      square 9",
/// )?;
/// assert_eq!(outcomes.last().unwrap().value, "81");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    elab: Elab,
    checker: Checker,
    ctx: Ctx,
    env: Value,
    machine: Machine,
    /// The one code segment every declaration compiles into. Run-time
    /// generation freezes into its growable tail, so the whole session —
    /// compiled and generated code alike — is a single flat arena.
    seg: CodeSeg,
    options: SessionOptions,
}

impl Session {
    /// A session with the default options (prelude loaded, type checking
    /// on, no fuel limit).
    ///
    /// # Errors
    ///
    /// Returns an error if the prelude fails to load (a crate bug).
    pub fn new() -> Result<Session, Error> {
        Session::with_options(SessionOptions::default())
    }

    /// A session with explicit options.
    ///
    /// # Errors
    ///
    /// Returns an error if the prelude fails to load.
    pub fn with_options(options: SessionOptions) -> Result<Session, Error> {
        if options.adaptive.is_some() && (options.optimize || options.fuse || options.native) {
            return Err(Error::Options(
                "adaptive tiering replaces the static optimize/fuse/native flags; \
                 clear them or drop the tier policy"
                    .to_string(),
            ));
        }
        let mut machine = match options.fuel {
            Some(f) => Machine::with_fuel(f),
            None => Machine::new(),
        };
        machine.set_optimize(options.optimize);
        machine.set_count_opcodes(options.count_opcodes);
        machine.set_fuse(options.fuse);
        machine.set_native(options.native);
        if let Some(policy) = options.adaptive {
            // Step charges stay in the baseline cost model the compiler
            // targets: pair-spine units unless accesses compile to
            // indexed/flat `acc` paths.
            let spine_units = !(options.indexed_env || options.flat_env);
            machine.set_tier_policy(Some(policy), spine_units);
        }
        let env_mode = if options.flat_env {
            EnvMode::Flat
        } else if options.indexed_env {
            EnvMode::Indexed
        } else {
            EnvMode::PairSpine
        };
        let mut s = Session {
            elab: Elab::new(),
            checker: Checker::new(),
            ctx: Ctx::root_with(env_mode),
            env: Value::Unit,
            machine,
            seg: CodeSeg::new(),
            options: options.clone(),
        };
        if options.prelude {
            s.run(PRELUDE)?;
        }
        Ok(s)
    }

    /// The datatype environment (for rendering values externally).
    pub fn data(&self) -> &DataEnv {
        &self.elab.data
    }

    /// The options this session was built with.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// Total machine statistics accumulated over the session.
    pub fn stats(&self) -> Stats {
        self.machine.stats()
    }

    /// Zeroes the accumulated machine statistics. Bindings, code, and
    /// output are untouched — this only resets the counters, so a
    /// long-lived session (e.g. a pool worker) can take cheap
    /// per-request measurements without accumulating cross-request step
    /// counts.
    pub fn reset_stats(&mut self) {
        self.machine.reset_stats();
    }

    /// Everything `print`ed so far; clears the buffer.
    pub fn take_output(&mut self) -> String {
        self.machine.take_output()
    }

    /// Records the first `limit` executed instructions of subsequent runs
    /// as `(block, pc, mnemonic)` entries (see [`Machine::set_trace`]).
    pub fn set_trace(&mut self, limit: usize) {
        self.machine.set_trace(limit);
    }

    /// The bounded execution trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.machine.trace()
    }

    /// Records the dynamic frequency of adjacent opcode pairs on
    /// subsequent runs — the measurement behind the superinstruction
    /// selection (`table1 --profile-pairs`, DESIGN.md §11).
    pub fn set_profile_pairs(&mut self, on: bool) {
        self.machine.set_profile_pairs(on);
    }

    /// The opcode-pair histogram, if profiling was enabled.
    pub fn pair_profile(&self) -> Option<&ccam::machine::PairCounts> {
        self.machine.pair_profile()
    }

    /// Non-fatal warnings accumulated since the last call (non-exhaustive
    /// and redundant matches).
    pub fn take_warnings(&mut self) -> Vec<mlbox_syntax::diag::Diagnostic> {
        std::mem::take(&mut self.elab.warnings)
    }

    /// The constructor tag for a constructor name currently in scope
    /// (latest declaration wins), for building machine values externally.
    pub fn constructor_tag(&self, name: &str) -> Option<u32> {
        let data = &self.elab.data;
        let mut found = None;
        for (_, info) in data.datatypes() {
            for &c in &info.cons {
                if data.con(c).name == name {
                    found = Some(c.0);
                }
            }
        }
        found
    }

    fn static_err(&self, diag: mlbox_syntax::diag::Diagnostic, src: &str) -> Error {
        Error::Static {
            diag,
            src: src.to_string(),
        }
    }

    /// Parses and processes a program (a sequence of declarations),
    /// returning one [`Outcome`] per core declaration.
    ///
    /// # Errors
    ///
    /// Returns the first static or dynamic error. Already-processed
    /// declarations remain bound.
    pub fn run(&mut self, src: &str) -> Result<Vec<Outcome>, Error> {
        let program = parse_program(src).map_err(|d| self.static_err(d, src))?;
        let mut outcomes = Vec::new();
        for decl in &program.decls {
            let core_decls = self
                .elab
                .elab_decl(decl)
                .map_err(|d| self.static_err(d, src))?;
            for cd in &core_decls {
                outcomes.push(self.process_core_decl(cd, src)?);
            }
        }
        Ok(outcomes)
    }

    /// Evaluates a single expression in the current session environment.
    ///
    /// # Errors
    ///
    /// Returns the first static or dynamic error.
    pub fn eval_expr(&mut self, src: &str) -> Result<Outcome, Error> {
        let surface = parse_expr(src).map_err(|d| self.static_err(d, src))?;
        let core = self
            .elab
            .elab_expr(&surface)
            .map_err(|d| self.static_err(d, src))?;
        let decl = CoreDecl::Expr(core);
        self.process_core_decl(&decl, src)
    }

    /// Applies the superinstruction-fusion pass to statically compiled
    /// code when the session runs in fused mode. Run-time generated code
    /// is fused separately, when its arena freezes (the machine's fuse
    /// flag selects the fused freeze slot), so static and generated code
    /// execute under the same dispatch regime.
    fn finish_code(&self, code: Vec<Instr>) -> Vec<Instr> {
        if self.options.fuse {
            ccam::opt::fuse(&self.seg, &code)
        } else {
            code
        }
    }

    fn process_core_decl(&mut self, cd: &CoreDecl, src: &str) -> Result<Outcome, Error> {
        // Type check.
        let ty = if self.options.typecheck {
            let tcx = TypeCtx {
                data: &self.elab.data,
                abbrevs: &self.elab.abbrevs,
            };
            let t = self
                .checker
                .check_decl(cd, tcx)
                .map_err(|d| self.static_err(d, src))?;
            self.checker.display_type(&t, &self.elab.data)
        } else {
            String::new()
        };
        // Compile.
        let (code, new_ctx, effect) =
            compile_decl(cd, &self.ctx, &self.seg).map_err(|d| self.static_err(d, src))?;
        debug_assert!(
            validate(&self.seg, &code).is_ok(),
            "compiler produced nested emits"
        );
        // Run, measuring this declaration alone.
        let code = self.finish_code(code);
        let before = self.machine.stats();
        let result = self.machine.run(self.seg.entry(code), self.env.clone())?;
        let stats = self.machine.stats().delta_since(&before);
        let (name, raw) = match effect {
            DeclEffect::ExtendsEnv => {
                self.env = result;
                self.ctx = new_ctx;
                // In flat mode the declaration extends a frame, not a
                // pair; `env_snd` projects the binding from either.
                let bound = self.env.env_snd().unwrap_or_else(|| self.env.clone());
                (decl_name(cd), bound)
            }
            DeclEffect::ProducesValue => (None, result),
        };
        Ok(Outcome {
            name,
            ty,
            value: render_machine(&raw, &self.elab.data),
            raw,
            stats,
        })
    }

    /// Applies a session-bound function to a machine value, returning the
    /// result and the statistics of the call alone. This is the benchmark
    /// harness's measurement primitive.
    ///
    /// # Errors
    ///
    /// Returns an error if `name` is not bound to a function, or the call
    /// fails.
    pub fn call(&mut self, name: &str, arg: Value) -> Result<(Value, Stats), Error> {
        let src = format!("<call {name}>");
        // Resolve through the elaborator so shadowing matches the surface
        // language, then compile a direct application.
        let surface = parse_expr(name).map_err(|d| self.static_err(d, &src))?;
        let core = self
            .elab
            .elab_expr(&surface)
            .map_err(|d| self.static_err(d, &src))?;
        let mut code = vec![Instr::Push];
        code.extend(
            compile_expr(&core, &self.ctx, &self.seg).map_err(|d| self.static_err(d, &src))?,
        );
        code.extend([Instr::Swap, Instr::Quote(arg), Instr::ConsPair, Instr::App]);
        let code = self.finish_code(code);
        let before = self.machine.stats();
        let result = self.machine.run(self.seg.entry(code), self.env.clone())?;
        let stats = self.machine.stats().delta_since(&before);
        Ok((result, stats))
    }

    /// Runs the generating extension `generator` (an expression of type
    /// `A $`) once, splices the generated code, and extracts the
    /// resulting function into a thread-shareable [`CompiledFilter`].
    /// The artifact can then be instantiated on any number of worker
    /// threads without re-running the generator. `source_fingerprint`
    /// identifies the source program the artifact was compiled from
    /// (callers pick the scheme; the BPF harness fingerprints the filter
    /// instruction sequence).
    ///
    /// Why not simply extract the value of `eval generator`? Because the
    /// `call` instruction splices generated code over the environment at
    /// the splice site, so the closure `eval` returns drags the whole
    /// session environment behind it — prelude tables, the generator
    /// itself, every `ref` and array ever bound — none of which can
    /// cross threads. This method instead re-roots the splice on a
    /// **unit** environment: the modal type discipline guarantees
    /// generated code is closed (every residualized value is a `lift`ed
    /// immediate in the instruction stream), so the artifact never needs
    /// the environment it was generated in. Were that invariant ever
    /// violated, the run fails fast with a machine error rather than
    /// miscomputing.
    ///
    /// Like [`Session::call`], the expression is compiled directly
    /// without a type-checking pass; passing a non-generator is a
    /// dynamic error.
    ///
    /// # Errors
    ///
    /// Returns a static or dynamic error from running the generator, or
    /// an [`Error::Artifact`] if the generated value is not a function
    /// or embeds mutable state (ref cells, arrays) that cannot cross
    /// threads.
    pub fn compile_to_artifact(
        &mut self,
        generator: &str,
        source_fingerprint: u64,
    ) -> Result<CompiledFilter, Error> {
        let src = format!("<artifact {generator}>");
        let surface = parse_expr(generator).map_err(|d| self.static_err(d, &src))?;
        let core = self
            .elab
            .elab_expr(&surface)
            .map_err(|d| self.static_err(d, &src))?;
        // ⟨generator, fresh arena⟩; app — run the generating extension...
        let mut code = vec![Instr::Push];
        code.extend(
            compile_expr(&core, &self.ctx, &self.seg).map_err(|d| self.static_err(d, &src))?,
        );
        code.extend([
            Instr::Swap,
            Instr::NewArena,
            Instr::ConsPair,
            Instr::App,
            // ...then rebuild the gen state (v, arena) as (unit, arena),
            // so `call` splices the generated code over a unit
            // environment instead of v (which reaches the session env).
            Instr::Snd,
            Instr::Push,
            Instr::Quote(Value::Unit),
            Instr::Swap,
            Instr::ConsPair,
            Instr::Call,
        ]);
        let code = self.finish_code(code);
        let result = self.machine.run(self.seg.entry(code), self.env.clone())?;
        match &result {
            Value::Closure(_) | Value::RecClosure { .. } => {}
            other => {
                return Err(Error::Artifact(format!(
                    "artifact entry point is not a function: `{generator}` generated {other}"
                )))
            }
        }
        let entry = PortableValue::extract(&result)
            .map_err(|e| Error::Artifact(format!("cannot extract `{generator}`: {e}")))?;
        Ok(CompiledFilter::new(
            entry,
            self.options.clone(),
            source_fingerprint,
        ))
    }

    /// Renders a machine value with this session's datatype names.
    pub fn render(&self, v: &Value) -> String {
        render_machine(v, &self.elab.data)
    }
}

fn decl_name(cd: &CoreDecl) -> Option<String> {
    match cd {
        CoreDecl::Val(n, _) | CoreDecl::Cogen(n, _) => Some(n.text().to_string()),
        CoreDecl::Fun(defs) => defs.last().map(|d| d.name.text().to_string()),
        CoreDecl::Expr(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_loads_prelude() {
        let mut s = Session::new().unwrap();
        let out = s.eval_expr("eval (lift 42)").unwrap();
        assert_eq!(out.value, "42");
        assert_eq!(out.ty, "int");
    }

    #[test]
    fn prelude_list_functions() {
        let mut s = Session::new().unwrap();
        assert_eq!(
            s.eval_expr("map (fn x => x * 2) [1, 2, 3]").unwrap().value,
            "[2, 4, 6]"
        );
        assert_eq!(s.eval_expr("rev [1, 2, 3]").unwrap().value, "[3, 2, 1]");
        assert_eq!(s.eval_expr("listLength [1, 2, 3]").unwrap().value, "3");
        assert_eq!(
            s.eval_expr("append ([1], [2, 3])").unwrap().value,
            "[1, 2, 3]"
        );
    }

    #[test]
    fn prelude_tables_memoize() {
        let mut s = Session::new().unwrap();
        s.run("val t = newTable ()").unwrap();
        assert_eq!(s.eval_expr("lookup (t, 3)").unwrap().value, "NONE");
        s.run("add (t, (3, 99))").unwrap();
        assert_eq!(s.eval_expr("lookup (t, 3)").unwrap().value, "SOME 99");
    }

    #[test]
    fn outcome_stats_are_per_declaration() {
        let mut s = Session::new().unwrap();
        let o1 = s.eval_expr("1 + 1").unwrap();
        let o2 = s.eval_expr("1 + 1").unwrap();
        assert_eq!(o1.stats.steps, o2.stats.steps);
        assert!(o1.stats.steps > 0);
    }

    #[test]
    fn staging_error_is_reported_with_source() {
        let mut s = Session::new().unwrap();
        let err = s.eval_expr("fn y => code (fn x => x + y)").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("earlier stage") || msg.contains("not in scope"),
            "{msg}"
        );
    }

    #[test]
    fn call_measures_a_single_application() {
        let mut s = Session::new().unwrap();
        s.run("fun double x = x * 2").unwrap();
        let (v, stats) = s.call("double", Value::Int(21)).unwrap();
        assert_eq!(v.to_string(), "42");
        assert!(stats.steps > 0 && stats.steps < 50);
    }

    #[test]
    fn generation_shows_in_stats() {
        let mut s = Session::new().unwrap();
        s.run("val g = code (fn x => x + 1)").unwrap();
        let out = s.eval_expr("eval g 1").unwrap();
        assert_eq!(out.value, "2");
        assert!(out.stats.emitted > 0, "invoking a generator emits code");
        assert!(out.stats.calls > 0);
    }

    #[test]
    fn fuel_option_limits_steps() {
        let mut s = Session::with_options(SessionOptions {
            fuel: Some(2_000),
            ..SessionOptions::default()
        })
        .unwrap();
        let err = s.run("fun loop n = loop n;\nloop 0").unwrap_err();
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn freeze_counters_flow_through_session_stats() {
        let mut s = Session::new().unwrap();
        s.run("val g = code (fn x => x + 1)").unwrap();
        let out = s.eval_expr("eval g 1").unwrap();
        assert_eq!(out.value, "2");
        assert!(out.stats.freezes > 0, "splicing freezes generated code");
        // Repeating the splice freezes fresh arenas (eval builds a new
        // arena per splice), so the per-outcome counters stay stable.
        let again = s.eval_expr("eval g 1").unwrap();
        assert_eq!(again.stats.freezes, out.stats.freezes);
        assert_eq!(again.stats.steps, out.stats.steps);
    }

    #[test]
    fn opcode_counting_is_an_option() {
        let mut s = Session::with_options(SessionOptions {
            count_opcodes: true,
            ..SessionOptions::default()
        })
        .unwrap();
        assert!(Session::new().unwrap().stats().opcodes.is_none());
        let out = s.eval_expr("1 + 2").unwrap();
        let counts = out.stats.opcodes.expect("enabled by the option");
        assert!(counts.get("prim") > 0, "the addition shows up");
        assert_eq!(
            counts.nonzero().map(|(_, c)| c).sum::<u64>(),
            out.stats.steps,
            "per-opcode counts partition the per-declaration steps"
        );
    }

    #[test]
    fn indexed_env_agrees_and_is_no_slower() {
        let run_mode = |indexed: bool| {
            let mut s = Session::with_options(SessionOptions {
                indexed_env: indexed,
                ..SessionOptions::default()
            })
            .unwrap();
            s.run("fun compPoly p = case p of nil => code (fn x => 0) | a :: p' => let cogen f = compPoly p' cogen a' = lift a in code (fn x => a' + (x * f x)) end\nval f = eval (compPoly [2, 4, 0, 2333])").unwrap();
            let out = s.eval_expr("f 47").unwrap();
            (out.value, out.stats.steps)
        };
        let (v_spine, s_spine) = run_mode(false);
        let (v_idx, s_idx) = run_mode(true);
        assert_eq!(v_spine, v_idx);
        assert!(s_idx <= s_spine, "indexed env took more steps");
    }

    #[test]
    fn flat_env_agrees_with_both_spine_modes_and_matches_indexed_steps() {
        let run_mode = |opts: SessionOptions| {
            let mut s = Session::with_options(opts).unwrap();
            s.run("fun compPoly p = case p of nil => code (fn x => 0) | a :: p' => let cogen f = compPoly p' cogen a' = lift a in code (fn x => a' + (x * f x)) end\nval f = eval (compPoly [2, 4, 0, 2333])").unwrap();
            let out = s.eval_expr("f 47").unwrap();
            (out.value, out.stats.steps)
        };
        let (v_spine, _) = run_mode(SessionOptions::default());
        let (v_idx, s_idx) = run_mode(SessionOptions {
            indexed_env: true,
            ..SessionOptions::default()
        });
        let (v_flat, s_flat) = run_mode(SessionOptions {
            flat_env: true,
            ..SessionOptions::default()
        });
        assert_eq!(v_spine, v_flat);
        assert_eq!(v_idx, v_flat);
        assert_eq!(
            s_flat, s_idx,
            "flat mode renders the same access paths as indexed mode"
        );
    }

    #[test]
    fn flat_env_wins_over_indexed_env() {
        // Both flags set: the session compiles in flat mode, so the
        // environment really is frame-backed (the declaration's bound
        // value still projects correctly via env_snd).
        let mut s = Session::with_options(SessionOptions {
            indexed_env: true,
            flat_env: true,
            count_opcodes: true,
            ..SessionOptions::default()
        })
        .unwrap();
        let outs = s.run("val x = 41;\nx + 1").unwrap();
        assert_eq!(outs[0].value, "41");
        assert_eq!(outs[1].value, "42");
        let counts = outs[0].stats.opcodes.expect("enabled");
        assert!(
            counts.get("env_cons") > 0,
            "a flat-mode `val` extends the environment with env_cons"
        );
    }

    #[test]
    fn indexed_env_executes_acc() {
        let mut s = Session::with_options(SessionOptions {
            indexed_env: true,
            count_opcodes: true,
            ..SessionOptions::default()
        })
        .unwrap();
        let out = s
            .eval_expr("let val a = 1 val b = 2 val c = 3 in a + b + c end")
            .unwrap();
        let counts = out.stats.opcodes.expect("enabled by the option");
        assert!(counts.get("acc") > 0, "indexed accesses run as acc");
    }

    #[test]
    fn print_output_is_captured() {
        let mut s = Session::new().unwrap();
        s.run("print \"hi \"; print \"there\"").unwrap();
        assert_eq!(s.take_output(), "hi there");
    }

    #[test]
    fn constructor_tag_lookup() {
        let mut s = Session::new().unwrap();
        s.run("datatype t = Alpha | Beta of int").unwrap();
        assert!(s.constructor_tag("Alpha").is_some());
        assert!(s.constructor_tag("Beta").is_some());
        assert!(s.constructor_tag("Gamma").is_none());
    }

    #[test]
    fn options_fingerprint_separates_every_mode() {
        let base = SessionOptions::default();
        let fp = |o: &SessionOptions| o.fingerprint();
        assert_eq!(fp(&base), fp(&base.clone()), "fingerprint is stable");
        let mut optimize = base.clone();
        optimize.optimize = true;
        assert_ne!(fp(&base), fp(&optimize), "optimize must change the key");
        let mut indexed = base.clone();
        indexed.indexed_env = true;
        assert_ne!(fp(&base), fp(&indexed), "indexed_env must change the key");
        let mut counted = base.clone();
        counted.count_opcodes = true;
        assert_ne!(fp(&base), fp(&counted), "count_opcodes must change the key");
        let mut fused = base.clone();
        fused.fuse = true;
        assert_ne!(fp(&base), fp(&fused), "fuse must change the key");
        let mut flat = base.clone();
        flat.flat_env = true;
        assert_ne!(fp(&base), fp(&flat), "flat_env must change the key");
        let mut native = base.clone();
        native.native = true;
        assert_ne!(fp(&base), fp(&native), "native must change the key");
        // The six non-default modes are also pairwise distinct.
        let modes = [&optimize, &indexed, &counted, &fused, &flat, &native];
        for (i, a) in modes.iter().enumerate() {
            for b in &modes[i + 1..] {
                assert_ne!(fp(a), fp(b));
            }
        }
    }

    #[test]
    fn native_tier_agrees_with_the_interpreter_end_to_end() {
        let run_mode = |native: bool| {
            let mut s = Session::with_options(SessionOptions {
                native,
                ..SessionOptions::default()
            })
            .unwrap();
            s.run("fun compPoly p = case p of nil => code (fn x => 0) | a :: p' => let cogen f = compPoly p' cogen a' = lift a in code (fn x => a' + (x * f x)) end\nval f = eval (compPoly [2, 4, 0, 2333])").unwrap();
            let out = s.eval_expr("f 47").unwrap();
            (out.value, out.stats.steps)
        };
        let (v_interp, s_interp) = run_mode(false);
        let (v_native, s_native) = run_mode(true);
        assert_eq!(v_interp, v_native);
        assert_eq!(
            s_interp, s_native,
            "thread-coded execution must not change the step count"
        );
    }

    #[test]
    fn fuse_agrees_and_takes_fewer_steps() {
        let run_mode = |fuse: bool| {
            let mut s = Session::with_options(SessionOptions {
                fuse,
                ..SessionOptions::default()
            })
            .unwrap();
            s.run("fun compPoly p = case p of nil => code (fn x => 0) | a :: p' => let cogen f = compPoly p' cogen a' = lift a in code (fn x => a' + (x * f x)) end\nval f = eval (compPoly [2, 4, 0, 2333])").unwrap();
            let out = s.eval_expr("f 47").unwrap();
            (out.value, out.stats.steps, out.stats.fused)
        };
        let (v_plain, s_plain, f_plain) = run_mode(false);
        let (v_fused, s_fused, f_fused) = run_mode(true);
        assert_eq!(v_plain, v_fused);
        assert_eq!(f_plain, 0, "default mode dispatches no fused opcodes");
        assert!(f_fused > 0, "generated code was fused at freeze time");
        assert!(s_fused < s_plain, "fusion must drop the step count");
    }

    #[test]
    fn fuse_dispatches_fused_opcodes_in_static_code() {
        let mut s = Session::with_options(SessionOptions {
            fuse: true,
            count_opcodes: true,
            ..SessionOptions::default()
        })
        .unwrap();
        let out = s.eval_expr("1 + 2").unwrap();
        let counts = out.stats.opcodes.expect("enabled by the option");
        assert!(
            counts.get("quote_cons") > 0 || counts.get("push_quote") > 0,
            "static code runs fused: {:?}",
            counts.nonzero().collect::<Vec<_>>()
        );
        assert!(out.stats.fused > 0);
    }

    #[test]
    fn reset_stats_zeroes_the_counters() {
        let mut s = Session::new().unwrap();
        s.eval_expr("1 + 1").unwrap();
        assert!(s.stats().steps > 0);
        s.reset_stats();
        assert_eq!(s.stats().steps, 0);
        // The session still works afterwards, and measurements restart.
        let out = s.eval_expr("2 + 2").unwrap();
        assert_eq!(out.value, "4");
        assert_eq!(s.stats().steps, out.stats.steps);
    }

    fn adaptive_options(policy: TierPolicy) -> SessionOptions {
        SessionOptions {
            adaptive: Some(policy),
            ..SessionOptions::default()
        }
    }

    #[test]
    fn profile_classifies_the_option_axes() {
        assert_eq!(SessionOptions::default().profile(), ExecProfile::Paper);
        let fused = SessionOptions {
            fuse: true,
            native: true,
            ..SessionOptions::default()
        };
        assert_eq!(
            fused.profile(),
            ExecProfile::Static(ExecFlags {
                optimize: false,
                fuse: true,
                native: true,
            })
        );
        let policy = TierPolicy::default();
        let adaptive = adaptive_options(policy);
        assert_eq!(adaptive.profile(), ExecProfile::Adaptive(policy));
        // with_profile is the inverse of profile, and set_profile leaves
        // the semantic axes alone.
        for p in [ExecProfile::Paper, fused.profile(), adaptive.profile()] {
            assert_eq!(SessionOptions::with_profile(p).profile(), p);
        }
        let mut o = SessionOptions {
            flat_env: true,
            fuel: Some(99),
            ..SessionOptions::default()
        };
        o.set_profile(ExecProfile::Adaptive(policy));
        assert!(o.flat_env && o.fuel == Some(99));
        o.set_profile(ExecProfile::Paper);
        assert_eq!(o.adaptive, None);
        assert!(o.flat_env && o.fuel == Some(99));
    }

    #[test]
    fn adaptive_rejects_static_tier_flags() {
        let mut o = adaptive_options(TierPolicy::default());
        o.fuse = true;
        let err = Session::with_options(o).unwrap_err();
        assert!(matches!(err, Error::Options(_)), "{err}");
    }

    #[test]
    fn adaptive_fingerprint_extends_without_disturbing_static_keys() {
        let paper = SessionOptions::default();
        let adaptive = adaptive_options(TierPolicy::default());
        assert_ne!(paper.fingerprint(), adaptive.fingerprint());
        let eager = adaptive_options(TierPolicy {
            promote_after: 0,
            ..TierPolicy::default()
        });
        assert_ne!(adaptive.fingerprint(), eager.fingerprint());
        // The golden lockfiles pin the exact Paper fingerprint through
        // the wire tests; here we just check adaptive is a pure
        // extension: clearing it restores the static key.
        let mut cleared = adaptive.clone();
        cleared.adaptive = None;
        assert_eq!(paper.fingerprint(), cleared.fingerprint());
    }

    #[test]
    fn adaptive_profile_matches_paper_steps_and_verdicts() {
        let run_profile = |options: SessionOptions| {
            let mut s = Session::with_options(options).unwrap();
            s.run("fun compPoly p = case p of nil => code (fn x => 0) | a :: p' => let cogen f = compPoly p' cogen a' = lift a in code (fn x => a' + (x * f x)) end\nval f = eval (compPoly [2, 4, 0, 2333])").unwrap();
            let mut steps = Vec::new();
            let mut values = Vec::new();
            for _ in 0..10 {
                let out = s.eval_expr("f 47").unwrap();
                values.push(out.value);
                steps.push(out.stats.steps);
            }
            (values, steps, s.stats())
        };
        let (v_paper, s_paper, _) = run_profile(SessionOptions::default());
        for promote_after in [0, 1, 8] {
            let (v_ad, s_ad, total) = run_profile(adaptive_options(TierPolicy {
                promote_after,
                ..TierPolicy::default()
            }));
            assert_eq!(v_paper, v_ad, "promote_after {promote_after}");
            assert_eq!(
                s_paper, s_ad,
                "promotion must be invisible in per-call steps (promote_after {promote_after})"
            );
            assert!(
                total.promotions > 0,
                "the hot filter was promoted (promote_after {promote_after}): {total:?}"
            );
            assert_eq!(
                total.tier_steps.iter().sum::<u64>(),
                total.steps,
                "tier steps partition the session total"
            );
        }
    }

    #[test]
    fn adaptive_works_in_flat_env_mode_too() {
        let run = |adaptive: Option<TierPolicy>| {
            let mut s = Session::with_options(SessionOptions {
                flat_env: true,
                adaptive,
                ..SessionOptions::default()
            })
            .unwrap();
            s.run("fun compPoly p = case p of nil => code (fn x => 0) | a :: p' => let cogen f = compPoly p' cogen a' = lift a in code (fn x => a' + (x * f x)) end\nval f = eval (compPoly [2, 4, 0, 2333])").unwrap();
            let out = s.eval_expr("f 47").unwrap();
            let out2 = s.eval_expr("f 47").unwrap();
            assert_eq!(out.stats.steps, out2.stats.steps);
            (out.value, out.stats.steps)
        };
        let (v_flat, s_flat) = run(None);
        let (v_ad, s_ad) = run(Some(TierPolicy {
            promote_after: 1,
            ..TierPolicy::default()
        }));
        assert_eq!(v_flat, v_ad);
        assert_eq!(s_flat, s_ad, "indexed-unit charging matches flat mode");
    }

    #[test]
    fn types_are_reported() {
        let mut s = Session::new().unwrap();
        let outs = s
            .run("fun compPoly p = case p of nil => code (fn x => 0) | a :: p' => let cogen f = compPoly p' cogen a' = lift a in code (fn x => a' + (x * f x)) end")
            .unwrap();
        assert_eq!(outs[0].ty, "int list -> (int -> int) $");
    }
}
