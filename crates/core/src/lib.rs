//! **MLbox** — typed run-time code generation for ML with modal types.
//!
//! A from-scratch Rust reproduction of *Run-time Code Generation and
//! Modal-ML* (Philip Wickline, Peter Lee, Frank Pfenning; PLDI 1998 /
//! CMU-CS-98-100): an SML dialect with the modal staging operators of λ□
//! (Davies–Pfenning), compiled to the **CCAM** — a Categorical Abstract
//! Machine extended with run-time code generation — so that staging
//! annotations become genuinely specialized machine code at run time.
//!
//! The language adds to core SML:
//!
//! - the type `A $` (the paper's `□A`): *generators* for code of type `A`;
//! - `code e` — build a generator for `e` (no free value variables may
//!   occur in `e`: the type checker enforces the staging discipline);
//! - `lift e` — evaluate `e` now, produce a generator that quotes it;
//! - `let cogen u = e in ... end` — bind a *code variable*; using `u` in
//!   ordinary position triggers code generation.
//!
//! # Quick start
//!
//! ```
//! use mlbox::Session;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut session = Session::new()?;
//!
//! // Stage the paper's polynomial evaluator (§3.1):
//! session.run(mlbox::programs::EVAL_POLY)?;
//! session.run(mlbox::programs::COMP_POLY)?;
//!
//! // The generated function computes the polynomial directly...
//! let staged = session.eval_expr("mlPolyFun 47")?;
//! // ...and takes far fewer CCAM reductions than interpreting the list:
//! let interp = session.eval_expr("evalPoly (47, polyl)")?;
//! assert_eq!(staged.value, interp.value);
//! assert!(staged.stats.steps * 2 < interp.stats.steps);
//! # Ok(())
//! # }
//! ```
//!
//! # Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`mlbox_syntax`] | lexer, parser, surface AST |
//! | [`mlbox_ir`] | core IR, elaboration, pattern-match compilation |
//! | [`mlbox_types`] | modal Hindley–Milner type checker (Figure 2) |
//! | [`ccam`] | the abstract machine with `emit`/`lift`/`arena`/`merge`/`call` (Figure 3) |
//! | [`mlbox_compile`] | the two compilation relations (Figure 4) |
//! | [`mlbox_eval`] | reference staged interpreter (the semantics oracle) |
//! | `mlbox` (this crate) | the pipeline, prelude, and the paper's programs |

pub mod artifact;
pub mod differential;
pub mod error;
pub mod fingerprint;
pub mod prelude;
pub mod programs;
pub mod render;
pub mod session;
pub mod wire;

pub use artifact::{CompiledFilter, FilterInstance};
pub use ccam::machine::TierPolicy;
pub use error::Error;
pub use mlbox_compile::ctx::EnvMode;
pub use render::{render_eval, render_machine};
pub use session::{ExecFlags, ExecProfile, Outcome, Session, SessionOptions};

/// Runs `f` on a thread with a large stack (the reference interpreter and
/// the compiler recurse on the Rust stack; deeply staged or deeply nested
/// programs need more than the default).
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn with_big_stack<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(256 * 1024 * 1024)
            .spawn_scoped(scope, f)
            .expect("spawn big-stack thread")
            .join()
            .expect("big-stack thread panicked")
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn with_big_stack_runs_deep_recursion() {
        fn depth(n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                1 + depth(n - 1)
            }
        }
        let d = super::with_big_stack(|| depth(1_000_000));
        assert_eq!(d, 1_000_000);
    }
}
