//! The crate-level error type.

use ccam::machine::MachineError;
use mlbox_eval::EvalError;
use mlbox_syntax::diag::Diagnostic;
use std::fmt;

/// Any failure in the MLbox pipeline.
#[derive(Debug)]
pub enum Error {
    /// A static error (lex, parse, elaborate, type check, compile), with
    /// the source it arose in for rendering.
    Static {
        /// The diagnostic.
        diag: Diagnostic,
        /// The source buffer the diagnostic's span refers to.
        src: String,
    },
    /// A CCAM run-time error.
    Machine(MachineError),
    /// A reference-interpreter run-time error.
    Eval(EvalError),
    /// A value could not be packaged as a thread-shareable compiled
    /// artifact (not a function, or captures mutable state).
    Artifact(String),
    /// A persisted artifact container failed to parse (truncated,
    /// corrupt, wrong version, …).
    Wire(crate::wire::WireError),
    /// A [`SessionOptions`](crate::session::SessionOptions) combination
    /// is invalid (e.g. an adaptive tier policy together with static
    /// tiering flags).
    Options(String),
}

impl Error {
    /// The diagnostic, if this is a static error.
    pub fn diagnostic(&self) -> Option<&Diagnostic> {
        match self {
            Error::Static { diag, .. } => Some(diag),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Static { diag, src } => f.write_str(&diag.render(src)),
            Error::Machine(e) => write!(f, "machine error: {e}"),
            Error::Eval(e) => write!(f, "evaluation error: {e}"),
            Error::Artifact(msg) => write!(f, "artifact error: {msg}"),
            Error::Wire(e) => write!(f, "artifact wire error: {e}"),
            Error::Options(msg) => write!(f, "invalid session options: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Static { diag, .. } => Some(diag),
            Error::Machine(e) => Some(e),
            Error::Eval(e) => Some(e),
            Error::Artifact(_) | Error::Options(_) => None,
            Error::Wire(e) => Some(e),
        }
    }
}

impl From<crate::wire::WireError> for Error {
    fn from(e: crate::wire::WireError) -> Self {
        Error::Wire(e)
    }
}

impl From<MachineError> for Error {
    fn from(e: MachineError) -> Self {
        Error::Machine(e)
    }
}

impl From<EvalError> for Error {
    fn from(e: EvalError) -> Self {
        Error::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlbox_syntax::diag::Phase;
    use mlbox_syntax::span::Span;

    #[test]
    fn display_renders_static_errors_with_source() {
        let e = Error::Static {
            diag: Diagnostic::new(Phase::Type, "type mismatch", Span::new(0, 3)),
            src: "foo bar".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("type mismatch"));
        assert!(s.contains("foo bar"));
    }

    #[test]
    fn machine_errors_convert() {
        let e: Error = MachineError::DivideByZero.into();
        assert!(e.to_string().contains("zero"));
    }
}
