//! Differential testing support: run the same program through the CCAM
//! compiler *and* the reference λ□ interpreter and compare rendered
//! results. The compiled machine must agree with the staged big-step
//! semantics on every observable value — this is how the reconstructed
//! Figure 3/Figure 4 rules are validated (DESIGN.md §3).

use crate::error::Error;
use crate::prelude::PRELUDE;
use crate::render::{render_eval, render_machine};
use ccam::machine::Machine;
use ccam::value::Value;
use mlbox_compile::compile::compile_program_with;
use mlbox_compile::ctx::EnvMode;
use mlbox_eval::Interp;
use mlbox_ir::elab::Elab;
use mlbox_syntax::parser::parse_program;
use mlbox_types::check::{Checker, TypeCtx};

/// The two rendered results of a differential run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BothResults {
    /// Rendered result from the compiled CCAM run.
    pub machine: String,
    /// Rendered result from the reference interpreter.
    pub interp: String,
    /// `print` output from the machine.
    pub machine_output: String,
    /// `print` output from the interpreter.
    pub interp_output: String,
}

impl BothResults {
    /// Whether both back ends agree on value and output.
    pub fn agree(&self) -> bool {
        self.machine == self.interp && self.machine_output == self.interp_output
    }
}

/// Runs `src` (prefixed with the prelude when `with_prelude`) through
/// both back ends.
///
/// # Errors
///
/// Returns the first static error, or a dynamic error from either back
/// end. A dynamic error on *both* back ends is not distinguished here;
/// use the individual crates to compare failure behaviour.
pub fn run_both(src: &str, with_prelude: bool) -> Result<BothResults, Error> {
    run_both_with(src, with_prelude, EnvMode::default())
}

/// [`run_both`] with an explicit environment-access mode for the CCAM
/// side (the interpreter has no machine environment, so only the compiled
/// run is affected — agreement across modes is exactly what the
/// differential suite checks).
///
/// # Errors
///
/// As for [`run_both`].
pub fn run_both_with(src: &str, with_prelude: bool, mode: EnvMode) -> Result<BothResults, Error> {
    run_both_full(src, with_prelude, mode, false, false)
}

/// [`run_both_with`] with superinstruction fusion and/or the
/// thread-coded native tier optionally enabled on the CCAM side: with
/// `fuse`, the compiled entry block is rewritten by [`ccam::opt::fuse`]
/// and the machine freezes generated code through the fused slot,
/// exactly as a fused [`Session`](crate::Session) would; with `native`,
/// every block executes through pre-decoded op closures instead of the
/// decode-and-match interpreter. Together with [`EnvMode`] this spans
/// the full 3×2×2 execution-mode matrix the differential suite checks.
///
/// # Errors
///
/// As for [`run_both`].
pub fn run_both_full(
    src: &str,
    with_prelude: bool,
    mode: EnvMode,
    fuse: bool,
    native: bool,
) -> Result<BothResults, Error> {
    let full = if with_prelude {
        format!("{PRELUDE};\n{src}")
    } else {
        src.to_string()
    };
    let program = parse_program(&full).map_err(|diag| Error::Static {
        diag,
        src: full.clone(),
    })?;
    let mut elab = Elab::new();
    let decls = elab.elab_program(&program).map_err(|diag| Error::Static {
        diag,
        src: full.clone(),
    })?;
    // Type check (so both runs are on well-typed programs only).
    let mut checker = Checker::new();
    for d in &decls {
        let tcx = TypeCtx {
            data: &elab.data,
            abbrevs: &elab.abbrevs,
        };
        checker.check_decl(d, tcx).map_err(|diag| Error::Static {
            diag,
            src: full.clone(),
        })?;
    }
    // CCAM.
    let mut code = compile_program_with(&decls, mode).map_err(|diag| Error::Static {
        diag,
        src: full.clone(),
    })?;
    let mut machine = Machine::new();
    if fuse {
        code.block = ccam::opt::fuse_block(&code.seg, code.block);
        machine.set_fuse(true);
    }
    machine.set_native(native);
    let m_val = machine.run(code, Value::Unit)?;
    // Interpreter.
    let mut interp = Interp::new();
    let i_val = interp.eval_decls(&decls)?;
    Ok(BothResults {
        machine: render_machine(&m_val, &elab.data),
        interp: render_eval(&i_val, &elab.data),
        machine_output: machine.take_output(),
        interp_output: interp.take_output(),
    })
}

/// Asserts both back ends agree; returns the shared rendering.
///
/// # Panics
///
/// Panics (with both renderings) when they disagree — used in tests.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn assert_agree(src: &str) -> Result<String, Error> {
    let r = run_both(src, true)?;
    assert!(
        r.agree(),
        "backend disagreement on:\n{src}\n machine: {} (out {:?})\n interp:  {} (out {:?})",
        r.machine,
        r.machine_output,
        r.interp,
        r.interp_output
    );
    Ok(r.machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_on_basics() {
        for src in [
            "1 + 2 * 3",
            "let val x = 4 in x * x end",
            "map (fn x => x + 1) [1, 2, 3]",
            "eval (lift 42)",
            "eval (code (fn x => x * 3)) 5",
        ] {
            assert_agree(src).unwrap();
        }
    }

    #[test]
    fn backends_agree_on_staged_programs() {
        let src = "\
fun compPoly p =
  case p of nil => code (fn x => 0)
  | a :: r => let cogen f = compPoly r cogen a' = lift a
              in code (fn x => a' + (x * f x)) end;
eval (compPoly [1, 2, 3]) 10";
        assert_eq!(assert_agree(src).unwrap(), "321");
    }

    #[test]
    fn backends_agree_in_indexed_mode() {
        for src in [
            "let val x = 4 in x * x end",
            "eval (code (fn x => x * 3)) 5",
        ] {
            let r = run_both_with(src, true, EnvMode::Indexed).unwrap();
            assert!(r.agree(), "indexed-mode disagreement on {src}: {r:?}");
        }
    }

    #[test]
    fn backends_agree_in_fused_mode() {
        for src in [
            "let val x = 4 in x * x end",
            "eval (code (fn x => x * 3)) 5",
        ] {
            for mode in [EnvMode::PairSpine, EnvMode::Indexed, EnvMode::Flat] {
                let r = run_both_full(src, true, mode, true, false).unwrap();
                assert!(r.agree(), "fused {mode:?} disagreement on {src}: {r:?}");
            }
        }
    }

    #[test]
    fn backends_agree_in_native_mode() {
        for src in [
            "let val x = 4 in x * x end",
            "eval (code (fn x => x * 3)) 5",
        ] {
            for mode in [EnvMode::PairSpine, EnvMode::Indexed, EnvMode::Flat] {
                let r = run_both_full(src, true, mode, false, true).unwrap();
                assert!(r.agree(), "native {mode:?} disagreement on {src}: {r:?}");
            }
        }
    }

    #[test]
    fn backends_agree_in_flat_mode() {
        for src in [
            "let val x = 4 in x * x end",
            "eval (code (fn x => x * 3)) 5",
        ] {
            let r = run_both_with(src, true, EnvMode::Flat).unwrap();
            assert!(r.agree(), "flat-mode disagreement on {src}: {r:?}");
        }
    }

    #[test]
    fn backends_agree_on_effects() {
        assert_agree("val r = ref 0 val u = (r := !r + 5); !r * 2").unwrap();
        assert_agree("print \"x\"; print \"y\"; 0").unwrap();
    }
}
