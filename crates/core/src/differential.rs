//! Differential testing support: run the same program through the CCAM
//! compiler *and* the reference λ□ interpreter and compare rendered
//! results. The compiled machine must agree with the staged big-step
//! semantics on every observable value — this is how the reconstructed
//! Figure 3/Figure 4 rules are validated (DESIGN.md §3).

use crate::error::Error;
use crate::prelude::PRELUDE;
use crate::render::{render_eval, render_machine};
use ccam::machine::{Machine, TierPolicy};
use ccam::value::Value;
use mlbox_compile::compile::compile_program_with;
use mlbox_compile::ctx::EnvMode;
use mlbox_eval::Interp;
use mlbox_ir::elab::Elab;
use mlbox_syntax::parser::parse_program;
use mlbox_types::check::{Checker, TypeCtx};

/// The two rendered results of a differential run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BothResults {
    /// Rendered result from the compiled CCAM run.
    pub machine: String,
    /// Rendered result from the reference interpreter.
    pub interp: String,
    /// `print` output from the machine.
    pub machine_output: String,
    /// `print` output from the interpreter.
    pub interp_output: String,
}

impl BothResults {
    /// Whether both back ends agree on value and output.
    pub fn agree(&self) -> bool {
        self.machine == self.interp && self.machine_output == self.interp_output
    }
}

/// Runs `src` (prefixed with the prelude when `with_prelude`) through
/// both back ends.
///
/// # Errors
///
/// Returns the first static error, or a dynamic error from either back
/// end. A dynamic error on *both* back ends is not distinguished here;
/// use the individual crates to compare failure behaviour.
pub fn run_both(src: &str, with_prelude: bool) -> Result<BothResults, Error> {
    run_both_with(src, with_prelude, EnvMode::default())
}

/// [`run_both`] with an explicit environment-access mode for the CCAM
/// side (the interpreter has no machine environment, so only the compiled
/// run is affected — agreement across modes is exactly what the
/// differential suite checks).
///
/// # Errors
///
/// As for [`run_both`].
pub fn run_both_with(src: &str, with_prelude: bool, mode: EnvMode) -> Result<BothResults, Error> {
    run_both_full(src, with_prelude, mode, false, false)
}

/// [`run_both_with`] with superinstruction fusion and/or the
/// thread-coded native tier optionally enabled on the CCAM side: with
/// `fuse`, the compiled entry block is rewritten by [`ccam::opt::fuse`]
/// and the machine freezes generated code through the fused slot,
/// exactly as a fused [`Session`](crate::Session) would; with `native`,
/// every block executes through pre-decoded op closures instead of the
/// decode-and-match interpreter. Together with [`EnvMode`] this spans
/// the full 3×2×2 execution-mode matrix the differential suite checks.
///
/// # Errors
///
/// As for [`run_both`].
pub fn run_both_full(
    src: &str,
    with_prelude: bool,
    mode: EnvMode,
    fuse: bool,
    native: bool,
) -> Result<BothResults, Error> {
    let full = if with_prelude {
        format!("{PRELUDE};\n{src}")
    } else {
        src.to_string()
    };
    let program = parse_program(&full).map_err(|diag| Error::Static {
        diag,
        src: full.clone(),
    })?;
    let mut elab = Elab::new();
    let decls = elab.elab_program(&program).map_err(|diag| Error::Static {
        diag,
        src: full.clone(),
    })?;
    // Type check (so both runs are on well-typed programs only).
    let mut checker = Checker::new();
    for d in &decls {
        let tcx = TypeCtx {
            data: &elab.data,
            abbrevs: &elab.abbrevs,
        };
        checker.check_decl(d, tcx).map_err(|diag| Error::Static {
            diag,
            src: full.clone(),
        })?;
    }
    // CCAM.
    let mut code = compile_program_with(&decls, mode).map_err(|diag| Error::Static {
        diag,
        src: full.clone(),
    })?;
    let mut machine = Machine::new();
    if fuse {
        code.block = ccam::opt::fuse_block(&code.seg, code.block);
        machine.set_fuse(true);
    }
    machine.set_native(native);
    let m_val = machine.run(code, Value::Unit)?;
    // Interpreter.
    let mut interp = Interp::new();
    let i_val = interp.eval_decls(&decls)?;
    Ok(BothResults {
        machine: render_machine(&m_val, &elab.data),
        interp: render_eval(&i_val, &elab.data),
        machine_output: machine.take_output(),
        interp_output: interp.take_output(),
    })
}

/// The `Adaptive` column of the differential suite (DESIGN.md §15):
/// compiles `src` once, runs it under a Paper-profile machine and under
/// an adaptive machine with `policy`, and asserts the verdict, `print`
/// output, and step count are byte-identical; then replays both under a
/// sweep of fuel budgets up to the full run, asserting the
/// fuel-exhaustion behavior (abort vs success, error value, and counted
/// steps at the abort point) agrees at every tested budget. Tier state
/// persists on the shared segment across the sweep, so parity is
/// checked before, during, and after promotion.
///
/// # Errors
///
/// Returns the first static error; dynamic disagreement panics with the
/// divergent pair (this is a test-suite primitive).
///
/// # Panics
///
/// Panics when any observable differs between the two profiles.
pub fn assert_adaptive_parity(
    src: &str,
    with_prelude: bool,
    mode: EnvMode,
    policy: TierPolicy,
) -> Result<(), Error> {
    let full = if with_prelude {
        format!("{PRELUDE};\n{src}")
    } else {
        src.to_string()
    };
    let program = parse_program(&full).map_err(|diag| Error::Static {
        diag,
        src: full.clone(),
    })?;
    let mut elab = Elab::new();
    let decls = elab.elab_program(&program).map_err(|diag| Error::Static {
        diag,
        src: full.clone(),
    })?;
    let code = compile_program_with(&decls, mode).map_err(|diag| Error::Static {
        diag,
        src: full.clone(),
    })?;
    // Step charges follow the cost model the compiler targeted.
    let spine_units = matches!(mode, EnvMode::PairSpine);
    let run = |fuel: Option<u64>, adaptive: bool| {
        let mut m = match fuel {
            Some(f) => Machine::with_fuel(f),
            None => Machine::new(),
        };
        if adaptive {
            m.set_tier_policy(Some(policy), spine_units);
        }
        let r = m.run(code.clone(), Value::Unit);
        let rendered = r.map(|v| render_machine(&v, &elab.data));
        (rendered, m.take_output(), m.stats())
    };
    let (v_paper, out_paper, s_paper) = run(None, false);
    let (v_ad, out_ad, s_ad) = run(None, true);
    assert_eq!(v_paper, v_ad, "verdict diverged on:\n{src}");
    assert_eq!(out_paper, out_ad, "output diverged on:\n{src}");
    assert_eq!(
        s_paper.steps, s_ad.steps,
        "step count diverged on:\n{src}\n paper: {s_paper:?}\n adaptive: {s_ad:?}"
    );
    // Fuel sweep: every budget for short runs, a boundary-heavy sample
    // for long ones (the interesting budgets are where a fused dispatch
    // straddles the limit, which the dense head and tail cover; the
    // strided middle keeps long preludes affordable).
    let total = s_paper.steps;
    let budgets: Vec<u64> = if total <= 256 {
        (0..total).collect()
    } else {
        let stride = ((total - 192) / 64).max(1) as usize;
        (0..128)
            .chain((128..total.saturating_sub(64)).step_by(stride))
            .chain(total.saturating_sub(64)..total)
            .collect()
    };
    for budget in budgets {
        let (v_p, out_p, s_p) = run(Some(budget), false);
        let (v_a, out_a, s_a) = run(Some(budget), true);
        assert_eq!(v_p, v_a, "budget {budget} verdict diverged on:\n{src}");
        assert_eq!(out_p, out_a, "budget {budget} output diverged on:\n{src}");
        assert_eq!(
            s_p.steps, s_a.steps,
            "budget {budget} abort point diverged on:\n{src}"
        );
    }
    Ok(())
}

/// Asserts both back ends agree; returns the shared rendering.
///
/// # Panics
///
/// Panics (with both renderings) when they disagree — used in tests.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn assert_agree(src: &str) -> Result<String, Error> {
    let r = run_both(src, true)?;
    assert!(
        r.agree(),
        "backend disagreement on:\n{src}\n machine: {} (out {:?})\n interp:  {} (out {:?})",
        r.machine,
        r.machine_output,
        r.interp,
        r.interp_output
    );
    Ok(r.machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_on_basics() {
        for src in [
            "1 + 2 * 3",
            "let val x = 4 in x * x end",
            "map (fn x => x + 1) [1, 2, 3]",
            "eval (lift 42)",
            "eval (code (fn x => x * 3)) 5",
        ] {
            assert_agree(src).unwrap();
        }
    }

    #[test]
    fn backends_agree_on_staged_programs() {
        let src = "\
fun compPoly p =
  case p of nil => code (fn x => 0)
  | a :: r => let cogen f = compPoly r cogen a' = lift a
              in code (fn x => a' + (x * f x)) end;
eval (compPoly [1, 2, 3]) 10";
        assert_eq!(assert_agree(src).unwrap(), "321");
    }

    #[test]
    fn backends_agree_in_indexed_mode() {
        for src in [
            "let val x = 4 in x * x end",
            "eval (code (fn x => x * 3)) 5",
        ] {
            let r = run_both_with(src, true, EnvMode::Indexed).unwrap();
            assert!(r.agree(), "indexed-mode disagreement on {src}: {r:?}");
        }
    }

    #[test]
    fn backends_agree_in_fused_mode() {
        for src in [
            "let val x = 4 in x * x end",
            "eval (code (fn x => x * 3)) 5",
        ] {
            for mode in [EnvMode::PairSpine, EnvMode::Indexed, EnvMode::Flat] {
                let r = run_both_full(src, true, mode, true, false).unwrap();
                assert!(r.agree(), "fused {mode:?} disagreement on {src}: {r:?}");
            }
        }
    }

    #[test]
    fn backends_agree_in_native_mode() {
        for src in [
            "let val x = 4 in x * x end",
            "eval (code (fn x => x * 3)) 5",
        ] {
            for mode in [EnvMode::PairSpine, EnvMode::Indexed, EnvMode::Flat] {
                let r = run_both_full(src, true, mode, false, true).unwrap();
                assert!(r.agree(), "native {mode:?} disagreement on {src}: {r:?}");
            }
        }
    }

    #[test]
    fn backends_agree_in_flat_mode() {
        for src in [
            "let val x = 4 in x * x end",
            "eval (code (fn x => x * 3)) 5",
        ] {
            let r = run_both_with(src, true, EnvMode::Flat).unwrap();
            assert!(r.agree(), "flat-mode disagreement on {src}: {r:?}");
        }
    }

    #[test]
    fn backends_agree_on_effects() {
        assert_agree("val r = ref 0 val u = (r := !r + 5); !r * 2").unwrap();
        assert_agree("print \"x\"; print \"y\"; 0").unwrap();
    }

    /// Every program the suite checks, with and without staging, in
    /// every env mode, at every tested promotion threshold: the
    /// adaptive profile must be observationally identical to Paper —
    /// verdicts, output, step counts, and fuel aborts.
    #[test]
    fn adaptive_column_matches_paper_at_every_threshold() {
        let programs = [
            ("1 + 2 * 3", false),
            ("let val x = 4 in x * x end", false),
            ("val r = ref 0 val u = (r := !r + 5); !r * 2", false),
            ("print \"x\"; print \"y\"; 0", false),
            ("eval (lift 42)", true),
            ("eval (code (fn x => x * 3)) 5", true),
            (
                "fun compPoly p =
                   case p of nil => code (fn x => 0)
                   | a :: r => let cogen f = compPoly r cogen a' = lift a
                               in code (fn x => a' + (x * f x)) end;
                 eval (compPoly [1, 2, 3]) 10",
                true,
            ),
        ];
        for promote_after in [0, 1, 64] {
            let policy = TierPolicy {
                promote_after,
                ..TierPolicy::default()
            };
            for (src, with_prelude) in programs {
                for mode in [EnvMode::PairSpine, EnvMode::Indexed, EnvMode::Flat] {
                    assert_adaptive_parity(src, with_prelude, mode, policy).unwrap();
                }
            }
        }
    }
}
