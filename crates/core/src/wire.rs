//! The on-disk artifact container: framing, versioning, and integrity
//! for [`CompiledFilter`].
//!
//! `ccam::wire` renders the *payload* — the portable segment and value
//! graph — as bytes. This module wraps that payload in the container a
//! serving system actually ships: a magic header, a format version, the
//! two fingerprints that make artifacts content-addressable (source
//! program and [`SessionOptions::fingerprint`]), length-prefixed
//! sections, and a trailing FNV-1a checksum over everything before it.
//! DESIGN.md §14 specifies the layout byte by byte:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----
//!      0     8  magic, the ASCII bytes "MLBXART\0"
//!      8     2  format version, u16 LE (currently 1)
//!     10     2  reserved, u16 LE (must be 0)
//!     12     8  source fingerprint, u64 LE
//!     20     8  options fingerprint, u64 LE
//!     28     4  options section length, u32 LE
//!     32     …  options section (SessionOptions fields, fixed order)
//!      …     4  payload section length, u32 LE
//!      …     …  payload section (ccam::wire::encode_value bytes)
//!   last     8  FNV-1a 64 checksum of every preceding byte, u64 LE
//! ```
//!
//! Decoding re-derives everything it can rather than trusting the
//! producer: the stored options fingerprint must equal the fingerprint
//! recomputed from the decoded options section, the payload's
//! `uses_frames` flag is recomputed by the payload decoder, and
//! [`CompiledFilter::from_wire_bytes_for`] applies
//! [`CompiledFilter::check_compatible`] so an option-incompatible
//! consumer is refused at load time, before any hydration.

use crate::artifact::CompiledFilter;
use crate::error::Error;
use crate::fingerprint::Fnv1a;
use crate::session::SessionOptions;
use ccam::machine::TierPolicy;
use std::fmt;

/// The leading magic bytes of every artifact file.
pub const MAGIC: [u8; 8] = *b"MLBXART\0";

/// The container format version this build writes and accepts.
pub const FORMAT_VERSION: u16 = 1;

/// Why a byte buffer is not a valid artifact container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// The leading bytes are not [`MAGIC`] — this is not an artifact.
    BadMagic,
    /// The container was written by an incompatible format version.
    UnsupportedVersion(u16),
    /// The trailing checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// A structurally invalid container (bad reserved field, malformed
    /// options section, section length overrun, …).
    Corrupt(&'static str),
    /// The stored options fingerprint disagrees with the fingerprint of
    /// the decoded options section.
    FingerprintMismatch {
        /// Fingerprint stored in the header.
        stored: u64,
        /// Fingerprint recomputed from the decoded options.
        computed: u64,
    },
    /// The payload section failed to decode.
    Payload(ccam::wire::WireError),
    /// Input left over after the checksum trailer.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => write!(
                f,
                "truncated artifact: read of {needed} byte(s) with {remaining} remaining"
            ),
            WireError::BadMagic => write!(f, "not an MLbox artifact (bad magic)"),
            WireError::UnsupportedVersion(v) => write!(
                f,
                "artifact format version {v} is not supported (this build \
                 reads version {FORMAT_VERSION})"
            ),
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            WireError::Corrupt(what) => write!(f, "corrupt artifact: {what}"),
            WireError::FingerprintMismatch { stored, computed } => write!(
                f,
                "artifact options fingerprint {stored:#018x} does not match \
                 the decoded options ({computed:#018x})"
            ),
            WireError::Payload(e) => write!(f, "artifact payload: {e}"),
            WireError::TrailingBytes(n) => {
                write!(f, "artifact has {n} trailing byte(s) after the checksum")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Payload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ccam::wire::WireError> for WireError {
    fn from(e: ccam::wire::WireError) -> Self {
        WireError::Payload(e)
    }
}

// ---------------------------------------------------------------------
// Options section
// ---------------------------------------------------------------------

/// Fuel-absent marker in the options section.
const FUEL_NONE: u8 = 0;
/// Fuel-present marker, followed by the u64 budget.
const FUEL_SOME: u8 = 1;
/// Adaptive-profile marker opening the optional trailer: followed by
/// `promote_after` (u64 LE), `fuse_top_k` (u64 LE), and `use_native`
/// (bool byte). Static-profile artifacts write nothing after the nine
/// original fields, so every pre-adaptive container stays byte-identical.
const PROFILE_ADAPTIVE: u8 = 1;

fn encode_options(out: &mut Vec<u8>, o: &SessionOptions) {
    // Field order matches SessionOptions::fingerprint exactly, so the
    // section reads as the fingerprint's preimage.
    out.push(u8::from(o.prelude));
    match o.fuel {
        Some(f) => {
            out.push(FUEL_SOME);
            out.extend_from_slice(&f.to_le_bytes());
        }
        None => out.push(FUEL_NONE),
    }
    out.push(u8::from(o.typecheck));
    out.push(u8::from(o.optimize));
    out.push(u8::from(o.count_opcodes));
    out.push(u8::from(o.indexed_env));
    out.push(u8::from(o.flat_env));
    out.push(u8::from(o.fuse));
    out.push(u8::from(o.native));
    if let Some(policy) = o.adaptive {
        out.push(PROFILE_ADAPTIVE);
        out.extend_from_slice(&policy.promote_after.to_le_bytes());
        out.extend_from_slice(&(policy.fuse_top_k as u64).to_le_bytes());
        out.push(u8::from(policy.use_native));
    }
}

struct OptionsReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> OptionsReader<'a> {
    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(WireError::Corrupt("options section ends early"))?;
        self.pos += 1;
        Ok(b)
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Corrupt("options boolean is neither 0 nor 1")),
        }
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let mut raw = [0u8; 8];
        for slot in &mut raw {
            *slot = self.u8()?;
        }
        Ok(u64::from_le_bytes(raw))
    }
}

fn decode_options(bytes: &[u8]) -> Result<SessionOptions, WireError> {
    let mut r = OptionsReader { bytes, pos: 0 };
    let prelude = r.bool()?;
    let fuel = match r.u8()? {
        FUEL_NONE => None,
        FUEL_SOME => {
            let mut raw = [0u8; 8];
            for slot in &mut raw {
                *slot = r.u8()?;
            }
            Some(u64::from_le_bytes(raw))
        }
        _ => return Err(WireError::Corrupt("unknown fuel marker")),
    };
    let mut options = SessionOptions {
        prelude,
        fuel,
        typecheck: r.bool()?,
        optimize: r.bool()?,
        count_opcodes: r.bool()?,
        indexed_env: r.bool()?,
        flat_env: r.bool()?,
        fuse: r.bool()?,
        native: r.bool()?,
        adaptive: None,
    };
    // Optional adaptive-profile trailer: absent in every artifact
    // written before (or without) the tier controller.
    if r.pos != bytes.len() {
        if r.u8()? != PROFILE_ADAPTIVE {
            return Err(WireError::Corrupt("unknown execution-profile marker"));
        }
        options.adaptive = Some(TierPolicy {
            promote_after: r.u64()?,
            fuse_top_k: usize::try_from(r.u64()?)
                .map_err(|_| WireError::Corrupt("fuse_top_k does not fit a usize"))?,
            use_native: r.bool()?,
        });
    }
    if r.pos != bytes.len() {
        return Err(WireError::Corrupt("options section has trailing bytes"));
    }
    Ok(options)
}

// ---------------------------------------------------------------------
// Container encode/decode
// ---------------------------------------------------------------------

fn read_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([bytes[at], bytes[at + 1]])
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(raw)
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

impl CompiledFilter {
    /// Renders the artifact as a self-contained, checksummed byte
    /// container (the format above). Deterministic: the same artifact
    /// always produces the same bytes, which is what lets the store
    /// content-address files and the golden lockfile pin the format.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved
        out.extend_from_slice(&self.source_fingerprint().to_le_bytes());
        out.extend_from_slice(&self.options_fingerprint().to_le_bytes());
        let mut options = Vec::new();
        encode_options(&mut options, self.options());
        out.extend_from_slice(
            &u32::try_from(options.len())
                .expect("options section")
                .to_le_bytes(),
        );
        out.extend_from_slice(&options);
        let payload = ccam::wire::encode_value(self.entry());
        out.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("artifact payload exceeds u32 bytes")
                .to_le_bytes(),
        );
        out.extend_from_slice(&payload);
        let digest = checksum(&out);
        out.extend_from_slice(&digest.to_le_bytes());
        out
    }

    /// Parses an artifact container, verifying magic, version, checksum,
    /// section framing, and the options fingerprint. The payload's
    /// frame flag is recomputed during decode, so the compatibility
    /// check on the result keeps its meaning regardless of what the
    /// producer claimed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Wire`] describing the first violation. Never
    /// panics, whatever the input.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<CompiledFilter, Error> {
        Ok(decode_container(bytes)?)
    }

    /// Like [`from_wire_bytes`](CompiledFilter::from_wire_bytes), then
    /// additionally rejects artifacts a consumer running under
    /// `consumer` options must not hydrate (the frame-bearing /
    /// flat-env rule of
    /// [`check_compatible`](CompiledFilter::check_compatible)).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Wire`] for container violations and
    /// [`Error::Artifact`] for representation mismatches.
    pub fn from_wire_bytes_for(
        bytes: &[u8],
        consumer: &SessionOptions,
    ) -> Result<CompiledFilter, Error> {
        let artifact = CompiledFilter::from_wire_bytes(bytes)?;
        artifact.check_compatible(consumer)?;
        Ok(artifact)
    }
}

fn decode_container(bytes: &[u8]) -> Result<CompiledFilter, WireError> {
    // Fixed header: magic + version + reserved + two fingerprints +
    // options length.
    const HEADER: usize = 8 + 2 + 2 + 8 + 8 + 4;
    if bytes.len() < 8 {
        return Err(WireError::Truncated {
            needed: 8,
            remaining: bytes.len(),
        });
    }
    if bytes[..8] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if bytes.len() < HEADER + 8 {
        return Err(WireError::Truncated {
            needed: HEADER + 8,
            remaining: bytes.len(),
        });
    }
    let version = read_u16(bytes, 8);
    if version != FORMAT_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    if read_u16(bytes, 10) != 0 {
        return Err(WireError::Corrupt("reserved field is not zero"));
    }
    // Integrity before structure: everything after this point may index
    // by lengths read from the input, so make sure the input is what the
    // producer wrote.
    let content = &bytes[..bytes.len() - 8];
    let stored = read_u64(bytes, bytes.len() - 8);
    let computed = checksum(content);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    let source_fingerprint = read_u64(bytes, 12);
    let options_fingerprint = read_u64(bytes, 20);
    let options_len = read_u32(bytes, 28) as usize;
    let options_start = HEADER;
    let options_end = options_start
        .checked_add(options_len)
        .ok_or(WireError::Corrupt("options length overflows"))?;
    if options_end + 4 > content.len() {
        return Err(WireError::Truncated {
            needed: options_end + 4,
            remaining: content.len(),
        });
    }
    let options = decode_options(&content[options_start..options_end])?;
    let computed_fp = options.fingerprint();
    if computed_fp != options_fingerprint {
        return Err(WireError::FingerprintMismatch {
            stored: options_fingerprint,
            computed: computed_fp,
        });
    }
    let payload_len = read_u32(content, options_end) as usize;
    let payload_start = options_end + 4;
    let payload_end = payload_start
        .checked_add(payload_len)
        .ok_or(WireError::Corrupt("payload length overflows"))?;
    if payload_end > content.len() {
        return Err(WireError::Truncated {
            needed: payload_end,
            remaining: content.len(),
        });
    }
    if payload_end != content.len() {
        return Err(WireError::TrailingBytes(content.len() - payload_end));
    }
    let entry = ccam::wire::decode_value(&content[payload_start..payload_end])?;
    Ok(CompiledFilter::new(entry, options, source_fingerprint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use ccam::value::Value;

    fn power_artifact() -> CompiledFilter {
        let mut s = Session::new().unwrap();
        s.run(
            "fun codePower e = if e = 0 then code (fn b => 1)
                               else let cogen p = codePower (e - 1)
                                    in code (fn b => b * (p b)) end",
        )
        .unwrap();
        s.compile_to_artifact("codePower 3", 0xc0de).unwrap()
    }

    fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
        // Recompute the trailing checksum after a deliberate header edit,
        // so the edit (not the checksum) is what decode rejects.
        let content = bytes.len() - 8;
        let digest = checksum(&bytes[..content]);
        bytes[content..].copy_from_slice(&digest.to_le_bytes());
        bytes
    }

    #[test]
    fn container_roundtrips_and_runs() {
        let artifact = power_artifact();
        let bytes = artifact.to_wire_bytes();
        let back = CompiledFilter::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back.source_fingerprint(), 0xc0de);
        assert_eq!(back.options_fingerprint(), artifact.options_fingerprint());
        assert_eq!(back.instructions(), artifact.instructions());
        assert_eq!(back.to_wire_bytes(), bytes, "re-encode is byte-identical");
        let mut a = artifact.instantiate();
        let mut b = back.instantiate();
        let (va, sa) = a.run(Value::Int(6)).unwrap();
        let (vb, sb) = b.run(Value::Int(6)).unwrap();
        assert_eq!(va.to_string(), vb.to_string());
        assert_eq!(sa.steps, sb.steps, "cost model survives the disk");
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = power_artifact().to_wire_bytes();
        for len in 0..bytes.len() {
            assert!(
                CompiledFilter::from_wire_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_errors() {
        let bytes = power_artifact().to_wire_bytes();
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0xff;
            assert!(
                CompiledFilter::from_wire_bytes(&corrupt).is_err(),
                "flip at {pos} decoded"
            );
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = power_artifact().to_wire_bytes();
        bytes[0] = b'X';
        let err = CompiledFilter::from_wire_bytes(&bytes).unwrap_err();
        assert!(matches!(err, Error::Wire(WireError::BadMagic)), "{err}");
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = power_artifact().to_wire_bytes();
        bytes[8] = 2;
        let bytes = reseal(bytes);
        let err = CompiledFilter::from_wire_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, Error::Wire(WireError::UnsupportedVersion(2))),
            "{err}"
        );
    }

    #[test]
    fn checksum_mismatch_is_typed() {
        let mut bytes = power_artifact().to_wire_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = CompiledFilter::from_wire_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, Error::Wire(WireError::ChecksumMismatch { .. })),
            "{err}"
        );
    }

    #[test]
    fn options_fingerprint_mismatch_is_typed() {
        let mut bytes = power_artifact().to_wire_bytes();
        // Flip a bit of the stored options fingerprint and reseal; the
        // decoded options no longer hash to it.
        bytes[20] ^= 0x01;
        let bytes = reseal(bytes);
        let err = CompiledFilter::from_wire_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, Error::Wire(WireError::FingerprintMismatch { .. })),
            "{err}"
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = power_artifact().to_wire_bytes();
        bytes.extend_from_slice(&[0, 0, 0]);
        let err = CompiledFilter::from_wire_bytes(&bytes).unwrap_err();
        // The appended bytes displace the checksum trailer, so decode
        // sees a checksum mismatch — either typed error is a rejection,
        // but it must be an error.
        assert!(matches!(err, Error::Wire(_)), "{err}");
    }

    #[test]
    fn incompatible_consumers_are_refused_at_load() {
        let flat = SessionOptions {
            flat_env: true,
            ..SessionOptions::default()
        };
        let mut s = Session::with_options(flat.clone()).unwrap();
        s.run("val a = 1;\nval b = 2;\nval f = fn x => x + a + b")
            .unwrap();
        let artifact = s
            .compile_to_artifact("let cogen c = lift f in code (fn x => c x) end", 0)
            .unwrap();
        assert!(artifact.entry().uses_frames());
        let bytes = artifact.to_wire_bytes();
        // The matching consumer loads fine…
        CompiledFilter::from_wire_bytes_for(&bytes, &flat).unwrap();
        // …a pair-spine consumer is refused with the artifact error, and
        // the frame flag that drives the refusal was recomputed from the
        // payload, not read from a forgeable field.
        let err =
            CompiledFilter::from_wire_bytes_for(&bytes, &SessionOptions::default()).unwrap_err();
        assert!(matches!(err, Error::Artifact(_)), "{err}");
        assert!(err.to_string().contains("flat-env"), "{err}");
    }

    #[test]
    fn options_survive_the_container() {
        for options in [
            SessionOptions::default(),
            SessionOptions {
                fuel: Some(123_456),
                optimize: true,
                fuse: true,
                ..SessionOptions::default()
            },
            SessionOptions {
                flat_env: true,
                native: true,
                prelude: false,
                typecheck: false,
                ..SessionOptions::default()
            },
            SessionOptions {
                adaptive: Some(TierPolicy::default()),
                ..SessionOptions::default()
            },
            SessionOptions {
                adaptive: Some(TierPolicy {
                    promote_after: 0,
                    fuse_top_k: 3,
                    use_native: false,
                }),
                flat_env: true,
                fuel: Some(7),
                ..SessionOptions::default()
            },
        ] {
            let mut bytes = Vec::new();
            encode_options(&mut bytes, &options);
            let back = decode_options(&bytes).unwrap();
            assert_eq!(back.fingerprint(), options.fingerprint());
            assert_eq!(back.adaptive, options.adaptive);
        }
    }

    #[test]
    fn adaptive_trailer_is_a_pure_extension() {
        // A static-profile encoding gains no bytes from the profile
        // refactor, and the adaptive trailer is rejected when malformed.
        let mut static_bytes = Vec::new();
        encode_options(&mut static_bytes, &SessionOptions::default());
        let mut adaptive_bytes = Vec::new();
        encode_options(
            &mut adaptive_bytes,
            &SessionOptions {
                adaptive: Some(TierPolicy::default()),
                ..SessionOptions::default()
            },
        );
        assert_eq!(
            &adaptive_bytes[..static_bytes.len()],
            &static_bytes[..],
            "the trailer extends the static encoding in place"
        );
        // Unknown profile marker.
        let mut bad = static_bytes.clone();
        bad.push(9);
        assert!(decode_options(&bad).is_err());
        // Truncated policy.
        for len in static_bytes.len() + 1..adaptive_bytes.len() {
            assert!(
                decode_options(&adaptive_bytes[..len]).is_err(),
                "trailer prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn adaptive_artifact_roundtrips_and_promotes() {
        let mut s = Session::with_options(SessionOptions {
            adaptive: Some(TierPolicy {
                promote_after: 1,
                ..TierPolicy::default()
            }),
            ..SessionOptions::default()
        })
        .unwrap();
        s.run(
            "fun codePower e = if e = 0 then code (fn b => 1)
                               else let cogen p = codePower (e - 1)
                                    in code (fn b => b * (p b)) end",
        )
        .unwrap();
        let artifact = s.compile_to_artifact("codePower 3", 0xc0de).unwrap();
        let bytes = artifact.to_wire_bytes();
        let back = CompiledFilter::from_wire_bytes(&bytes).unwrap();
        assert_eq!(
            back.options().adaptive,
            artifact.options().adaptive,
            "the tier policy survives the disk"
        );
        // The rehydrated instance promotes its hot block and still
        // matches a Paper-profile oracle step for step.
        let oracle = power_artifact();
        let mut o = oracle.instantiate();
        let mut b = back.instantiate();
        for _ in 0..4 {
            let (vo, so) = o.run(Value::Int(6)).unwrap();
            let (vb, sb) = b.run(Value::Int(6)).unwrap();
            assert_eq!(vo.to_string(), vb.to_string());
            assert_eq!(so.steps, sb.steps);
        }
        assert!(b.stats().promotions > 0, "{:?}", b.stats());
    }
}
