//! A tiny stable hasher for cache keys.
//!
//! The serving layer keys its specialization cache by (filter program,
//! session options). `std::hash::DefaultHasher` makes no stability
//! promises across Rust releases, and cache keys recorded in benchmark
//! artifacts (`BENCH_serve.json`) should mean the same thing next year —
//! so we fix the algorithm: FNV-1a, 64-bit, over an explicit canonical
//! byte encoding chosen by each caller.

/// An incremental FNV-1a 64-bit hasher.
///
/// # Examples
///
/// ```
/// use mlbox::fingerprint::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write(b"abc");
/// let once = h.finish();
/// let mut h2 = Fnv1a::new();
/// h2.write(b"abc");
/// assert_eq!(once, h2.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.write(&[b]);
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    /// Absorbs an `i64` in little-endian byte order.
    pub fn write_i64(&mut self, n: i64) {
        self.write(&n.to_le_bytes());
    }

    /// Absorbs a boolean as one byte.
    pub fn write_bool(&mut self, b: bool) {
        self.write_u8(u8::from(b));
    }

    /// The 64-bit digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        let digest = |s: &str| {
            let mut h = Fnv1a::new();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_order_matters() {
        let mut a = Fnv1a::new();
        a.write_bool(true);
        a.write_bool(false);
        let mut b = Fnv1a::new();
        b.write_bool(false);
        b.write_bool(true);
        assert_ne!(a.finish(), b.finish());
    }
}
