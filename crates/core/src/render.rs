//! Pretty rendering of machine and interpreter values against the
//! datatype environment: constructors by name, lists as `[...]`.

use ccam::value::Value;
use mlbox_eval::value::RVal;
use mlbox_ir::data::{ConId, DataEnv, CONS, NIL};

/// Renders a CCAM value with constructor names and list sugar.
pub fn render_machine(v: &Value, data: &DataEnv) -> String {
    match v {
        Value::Con(tag, payload) => {
            render_con(ConId(*tag), payload.as_deref().map(MachineOrEval::M), data)
        }
        Value::Pair(p) => format!(
            "({}, {})",
            render_machine(&p.0, data),
            render_machine(&p.1, data)
        ),
        Value::Ref(r) => format!("ref {}", render_machine(&r.borrow(), data)),
        Value::Array(a) => {
            let items: Vec<String> = a.borrow().iter().map(|x| render_machine(x, data)).collect();
            format!("[|{}|]", items.join(", "))
        }
        other => other.to_string(),
    }
}

/// Renders a reference-interpreter value with constructor names and list
/// sugar. The format matches [`render_machine`], enabling textual
/// differential comparison.
pub fn render_eval(v: &RVal, data: &DataEnv) -> String {
    match v {
        RVal::Con(tag, payload) => render_con(*tag, payload.as_deref().map(MachineOrEval::E), data),
        RVal::Pair(p) => format!("({}, {})", render_eval(&p.0, data), render_eval(&p.1, data)),
        RVal::Ref(r) => format!("ref {}", render_eval(&r.borrow(), data)),
        RVal::Array(a) => {
            let items: Vec<String> = a.borrow().iter().map(|x| render_eval(x, data)).collect();
            format!("[|{}|]", items.join(", "))
        }
        RVal::Gen(_) => "<fn>".to_string(),
        other => other.to_string(),
    }
}

enum MachineOrEval<'a> {
    M(&'a Value),
    E(&'a RVal),
}

impl MachineOrEval<'_> {
    fn render(&self, data: &DataEnv) -> String {
        match self {
            MachineOrEval::M(v) => render_machine(v, data),
            MachineOrEval::E(v) => render_eval(v, data),
        }
    }

    fn as_cons_cell(&self) -> Option<(MachineOrEval<'_>, MachineOrEval<'_>)> {
        match self {
            MachineOrEval::M(Value::Pair(p)) => {
                Some((MachineOrEval::M(&p.0), MachineOrEval::M(&p.1)))
            }
            MachineOrEval::E(RVal::Pair(p)) => {
                Some((MachineOrEval::E(&p.0), MachineOrEval::E(&p.1)))
            }
            _ => None,
        }
    }

    fn as_con(&self) -> Option<(ConId, Option<MachineOrEval<'_>>)> {
        match self {
            MachineOrEval::M(Value::Con(tag, payload)) => {
                Some((ConId(*tag), payload.as_deref().map(MachineOrEval::M)))
            }
            MachineOrEval::E(RVal::Con(tag, payload)) => {
                Some((*tag, payload.as_deref().map(MachineOrEval::E)))
            }
            _ => None,
        }
    }
}

fn render_con(tag: ConId, payload: Option<MachineOrEval<'_>>, data: &DataEnv) -> String {
    // List sugar: nil → [], a :: rest → splice into the rest's brackets.
    if tag == NIL {
        return "[]".to_string();
    }
    if tag == CONS {
        if let Some(cell) = &payload {
            if let Some((head, tail)) = cell.as_cons_cell() {
                let head_s = head.render(data);
                if let Some((t, p)) = tail.as_con() {
                    let tail_s = render_con(t, p, data);
                    if let Some(inner) = tail_s.strip_prefix('[').and_then(|s| s.strip_suffix(']'))
                    {
                        return if inner.is_empty() {
                            format!("[{head_s}]")
                        } else {
                            format!("[{head_s}, {inner}]")
                        };
                    }
                }
            }
        }
        // Malformed cons cell (should not happen on typed programs).
    }
    let name = &data.con(tag).name;
    match payload {
        None => name.clone(),
        Some(p) => format!("{} {}", name, wrap_if_spaced(&p.render(data))),
    }
}

fn wrap_if_spaced(s: &str) -> String {
    if s.contains(' ') && !s.starts_with('(') && !s.starts_with('[') {
        format!("({s})")
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    fn list_value(items: &[i64]) -> Value {
        let mut acc = Value::Con(NIL.0, None);
        for &n in items.iter().rev() {
            acc = Value::Con(CONS.0, Some(Rc::new(Value::pair(Value::Int(n), acc))));
        }
        acc
    }

    #[test]
    fn lists_render_with_brackets() {
        let data = DataEnv::new();
        assert_eq!(render_machine(&list_value(&[]), &data), "[]");
        assert_eq!(render_machine(&list_value(&[1]), &data), "[1]");
        assert_eq!(render_machine(&list_value(&[1, 2, 3]), &data), "[1, 2, 3]");
    }

    #[test]
    fn constructors_render_by_name() {
        let mut data = DataEnv::new();
        let d = data.declare(
            "t".into(),
            vec![],
            vec![("A".into(), None), ("B".into(), None)],
        );
        let a = data.datatype(d).cons[0];
        assert_eq!(render_machine(&Value::Con(a.0, None), &data), "A");
    }

    #[test]
    fn eval_and_machine_render_identically() {
        let data = DataEnv::new();
        let m = list_value(&[4, 5]);
        let e = {
            let mut acc = RVal::Con(NIL, None);
            for &n in [4i64, 5].iter().rev() {
                acc = RVal::Con(CONS, Some(Rc::new(RVal::pair(RVal::Int(n), acc))));
            }
            acc
        };
        assert_eq!(render_machine(&m, &data), render_eval(&e, &data));
    }
}
