//! The paper's example programs (§3), as MLbox source, compilable and
//! runnable through [`crate::Session`]. The packet-filter programs of
//! §3.3 live in the `mlbox-bpf` crate alongside their workload generator.

/// §3.1 — the interpretive polynomial evaluator and the paper's example
/// polynomial `polyl = [2, 4, 0, 2333]`.
pub const EVAL_POLY: &str = r#"
type poly = int list
val polyl = [2, 4, 0, 2333]

(* val evalPoly : int * poly -> int *)
fun evalPoly (x, p) =
  case p of
    nil => 0
  | a :: r => a + (x * evalPoly (x, r))
"#;

/// §3.1 — source-level staging: specialize by building closures.
pub const SPEC_POLY: &str = r#"
(* val specPoly : poly -> (int -> int) *)
fun specPoly p =
  case p of
    nil => (fn x => 0)
  | a :: r =>
      let val polyr = specPoly r
      in fn x => a + (x * polyr x) end

val polylTarget = specPoly polyl
"#;

/// §3.1 — modal staging: `compPoly` builds a code generator; invoking it
/// produces genuinely specialized CCAM code.
pub const COMP_POLY: &str = r#"
(* val compPoly : poly -> (int -> int) $ *)
fun compPoly p =
  case p of
    nil => code (fn x => 0)
  | a :: r =>
      let
        cogen f = compPoly r
        cogen a' = lift a
      in
        code (fn x => a' + (x * f x))
      end

val codeGenerator = compPoly polyl
val mlPolyFun = eval codeGenerator
"#;

/// §3.4 — the staged power function.
pub const CODE_POWER: &str = r#"
(* val codePower : int -> (int -> int) $ *)
fun codePower e =
  if e = 0 then
    code (fn b => 1)
  else
    let
      cogen p = codePower (e - 1)
    in
      code (fn b => b * (p b))
    end
"#;

/// §3.4 — `memoPower1`: memoize the specialized functions by exponent.
pub const MEMO_POWER1: &str = r#"
val specCode = newTable ()

(* memoPower1 : int -> int -> int *)
fun memoPower1 e =
  case lookup (specCode, e) of
    NONE =>
      let
        cogen p = codePower e
        val p' = p
      in
        (add (specCode, (e, p')); p')
      end
  | SOME p => p
"#;

/// §3.4 — `memoPower2`: additionally memoize the *generating extensions*
/// so different exponents share subcomputations.
pub const MEMO_POWER2: &str = r#"
val specCode2 = newTable ()
val genExts = newTable ()

fun memoPower2 e =
  case lookup (specCode2, e) of
    NONE =>
      let
        cogen p = mPower e
        val p' = p
      in
        (add (specCode2, (e, p')); p')
      end
  | SOME p => p

and mPower e =
  case lookup (genExts, e) of
    NONE =>
      let val p = bPower e
      in (add (genExts, (e, p)); p) end
  | SOME p => p

and bPower e =
  if e = 0 then
    code (fn b => 1)
  else
    let
      cogen p = mPower (e - 1)
    in
      code (fn b => b * (p b))
    end
"#;

/// §2.1 — composition of generators: returns a generator for the
/// composite without generating or running anything itself.
pub const COMPOSE_GEN: &str = r#"
(* val composeGen : (('b -> 'c) $) * (('a -> 'b) $) -> ('a -> 'c) $ *)
fun composeGen (f, g) =
  let
    cogen f' = f
    cogen g' = g
  in
    code (fn x => f' (g' x))
  end
"#;

/// §3.2 — the library client: dynamically generated code that itself
/// invokes a staged library routine, producing yet more specialized code
/// (multi-stage specialization).
pub const CLIENT: &str = r#"
(* makePoly : int -> poly — a toy "poly from config" function. *)
fun makePoly n =
  if n = 0 then nil else (n * 7) :: makePoly (n - 1)

(* The client closes over the staged library routine compPoly via lift,
   then generates code that performs stage-2 specialization. *)
val client =
  let
    cogen cp = lift compPoly
    cogen mk = lift makePoly
  in
    code (fn y =>
      let cogen inner = cp (mk y)
      in inner end)
  end
"#;

#[cfg(test)]
mod tests {
    use crate::Session;

    #[test]
    fn eval_poly_computes() {
        let mut s = Session::new().unwrap();
        s.run(super::EVAL_POLY).unwrap();
        let out = s.eval_expr("evalPoly (47, polyl)").unwrap();
        let expected = 2 + 4 * 47 + 2333i64 * 47 * 47 * 47;
        assert_eq!(out.value, expected.to_string());
    }

    #[test]
    fn spec_poly_matches_eval_poly() {
        let mut s = Session::new().unwrap();
        s.run(super::EVAL_POLY).unwrap();
        s.run(super::SPEC_POLY).unwrap();
        let a = s.eval_expr("polylTarget 47").unwrap().value;
        let b = s.eval_expr("evalPoly (47, polyl)").unwrap().value;
        assert_eq!(a, b);
    }

    #[test]
    fn comp_poly_matches_eval_poly() {
        let mut s = Session::new().unwrap();
        s.run(super::EVAL_POLY).unwrap();
        s.run(super::COMP_POLY).unwrap();
        let a = s.eval_expr("mlPolyFun 47").unwrap().value;
        let b = s.eval_expr("evalPoly (47, polyl)").unwrap().value;
        assert_eq!(a, b);
    }

    #[test]
    fn comp_poly_specialized_calls_are_cheaper() {
        let mut s = Session::new().unwrap();
        s.run(super::EVAL_POLY).unwrap();
        s.run(super::COMP_POLY).unwrap();
        let staged = s.eval_expr("mlPolyFun 47").unwrap().stats.steps;
        let interp = s.eval_expr("evalPoly (47, polyl)").unwrap().stats.steps;
        assert!(
            staged * 2 < interp,
            "specialized {staged} should be well under interpreted {interp}"
        );
    }

    #[test]
    fn code_power_works() {
        let mut s = Session::new().unwrap();
        s.run(super::CODE_POWER).unwrap();
        assert_eq!(s.eval_expr("eval (codePower 10) 2").unwrap().value, "1024");
        assert_eq!(s.eval_expr("eval (codePower 0) 9").unwrap().value, "1");
    }

    #[test]
    fn memo_power1_caches() {
        let mut s = Session::new().unwrap();
        s.run(super::CODE_POWER).unwrap();
        s.run(super::MEMO_POWER1).unwrap();
        let first = s.eval_expr("memoPower1 16 2").unwrap();
        assert_eq!(first.value, "65536");
        let second = s.eval_expr("memoPower1 16 2").unwrap();
        assert_eq!(second.value, "65536");
        assert!(
            second.stats.emitted == 0,
            "second call must not regenerate code (emitted {})",
            second.stats.emitted
        );
        assert!(second.stats.steps < first.stats.steps);
    }

    #[test]
    fn memo_power2_shares_generating_extensions() {
        let mut s = Session::new().unwrap();
        s.run(super::MEMO_POWER2).unwrap();
        let big = s.eval_expr("memoPower2 60 2").unwrap();
        assert_eq!(big.value, (1i64 << 60).to_string());
        // A smaller exponent now reuses the memoized generating extensions.
        let small = s.eval_expr("memoPower2 34 2").unwrap();
        let fresh_session_steps = {
            let mut s2 = Session::new().unwrap();
            s2.run(super::MEMO_POWER2).unwrap();
            s2.eval_expr("memoPower2 34 2").unwrap().stats.steps
        };
        assert!(
            small.stats.steps < fresh_session_steps,
            "sharing generating extensions must save work: {} vs {}",
            small.stats.steps,
            fresh_session_steps
        );
    }

    #[test]
    fn compose_gen_composes() {
        let mut s = Session::new().unwrap();
        s.run(super::COMPOSE_GEN).unwrap();
        let out = s
            .eval_expr("eval (composeGen (code (fn x => x * 2), code (fn x => x + 1))) 5")
            .unwrap();
        assert_eq!(out.value, "12");
    }

    #[test]
    fn client_performs_multi_stage_specialization() {
        let mut s = Session::new().unwrap();
        s.run(super::EVAL_POLY).unwrap();
        s.run(super::COMP_POLY).unwrap();
        s.run(super::CLIENT).unwrap();
        s.run("val stage1 = eval client").unwrap();
        // stage1 3 builds the poly [21, 14, 7] and specializes it — at the
        // run time of dynamically generated code.
        let out = s.eval_expr("stage1 3 10").unwrap();
        let expected = 21 + 10 * (14 + 10 * 7);
        assert_eq!(out.value, expected.to_string());
    }
}
