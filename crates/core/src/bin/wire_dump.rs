//! `wire-dump` — hex dump of the canonical wire-format artifact.
//!
//! Builds the golden artifact (the paper's §3.4 staged power function,
//! specialized at exponent 2, default [`SessionOptions`], source
//! fingerprint `0x1998`), encodes it with
//! [`CompiledFilter::to_wire_bytes`], and prints the bytes as lowercase
//! hex, 32 bytes per line. The output is pinned byte-for-byte in
//! `tests/golden/artifact_wire.hex`: any change to the dump is a wire
//! format change and must come with a `FORMAT_VERSION` bump and a
//! deliberate lockfile update (see `crates/core/tests/wire_golden.rs`
//! and the CI diff step).
//!
//! [`SessionOptions`]: mlbox::SessionOptions
//! [`CompiledFilter::to_wire_bytes`]: mlbox::CompiledFilter::to_wire_bytes

use mlbox::Session;

/// The program behind the golden artifact. Stable on purpose: it uses a
/// recursive generator, `lift`-free quoting, and a multiplication chain,
/// so the payload exercises closures, code blocks, and sharing.
pub const GOLDEN_PROGRAM: &str = "fun codePower e = if e = 0 then code (fn b => 1)
                   else let cogen p = codePower (e - 1)
                        in code (fn b => b * (p b)) end";

/// The expression specialized into the golden artifact.
pub const GOLDEN_EXPR: &str = "codePower 2";

/// The golden artifact's source fingerprint (the paper's year).
pub const GOLDEN_SOURCE_FINGERPRINT: u64 = 0x1998;

/// Renders `bytes` as lowercase hex, 32 bytes (64 hex digits) per line.
pub fn hex_lines(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2 + bytes.len() / 32 + 1);
    for chunk in bytes.chunks(32) {
        for b in chunk {
            out.push_str(&format!("{b:02x}"));
        }
        out.push('\n');
    }
    out
}

/// Builds and encodes the golden artifact.
///
/// # Panics
///
/// Panics if the golden program fails to compile — the program is fixed
/// and known-good, so a failure means the pipeline itself regressed.
pub fn golden_wire_bytes() -> Vec<u8> {
    let mut session = Session::new().expect("session builds");
    session
        .run(GOLDEN_PROGRAM)
        .expect("golden program compiles");
    session
        .compile_to_artifact(GOLDEN_EXPR, GOLDEN_SOURCE_FINGERPRINT)
        .expect("golden artifact extracts")
        .to_wire_bytes()
}

fn main() {
    print!("{}", hex_lines(&golden_wire_bytes()));
}
