//! The `mlbox` command-line driver.
//!
//! ```text
//! mlbox run FILE.ml       # run a program, print each binding with type and steps
//! mlbox check FILE.ml     # parse + elaborate + type check only
//! mlbox eval 'EXPR'       # evaluate one expression (prelude loaded)
//! mlbox repl              # interactive read-eval-print loop
//! ```

use mlbox::{Session, SessionOptions};
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run_file(args.get(1), false),
        Some("check") => run_file(args.get(1), true),
        Some("eval") => eval_expr(args.get(1)),
        Some("repl") | None => repl(),
        Some(other) => {
            eprintln!("unknown command `{other}`");
            usage();
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("{e}");
        std::process::exit(1);
    }
}

fn usage() {
    eprintln!("usage: mlbox [run FILE | check FILE | eval EXPR | repl]");
}

fn run_file(path: Option<&String>, check_only: bool) -> Result<(), Box<dyn std::error::Error>> {
    let Some(path) = path else {
        usage();
        std::process::exit(2);
    };
    let src = std::fs::read_to_string(path)?;
    let mut session = Session::new()?;
    if check_only {
        // Type check by running with a tiny fuel? No — elaborate+check only:
        // reuse the session but stop before running by checking each decl.
        // The Session API always runs; for `check` we run with a fuel limit
        // high enough for declarations but report only types.
        let outcomes = session.run(&src)?;
        for o in outcomes {
            if let Some(name) = o.name {
                println!("val {name} : {}", o.ty);
            }
        }
        return Ok(());
    }
    let outcomes = session.run(&src)?;
    for w in session.take_warnings() {
        eprintln!("warning: {}", w.render(&src));
    }
    for o in &outcomes {
        match &o.name {
            Some(name) => println!(
                "val {name} : {} = {}   ({} steps, {} emitted)",
                o.ty, o.value, o.stats.steps, o.stats.emitted
            ),
            None => println!(
                "- : {} = {}   ({} steps, {} emitted)",
                o.ty, o.value, o.stats.steps, o.stats.emitted
            ),
        }
    }
    let out = session.take_output();
    if !out.is_empty() {
        println!("--- output ---");
        println!("{out}");
    }
    Ok(())
}

fn eval_expr(expr: Option<&String>) -> Result<(), Box<dyn std::error::Error>> {
    let Some(expr) = expr else {
        usage();
        std::process::exit(2);
    };
    let mut session = Session::new()?;
    let o = session.eval_expr(expr)?;
    println!("- : {} = {}   ({} steps)", o.ty, o.value, o.stats.steps);
    let out = session.take_output();
    if !out.is_empty() {
        print!("{out}");
    }
    Ok(())
}

fn repl() -> Result<(), Box<dyn std::error::Error>> {
    println!("MLbox — run-time code generation with modal types (PLDI 1998)");
    println!("type declarations or expressions; :q quits, :stats shows totals");
    let mut session = Session::with_options(SessionOptions {
        fuel: Some(500_000_000),
        ..SessionOptions::default()
    })?;
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("mlbox> ");
        std::io::stdout().flush()?;
        line.clear();
        if stdin.lock().read_line(&mut line)? == 0 {
            return Ok(());
        }
        let input = line.trim();
        match input {
            "" => continue,
            ":q" | ":quit" => return Ok(()),
            ":stats" => {
                let s = session.stats();
                println!(
                    "total: {} steps, {} emitted, {} arenas, {} calls",
                    s.steps, s.emitted, s.arenas, s.calls
                );
                continue;
            }
            _ => {}
        }
        match session.run(input) {
            Ok(outcomes) => {
                for w in session.take_warnings() {
                    println!("warning: {}", w.message);
                }
                for o in outcomes {
                    let name = o.name.unwrap_or_else(|| "it".to_string());
                    println!(
                        "val {name} : {} = {}   ({} steps)",
                        o.ty, o.value, o.stats.steps
                    );
                }
                let out = session.take_output();
                if !out.is_empty() {
                    print!("{out}");
                }
            }
            Err(e) => println!("{e}"),
        }
    }
}
