//! The MLbox prelude: loaded into every default [`crate::Session`].
//!
//! Everything here is ordinary MLbox source — including `eval`, which the
//! paper notes is definable rather than primitive
//! (`fn x => let cogen u = x in u end`), and the memoization tables of
//! §3.4 (association lists in a reference cell).

/// The prelude source.
pub const PRELUDE: &str = r#"
datatype 'a option = NONE | SOME of 'a

(* Invoking a generator: definable, not primitive (paper §2.1). *)
fun eval c = let cogen u = c in u end

fun compose (f, g) = fn x => f (g x)
fun fst2 (a, b) = a
fun snd2 (a, b) = b

fun map f xs = case xs of nil => nil | a :: r => f a :: map f r
fun append (xs, ys) = case xs of nil => ys | a :: r => a :: append (r, ys)
fun rev xs =
  let fun go (acc, l) = case l of nil => acc | a :: r => go (a :: acc, r)
  in go (nil, xs) end
fun listLength xs = case xs of nil => 0 | a :: r => 1 + listLength r
fun foldl (f, acc, xs) =
  case xs of nil => acc | a :: r => foldl (f, f (acc, a), r)
fun nth (xs, n) = case xs of a :: r => if n = 0 then a else nth (r, n - 1)
fun tabulate (n, f) =
  let fun go i = if i = n then nil else f i :: go (i + 1)
  in go 0 end

(* Arrays from lists (a default element is required for the allocation). *)
fun fromList (xs, dflt) =
  let
    val a = array (listLength xs, dflt)
    fun fill (i, l) =
      case l of nil => a | v :: r => (update (a, i, v); fill (i + 1, r))
  in fill (0, xs) end

(* Association-list tables (paper §3.4): get/add over a list ref. *)
fun newTable dummy = ref nil
fun lookup (t, k) =
  let fun find l =
        case l of
          nil => NONE
        | (k', v) :: r => if k = k' then SOME v else find r
  in find (!t) end
fun add (t, kv) = t := kv :: !t
"#;
