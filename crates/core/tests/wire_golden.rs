//! Pins the artifact wire format byte-for-byte.
//!
//! The canonical artifact — the §3.4 staged power function specialized
//! at exponent 2, default options, source fingerprint `0x1998`, exactly
//! what the `wire-dump` binary emits — must encode to the hex in
//! `tests/golden/artifact_wire.hex`. Any drift is a wire format change:
//! artifacts persisted by earlier builds would stop (or worse, subtly
//! change how they) decode. A deliberate format change must bump
//! `mlbox::wire::FORMAT_VERSION` and regenerate the lockfile:
//!
//! ```text
//! cargo run -p mlbox --bin wire-dump > tests/golden/artifact_wire.hex
//! ```
//!
//! CI runs the same diff as a workflow step, and the decode direction is
//! pinned too: the golden *bytes* must still decode, hydrate, and
//! compute 6² with the same reduction-step count.

use mlbox::{CompiledFilter, Session};

const GOLDEN_HEX: &str = include_str!("../../../tests/golden/artifact_wire.hex");

const GOLDEN_PROGRAM: &str = "fun codePower e = if e = 0 then code (fn b => 1)
                   else let cogen p = codePower (e - 1)
                        in code (fn b => b * (p b)) end";

fn golden_artifact() -> CompiledFilter {
    let mut session = Session::new().unwrap();
    session.run(GOLDEN_PROGRAM).unwrap();
    session.compile_to_artifact("codePower 2", 0x1998).unwrap()
}

fn hex_lines(bytes: &[u8]) -> String {
    let mut out = String::new();
    for chunk in bytes.chunks(32) {
        for b in chunk {
            out.push_str(&format!("{b:02x}"));
        }
        out.push('\n');
    }
    out
}

fn golden_bytes() -> Vec<u8> {
    let digits: Vec<u8> = GOLDEN_HEX.bytes().filter(u8::is_ascii_hexdigit).collect();
    assert_eq!(digits.len() % 2, 0, "lockfile has a dangling hex digit");
    digits
        .chunks(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).unwrap(), 16).unwrap())
        .collect()
}

#[test]
fn encoding_matches_the_golden_lockfile() {
    let got = hex_lines(&golden_artifact().to_wire_bytes());
    assert_eq!(
        got.trim_end(),
        GOLDEN_HEX.trim_end(),
        "wire encoding drifted from tests/golden/artifact_wire.hex — \
         if intentional, bump FORMAT_VERSION and regenerate with \
         `cargo run -p mlbox --bin wire-dump`"
    );
}

#[test]
fn golden_bytes_still_decode_and_run() {
    let decoded = CompiledFilter::from_wire_bytes(&golden_bytes()).unwrap();
    assert_eq!(decoded.source_fingerprint(), 0x1998);

    // The pinned bytes must serve exactly like a fresh compile: same
    // answer, same reduction-step count (the cost model is part of the
    // format contract).
    let fresh = golden_artifact();
    let (fresh_value, fresh_stats) = fresh.instantiate().run(ccam::value::Value::Int(6)).unwrap();
    let (value, stats) = decoded
        .instantiate()
        .run(ccam::value::Value::Int(6))
        .unwrap();
    assert_eq!(value.to_string(), "36");
    assert_eq!(value.to_string(), fresh_value.to_string());
    assert_eq!(stats.steps, fresh_stats.steps);
}
