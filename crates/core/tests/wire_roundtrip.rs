//! Wire round-trips across the whole mode lattice.
//!
//! Every combination of environment representation (pair-spine /
//! indexed / flat) × superinstruction fusion × native tier must
//! round-trip an artifact through the wire format and serve identically:
//! same value, same reduction-step count, byte-identical re-encode. The
//! frame-bearing / flat-env compatibility rule is checked at both ends
//! (a flat artifact refuses a default consumer; every artifact accepts a
//! consumer with its own options).

use mlbox::{CompiledFilter, Session, SessionOptions};

/// A staged program whose artifact exercises closures, recursion in the
/// generator, and arithmetic — small enough to compile in every mode.
const PROGRAM: &str = "fun codePower e = if e = 0 then code (fn b => 1)
                       else let cogen p = codePower (e - 1)
                            in code (fn b => b * (p b)) end";

fn mode_lattice() -> Vec<SessionOptions> {
    let mut lattice = Vec::new();
    for env in 0..3 {
        for fuse in [false, true] {
            for native in [false, true] {
                lattice.push(SessionOptions {
                    indexed_env: env == 1,
                    flat_env: env == 2,
                    fuse,
                    native,
                    ..SessionOptions::default()
                });
            }
        }
    }
    lattice
}

fn artifact_under(options: &SessionOptions) -> CompiledFilter {
    let mut session = Session::with_options(options.clone()).unwrap();
    session.run(PROGRAM).unwrap();
    session.compile_to_artifact("codePower 4", 0xabcd).unwrap()
}

#[test]
fn every_mode_roundtrips_value_and_step_identical() {
    for options in mode_lattice() {
        let artifact = artifact_under(&options);
        let bytes = artifact.to_wire_bytes();
        let back = CompiledFilter::from_wire_bytes_for(&bytes, &options)
            .unwrap_or_else(|e| panic!("{options:?}: own-options consumer refused: {e}"));
        assert_eq!(
            back.to_wire_bytes(),
            bytes,
            "{options:?}: re-encode is not byte-identical"
        );
        let (fresh_value, fresh_stats) = artifact
            .instantiate()
            .run(ccam::value::Value::Int(3))
            .unwrap();
        let (value, stats) = back.instantiate().run(ccam::value::Value::Int(3)).unwrap();
        assert_eq!(value.to_string(), "81", "{options:?}: wrong answer");
        assert_eq!(value.to_string(), fresh_value.to_string());
        assert_eq!(
            stats.steps, fresh_stats.steps,
            "{options:?}: cost model changed across the wire"
        );
    }
}

#[test]
fn frame_bearing_artifacts_refuse_incompatible_consumers() {
    // `codePower` artifacts carry no frame values in any mode (the
    // generated closures close over nothing), so build one that does: a
    // lifted closure over top-level flat-mode bindings embeds its frame
    // environment in the artifact.
    let flat = SessionOptions {
        flat_env: true,
        ..SessionOptions::default()
    };
    let mut session = Session::with_options(flat.clone()).unwrap();
    session
        .run("val a = 1;\nval b = 2;\nval f = fn x => x + a + b")
        .unwrap();
    let artifact = session
        .compile_to_artifact("let cogen c = lift f in code (fn x => c x) end", 0)
        .unwrap();
    assert!(
        artifact.entry().uses_frames(),
        "test premise: frames on board"
    );
    let bytes = artifact.to_wire_bytes();
    // The artifact's own mode hydrates it...
    CompiledFilter::from_wire_bytes_for(&bytes, &flat).unwrap();
    // ...a pair-spine consumer must be refused at load, not at run time.
    let err = CompiledFilter::from_wire_bytes_for(&bytes, &SessionOptions::default())
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("flat-env"),
        "expected the flat-env compatibility error, got: {err}"
    );
}

#[test]
fn cross_mode_loads_are_allowed_when_values_carry_no_frames() {
    // Frame-freedom, not the producer's mode bit, is what gates loading:
    // a *default-mode* artifact (no frames anywhere) may be hydrated by
    // any consumer, including a flat-env one.
    let bytes = artifact_under(&SessionOptions::default()).to_wire_bytes();
    for options in mode_lattice() {
        CompiledFilter::from_wire_bytes_for(&bytes, &options)
            .unwrap_or_else(|e| panic!("{options:?}: frame-free artifact refused: {e}"));
    }
}
