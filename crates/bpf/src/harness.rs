//! The measurement harness: loads the MLbox BPF programs into a session,
//! binds a filter, and measures interpreted versus specialized execution
//! in CCAM reduction steps — the experiment behind Table 1 rows 1–4.

use crate::insn::{fingerprint, validate_filter, Insn};
use crate::mlsrc::{filter_decl, packet_value, BPF_ML};
use crate::packet::Packet;
use ccam::machine::Stats;
use ccam::value::Value;
use mlbox::{CompiledFilter, Error, Session, SessionOptions};

/// A session preloaded with `evalpf`/`bevalpf` and one bound filter.
#[derive(Debug)]
pub struct FilterHarness {
    session: Session,
    filter: Vec<Insn>,
    filter_value: Value,
    specialize_stats: Option<Stats>,
    memo_specialize_stats: Option<Stats>,
}

impl FilterHarness {
    /// Builds a harness for `filter`.
    ///
    /// # Errors
    ///
    /// Returns an error if the filter is statically invalid or any MLbox
    /// stage fails.
    pub fn new(filter: &[Insn]) -> Result<FilterHarness, Error> {
        FilterHarness::with_options(filter, SessionOptions::default())
    }

    /// Builds a harness with explicit session options (e.g. the §4.2
    /// emission-time optimizer).
    ///
    /// # Errors
    ///
    /// Returns an error if the filter is statically invalid or any MLbox
    /// stage fails.
    pub fn with_options(filter: &[Insn], options: SessionOptions) -> Result<FilterHarness, Error> {
        validate_filter(filter).map_err(|msg| Error::Static {
            diag: mlbox_syntax::diag::Diagnostic::new(
                mlbox_syntax::diag::Phase::Elaborate,
                format!("invalid filter program: {msg}"),
                mlbox_syntax::span::Span::SYNTH,
            ),
            src: String::new(),
        })?;
        let mut session = Session::with_options(options)?;
        session.run(BPF_ML)?;
        session.run(&filter_decl("theFilter", filter))?;
        let filter_value = session.eval_expr("theFilter")?.raw;
        Ok(FilterHarness {
            session,
            filter: filter.to_vec(),
            filter_value,
            specialize_stats: None,
            memo_specialize_stats: None,
        })
    }

    /// The stable fingerprint of the bound filter program
    /// ([`crate::insn::fingerprint`]).
    pub fn filter_fingerprint(&self) -> u64 {
        fingerprint(&self.filter)
    }

    /// Runs the *interpretive* filter (`evalpf`) on a packet. Returns the
    /// verdict and the per-call statistics.
    ///
    /// # Errors
    ///
    /// Returns an error on machine failure.
    pub fn interp(&mut self, pkt: &Packet) -> Result<(i64, u64), Error> {
        let arg = Value::pair(self.filter_value.clone(), packet_value(pkt));
        let (v, stats) = self.session.call("runpf", arg)?;
        Ok((expect_verdict(&v)?, stats.steps))
    }

    /// Specializes the filter once via `bevalpf` (binding `pfc`),
    /// returning the generation statistics (steps spent generating,
    /// instructions emitted).
    ///
    /// # Errors
    ///
    /// Returns an error on machine failure.
    pub fn specialize(&mut self) -> Result<Stats, Error> {
        if let Some(s) = self.specialize_stats {
            return Ok(s);
        }
        let outs = self.session.run("val pfc = compilepf theFilter")?;
        let stats = outs.last().expect("one outcome").stats;
        self.specialize_stats = Some(stats);
        Ok(stats)
    }

    /// Runs the *specialized* filter on a packet. Requires
    /// [`FilterHarness::specialize`] first.
    ///
    /// # Errors
    ///
    /// Returns an error if the filter was not specialized or the machine
    /// fails.
    pub fn specialized(&mut self, pkt: &Packet) -> Result<(i64, u64), Error> {
        self.specialize()?;
        let (v, stats) = self.session.call("pfc", packet_value(pkt))?;
        Ok((expect_verdict(&v)?, stats.steps))
    }

    /// Specializes via the memoizing staged interpreter (`mkMemoBev`,
    /// binding `pfm`), which caches one generating extension per program
    /// point instead of duplicating shared jump targets.
    ///
    /// # Errors
    ///
    /// Returns an error on machine failure.
    pub fn specialize_memo(&mut self) -> Result<Stats, Error> {
        if let Some(s) = self.memo_specialize_stats {
            return Ok(s);
        }
        let outs = self.session.run(
            "val pfmRaw = eval (mkMemoBev theFilter)\nval pfm = fn pkt => pfmRaw (0, 0, pkt)",
        )?;
        let stats = outs.first().expect("one outcome").stats;
        self.memo_specialize_stats = Some(stats);
        Ok(stats)
    }

    /// Runs the memo-specialized filter on a packet.
    ///
    /// # Errors
    ///
    /// Returns an error if the filter was not memo-specialized or the
    /// machine fails.
    pub fn memo_specialized(&mut self, pkt: &Packet) -> Result<(i64, u64), Error> {
        self.specialize_memo()?;
        let (v, stats) = self.session.call("pfm", packet_value(pkt))?;
        Ok((expect_verdict(&v)?, stats.steps))
    }

    /// Specializes the filter via `bevalpf` and extracts the *generated*
    /// closure into a thread-shareable [`CompiledFilter`]. The generator
    /// runs here, once; workers instantiate machines from the artifact
    /// and apply it to [`filter_arg`]-shaped packets without paying
    /// generation again.
    ///
    /// Note the asymmetry with [`FilterHarness::specialized`]: that path
    /// runs `compilepf`'s wrapper `fn pkt => f (0, 0, pkt)`, a closure
    /// over the whole session environment (prelude tables are ref cells,
    /// which can never cross threads). The artifact captures only the
    /// code generated by `bevalpf (theFilter, 0)` — closed by
    /// construction, every lifted constant an immediate — and the
    /// `(A, X, pkt)` triple is built on the Rust side ([`filter_arg`])
    /// instead.
    ///
    /// # Errors
    ///
    /// Returns an error if specialization fails or the generated value
    /// cannot be extracted.
    pub fn compile_artifact(&mut self) -> Result<CompiledFilter, Error> {
        let fp = self.filter_fingerprint();
        self.session
            .compile_to_artifact("bevalpf (theFilter, 0)", fp)
    }

    /// Cumulative machine statistics for the whole session, including the
    /// freeze-cache counters (`freezes`, `freeze_hits`). Combine with
    /// [`Stats::delta_since`] to meter a window of calls.
    pub fn machine_stats(&self) -> Stats {
        self.session.stats()
    }

    /// Access to the underlying session (for custom measurements).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }
}

/// The machine-value argument a specialized filter body expects: the
/// `(A, X, pkt)` triple with both registers zeroed, exactly what
/// `compilepf`'s ML wrapper `fn pkt => f (0, 0, pkt)` would build.
/// Artifact runners build it here instead so the entry point stays free
/// of session state.
pub fn filter_arg(pkt: &Packet) -> Value {
    Value::tuple(vec![Value::Int(0), Value::Int(0), packet_value(pkt)])
}

/// Reads an integer verdict off a filter result.
///
/// # Errors
///
/// Returns a machine type-mismatch error if the value is not an integer.
pub fn expect_verdict(v: &Value) -> Result<i64, Error> {
    match v {
        Value::Int(n) => Ok(*n),
        other => Err(Error::Machine(ccam::machine::MachineError::TypeMismatch {
            instr: "harness",
            expected: "an integer verdict",
            found: other.to_string(),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{chain_filter, telnet_filter};
    use crate::native::run_filter;
    use crate::packet::PacketGen;

    #[test]
    fn interp_agrees_with_native_interpreter() {
        let filter = telnet_filter();
        let mut h = FilterHarness::new(&filter).unwrap();
        let mut g = PacketGen::new(21);
        for pkt in g.workload(12, 0.5) {
            let (ml_verdict, _) = h.interp(&pkt).unwrap();
            let native = run_filter(&filter, &pkt.bytes);
            assert_eq!(ml_verdict, native, "on {:?}", pkt.kind);
        }
    }

    #[test]
    fn specialized_agrees_with_interp_and_is_faster() {
        let filter = telnet_filter();
        let mut h = FilterHarness::new(&filter).unwrap();
        let mut g = PacketGen::new(22);
        let gen_stats = h.specialize().unwrap();
        assert!(gen_stats.emitted > 0, "specialization must emit code");
        for pkt in g.workload(8, 0.5) {
            let (iv, isteps) = h.interp(&pkt).unwrap();
            let (sv, ssteps) = h.specialized(&pkt).unwrap();
            assert_eq!(iv, sv, "verdicts agree on {:?}", pkt.kind);
            assert!(
                ssteps * 2 < isteps,
                "specialized {ssteps} vs interpreted {isteps} on {:?}",
                pkt.kind
            );
        }
    }

    #[test]
    fn memo_specialization_agrees() {
        let filter = telnet_filter();
        let mut h = FilterHarness::new(&filter).unwrap();
        let mut g = PacketGen::new(23);
        for pkt in g.workload(6, 0.5) {
            let (iv, _) = h.interp(&pkt).unwrap();
            let (mv, _) = h.memo_specialized(&pkt).unwrap();
            assert_eq!(iv, mv, "on {:?}", pkt.kind);
        }
    }

    #[test]
    fn memo_specialization_emits_no_more_than_plain() {
        // With shared jump targets (both port-test branches reach RET),
        // the memoizing generator must emit at most as many instructions.
        let filter = telnet_filter();
        let mut h1 = FilterHarness::new(&filter).unwrap();
        let plain = h1.specialize().unwrap();
        let mut h2 = FilterHarness::new(&filter).unwrap();
        let memo = h2.specialize_memo().unwrap();
        assert!(
            memo.emitted <= plain.emitted,
            "memo {} vs plain {}",
            memo.emitted,
            plain.emitted
        );
    }

    #[test]
    fn chain_filters_work_at_every_length() {
        for n in [0usize, 1, 4, 16] {
            let filter = chain_filter(n);
            let mut h = FilterHarness::new(&filter).unwrap();
            let pkt = Packet {
                bytes: vec![42, 0, 0, 0],
                kind: crate::packet::PacketKind::Arp,
            };
            let (v, _) = h.interp(&pkt).unwrap();
            assert_eq!(v, 42);
            let (v2, _) = h.specialized(&pkt).unwrap();
            assert_eq!(v2, 42);
        }
    }

    #[test]
    fn specialized_runs_do_not_refreeze() {
        // Specialization freezes the generated arena once; running the
        // resulting closure afterwards is plain closure application and
        // must not freeze (or re-copy) anything.
        let filter = telnet_filter();
        let mut h = FilterHarness::new(&filter).unwrap();
        let mut g = PacketGen::new(24);
        let pkt = g.workload(1, 0.5).remove(0);
        h.specialized(&pkt).unwrap();
        let before = h.machine_stats();
        assert!(before.freezes > 0, "specialization must freeze");
        for _ in 0..10 {
            h.specialized(&pkt).unwrap();
        }
        let delta = h.machine_stats().delta_since(&before);
        assert_eq!(delta.freezes, 0, "re-running must not re-freeze");
    }

    #[test]
    fn artifact_agrees_with_specialized_and_native() {
        let filter = telnet_filter();
        let mut h = FilterHarness::new(&filter).unwrap();
        let artifact = h.compile_artifact().unwrap();
        assert_eq!(artifact.source_fingerprint(), h.filter_fingerprint());
        assert!(artifact.instructions() > 0);
        let mut instance = artifact.instantiate();
        let mut g = PacketGen::new(25);
        for pkt in g.workload(8, 0.5) {
            let (sv, _) = h.specialized(&pkt).unwrap();
            let (raw, stats) = instance.run(filter_arg(&pkt)).unwrap();
            let av = expect_verdict(&raw).unwrap();
            assert_eq!(av, sv, "artifact verdict on {:?}", pkt.kind);
            assert_eq!(av, run_filter(&filter, &pkt.bytes), "native agreement");
            assert!(stats.steps > 0);
            assert_eq!(stats.emitted, 0, "artifact runs must not generate");
        }
    }

    #[test]
    fn artifact_instances_cost_identical_steps_per_packet() {
        let filter = telnet_filter();
        let mut h = FilterHarness::new(&filter).unwrap();
        let artifact = h.compile_artifact().unwrap();
        let mut a = artifact.instantiate();
        let mut b = artifact.instantiate();
        let mut g = PacketGen::new(26);
        for pkt in g.workload(6, 0.5) {
            let (va, sa) = a.run(filter_arg(&pkt)).unwrap();
            let (vb, sb) = b.run(filter_arg(&pkt)).unwrap();
            assert_eq!(expect_verdict(&va).unwrap(), expect_verdict(&vb).unwrap());
            assert_eq!(sa.steps, sb.steps, "per-packet cost is deterministic");
        }
    }

    #[test]
    fn invalid_filter_is_rejected() {
        let bad = vec![Insn::JeqK { k: 0, jt: 9, jf: 9 }];
        assert!(FilterHarness::new(&bad).is_err());
    }
}
