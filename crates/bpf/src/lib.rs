//! BSD packet filter substrate for the MLbox reproduction (paper §3.3 and
//! the Table 1 evaluation): a BPF instruction subset, synthetic
//! telnet/UDP/ARP packets, a native-Rust interpreter baseline, the MLbox
//! `evalpf`/`bevalpf` programs, and a measurement harness.
//!
//! # Examples
//!
//! ```
//! use mlbox_bpf::harness::FilterHarness;
//! use mlbox_bpf::filters::telnet_filter;
//! use mlbox_bpf::packet::PacketGen;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut harness = FilterHarness::new(&telnet_filter())?;
//! let mut packets = PacketGen::new(42);
//! let telnet = packets.telnet(32);
//!
//! // Interpretive filter (the paper's evalpf):
//! let (verdict, interp_steps) = harness.interp(&telnet)?;
//! assert!(verdict > 0);
//!
//! // Specialize once (bevalpf), then run the generated code:
//! harness.specialize()?;
//! let (verdict, staged_steps) = harness.specialized(&telnet)?;
//! assert!(verdict > 0);
//! assert!(staged_steps < interp_steps);
//! # Ok(())
//! # }
//! ```

pub mod filters;
pub mod harness;
pub mod insn;
pub mod mlsrc;
pub mod native;
pub mod packet;

pub use filters::{chain_filter, multi_port_filter, port_filter, telnet_filter};
pub use harness::{expect_verdict, filter_arg, FilterHarness};
pub use insn::{fingerprint, Insn};
pub use packet::{Packet, PacketGen};
