//! A native-Rust BPF interpreter: the trusted baseline the MLbox
//! `evalpf`/`bevalpf` implementations are differentially tested against.

use crate::insn::Insn;

/// Runs `prog` on `pkt`, returning the filter's verdict: the returned
/// constant/accumulator, or `-1` on any error (out-of-bounds read or
/// running off the end of the program), exactly as the paper's `evalpf`.
pub fn run_filter(prog: &[Insn], pkt: &[u8]) -> i64 {
    let mut a: i64 = 0;
    let mut x: i64 = 0;
    let mut pc: usize = 0;
    loop {
        let Some(insn) = prog.get(pc) else {
            return -1;
        };
        let ldb = |k: i64| -> Option<i64> {
            usize::try_from(k)
                .ok()
                .and_then(|k| pkt.get(k))
                .map(|&b| b as i64)
        };
        let ldh = |k: i64| -> Option<i64> {
            let hi = ldb(k)?;
            let lo = ldb(k + 1)?;
            Some(hi * 256 + lo)
        };
        match *insn {
            Insn::RetA => return a,
            Insn::RetK(k) => return k,
            Insn::LdAbsH(k) => match ldh(k) {
                Some(v) => a = v,
                None => return -1,
            },
            Insn::LdAbsB(k) => match ldb(k) {
                Some(v) => a = v,
                None => return -1,
            },
            Insn::LdIndH(k) => match ldh(x + k) {
                Some(v) => a = v,
                None => return -1,
            },
            Insn::LdIndB(k) => match ldb(x + k) {
                Some(v) => a = v,
                None => return -1,
            },
            Insn::LdxMsh(k) => match ldb(k) {
                Some(v) => x = 4 * (v & 0x0f),
                None => return -1,
            },
            Insn::JeqK { k, jt, jf } => {
                pc += if a == k { jt as usize } else { jf as usize };
            }
            Insn::JgtK { k, jt, jf } => {
                pc += if a > k { jt as usize } else { jf as usize };
            }
            Insn::JsetK { k, jt, jf } => {
                pc += if a & k != 0 { jt as usize } else { jf as usize };
            }
        }
        pc += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::telnet_filter;
    use crate::packet::PacketGen;

    #[test]
    fn telnet_filter_accepts_telnet() {
        let prog = telnet_filter();
        let mut g = PacketGen::new(11);
        let p = g.telnet(32);
        assert!(run_filter(&prog, &p.bytes) > 0);
    }

    #[test]
    fn telnet_filter_rejects_others() {
        let prog = telnet_filter();
        let mut g = PacketGen::new(12);
        assert_eq!(run_filter(&prog, &g.tcp(80, 8).bytes), 0);
        assert_eq!(run_filter(&prog, &g.udp(53, 8).bytes), 0);
        assert_eq!(run_filter(&prog, &g.arp().bytes), 0);
    }

    #[test]
    fn truncated_packet_is_an_error() {
        let prog = telnet_filter();
        assert_eq!(run_filter(&prog, &[0u8; 4]), -1);
    }

    #[test]
    fn running_off_the_end_is_an_error() {
        assert_eq!(run_filter(&[Insn::LdAbsB(0)], &[9]), -1);
    }
}
