//! Filter programs: the telnet-accepting filter the paper measured, and
//! parameterized filter families for the sweep benchmarks.

use crate::insn::Insn;
use crate::packet::{ETHERTYPE_IP, IPPROTO_TCP, TELNET_PORT};

/// The classic "tcp dst port 23" filter (tcpdump's compilation of the
/// predicate, in our opcode subset):
///
/// ```text
/// (00) ldh [12]                       ; ethertype
/// (01) jeq #0x800     jt 0  jf 8      ; IPv4?        → (10) reject
/// (02) ldb [23]                       ; protocol
/// (03) jeq #6         jt 0  jf 6      ; TCP?         → (10)
/// (04) ldh [20]                       ; flags+frag
/// (05) jset #0x1fff   jt 4  jf 0      ; fragment?    → (10)
/// (06) ldxb 4*([14]&0xf)              ; X := IP header length
/// (07) ldh [x + 16]                   ; TCP dst port
/// (08) jeq #23        jt 0  jf 1      ; telnet?
/// (09) ret #262144                    ; accept
/// (10) ret #0                         ; reject
/// ```
pub fn telnet_filter() -> Vec<Insn> {
    port_filter(TELNET_PORT)
}

/// The same shape for an arbitrary TCP destination port.
pub fn port_filter(port: u16) -> Vec<Insn> {
    vec![
        Insn::LdAbsH(12),
        Insn::JeqK {
            k: ETHERTYPE_IP as i64,
            jt: 0,
            jf: 8,
        },
        Insn::LdAbsB(23),
        Insn::JeqK {
            k: IPPROTO_TCP as i64,
            jt: 0,
            jf: 6,
        },
        Insn::LdAbsH(20),
        Insn::JsetK {
            k: 0x1fff,
            jt: 4,
            jf: 0,
        },
        Insn::LdxMsh(14),
        Insn::LdIndH(16),
        Insn::JeqK {
            k: port as i64,
            jt: 0,
            jf: 1,
        },
        Insn::RetK(262144),
        Insn::RetK(0),
    ]
}

/// Accept TCP to any of `ports` (an OR-chain): used to sweep filter
/// length in the amortization benchmarks.
pub fn multi_port_filter(ports: &[u16]) -> Vec<Insn> {
    assert!(!ports.is_empty(), "at least one port required");
    let n = ports.len();
    let mut prog = vec![
        Insn::LdAbsH(12),
        // not IPv4 → reject, which sits n+5 slots ahead of pc 2
        Insn::JeqK {
            k: ETHERTYPE_IP as i64,
            jt: 0,
            jf: (n + 5) as u8,
        },
        Insn::LdAbsB(23),
        Insn::JeqK {
            k: IPPROTO_TCP as i64,
            jt: 0,
            jf: (n + 3) as u8,
        },
        Insn::LdxMsh(14),
        Insn::LdIndH(16),
    ];
    // pc 6..6+n-1: port tests; accept is at 6+n, reject at 6+n+1.
    for (i, &p) in ports.iter().enumerate() {
        let to_accept = (n - 1 - i) as u8;
        let to_reject = if i + 1 < n {
            0 // fall through to the next test
        } else {
            (n - i) as u8 // last test: jump over accept to reject
        };
        prog.push(Insn::JeqK {
            k: p as i64,
            jt: to_accept,
            jf: to_reject,
        });
    }
    prog.push(Insn::RetK(262144));
    prog.push(Insn::RetK(0));
    prog
}

/// A linear chain of `n` accumulator tests on the same loaded byte — a
/// degenerate filter family whose length is exactly `n + 3`, for scaling
/// studies of generation cost versus filter size.
pub fn chain_filter(n: usize) -> Vec<Insn> {
    let mut prog = vec![Insn::LdAbsB(0)];
    for i in 0..n {
        // Never-matching tests that fall through.
        prog.push(Insn::JeqK {
            k: 1000 + i as i64,
            jt: (n - i) as u8,
            jf: 0,
        });
    }
    prog.push(Insn::RetA);
    prog.push(Insn::RetK(0));
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::validate_filter;
    use crate::native::run_filter;
    use crate::packet::PacketGen;

    #[test]
    fn filters_are_statically_valid() {
        validate_filter(&telnet_filter()).unwrap();
        validate_filter(&multi_port_filter(&[22, 23, 80])).unwrap();
        validate_filter(&chain_filter(10)).unwrap();
        validate_filter(&chain_filter(0)).unwrap();
    }

    #[test]
    fn multi_port_accepts_each_listed_port() {
        let prog = multi_port_filter(&[22, 23, 80]);
        let mut g = PacketGen::new(5);
        for port in [22u16, 23, 80] {
            let p = g.tcp(port, 4);
            assert!(run_filter(&prog, &p.bytes) > 0, "port {port} accepted");
        }
        assert_eq!(run_filter(&prog, &g.tcp(443, 4).bytes), 0);
        assert_eq!(run_filter(&prog, &g.udp(23, 4).bytes), 0);
    }

    #[test]
    fn chain_filter_returns_first_byte() {
        let prog = chain_filter(5);
        assert_eq!(run_filter(&prog, &[77, 0, 0]), 77);
    }

    #[test]
    fn telnet_and_port_filter_agree() {
        let mut g = PacketGen::new(6);
        let p = g.telnet(4);
        assert_eq!(
            run_filter(&telnet_filter(), &p.bytes),
            run_filter(&port_filter(23), &p.bytes)
        );
    }
}
