//! The paper's §3.3 programs in MLbox — the interpretive packet filter
//! `evalpf` and its staged counterpart `bevalpf` — plus helpers to encode
//! Rust-side filters and packets into a running [`mlbox::Session`].

use crate::insn::Insn;
use crate::packet::Packet;
use ccam::value::Value;
use std::cell::RefCell;
use std::rc::Rc;

/// The BPF machine in MLbox: instruction datatype, the interpreter
/// `evalpf`, the staged `bevalpf`, and a memoizing variant `mkMemoBev`
/// that caches one generating extension per program point (§3.4 applied
/// to §3.3).
pub const BPF_ML: &str = r#"
datatype instruction =
    RET_A
  | RET_K of int
  | LD_ABS_H of int
  | LD_ABS_B of int
  | LD_IND_H of int
  | LD_IND_B of int
  | LDX_MSH of int
  | JEQ of int * int * int
  | JGT of int * int * int
  | JSET of int * int * int

(* val evalpf : instruction array * int array * int * int * int -> int
   Return the filter verdict; ~1 on error (paper §3.3). *)
fun evalpf (filter, pkt, A, X, pc) =
  if pc >= length filter then ~1
  else
    case sub (filter, pc) of
      RET_A => A
    | RET_K k => k
    | LD_ABS_H k =>
        if k + 1 >= length pkt then ~1
        else evalpf (filter, pkt, 256 * sub (pkt, k) + sub (pkt, k + 1), X, pc + 1)
    | LD_ABS_B k =>
        if k >= length pkt then ~1
        else evalpf (filter, pkt, sub (pkt, k), X, pc + 1)
    | LD_IND_H i =>
        let val k = X + i in
          if k + 1 >= length pkt then ~1
          else evalpf (filter, pkt, 256 * sub (pkt, k) + sub (pkt, k + 1), X, pc + 1)
        end
    | LD_IND_B i =>
        let val k = X + i in
          if k >= length pkt then ~1
          else evalpf (filter, pkt, sub (pkt, k), X, pc + 1)
        end
    | LDX_MSH k =>
        if k >= length pkt then ~1
        else evalpf (filter, pkt, A, 4 * (band (sub (pkt, k), 15)), pc + 1)
    | JEQ (k, jt, jf) =>
        evalpf (filter, pkt, A, X, pc + 1 + (if A = k then jt else jf))
    | JGT (k, jt, jf) =>
        evalpf (filter, pkt, A, X, pc + 1 + (if A > k then jt else jf))
    | JSET (k, jt, jf) =>
        evalpf (filter, pkt, A, X, pc + 1 + (if band (A, k) > 0 then jt else jf))

(* val runpf : instruction array * int array -> int *)
fun runpf (filter, pkt) = evalpf (filter, pkt, 0, 0, 0)

(* val bevalpf : instruction array * int ->
                 (int * int * int array -> int) $
   The staged interpreter: filter program and pc are early; the machine
   state (A, X) and the packet are late. Invoking the resulting generator
   produces CCAM code specialized to the filter — the interpretive
   dispatch, bounds arithmetic on the program, and all constants are gone
   (paper §3.3). *)
fun bevalpf (filter, pc) =
  if pc >= length filter then code (fn s => ~1)
  else
    case sub (filter, pc) of
      RET_A => code (fn (A, X, pkt) => A)
    | RET_K k =>
        let cogen k' = lift k
        in code (fn s => k') end
    | LD_ABS_H k =>
        let cogen ev = bevalpf (filter, pc + 1)
            cogen k' = lift k
        in code (fn (A, X, pkt) =>
             if k' + 1 >= length pkt then ~1
             else ev (256 * sub (pkt, k') + sub (pkt, k' + 1), X, pkt))
        end
    | LD_ABS_B k =>
        let cogen ev = bevalpf (filter, pc + 1)
            cogen k' = lift k
        in code (fn (A, X, pkt) =>
             if k' >= length pkt then ~1
             else ev (sub (pkt, k'), X, pkt))
        end
    | LD_IND_H i =>
        let cogen ev = bevalpf (filter, pc + 1)
            cogen i' = lift i
        in code (fn (A, X, pkt) =>
             let val k = X + i' in
               if k + 1 >= length pkt then ~1
               else ev (256 * sub (pkt, k) + sub (pkt, k + 1), X, pkt)
             end)
        end
    | LD_IND_B i =>
        let cogen ev = bevalpf (filter, pc + 1)
            cogen i' = lift i
        in code (fn (A, X, pkt) =>
             let val k = X + i' in
               if k >= length pkt then ~1
               else ev (sub (pkt, k), X, pkt)
             end)
        end
    | LDX_MSH k =>
        let cogen ev = bevalpf (filter, pc + 1)
            cogen k' = lift k
        in code (fn (A, X, pkt) =>
             if k' >= length pkt then ~1
             else ev (A, 4 * (band (sub (pkt, k'), 15)), pkt))
        end
    | JEQ (k, jt, jf) =>
        let cogen evt = bevalpf (filter, pc + 1 + jt)
            cogen evf = bevalpf (filter, pc + 1 + jf)
            cogen k' = lift k
        in code (fn (A, X, pkt) =>
             if A = k' then evt (A, X, pkt) else evf (A, X, pkt))
        end
    | JGT (k, jt, jf) =>
        let cogen evt = bevalpf (filter, pc + 1 + jt)
            cogen evf = bevalpf (filter, pc + 1 + jf)
            cogen k' = lift k
        in code (fn (A, X, pkt) =>
             if A > k' then evt (A, X, pkt) else evf (A, X, pkt))
        end
    | JSET (k, jt, jf) =>
        let cogen evt = bevalpf (filter, pc + 1 + jt)
            cogen evf = bevalpf (filter, pc + 1 + jf)
            cogen k' = lift k
        in code (fn (A, X, pkt) =>
             if band (A, k') > 0 then evt (A, X, pkt) else evf (A, X, pkt))
        end

(* Specialize a whole filter once and return the compiled predicate.
   Generation happens here (inside eval), not per packet. *)
fun compilepf filter =
  let val f = eval (bevalpf (filter, 0))
  in fn pkt => f (0, 0, pkt) end

(* A memoizing staged interpreter: caches the generating extension per
   program point, so shared jump targets are specialized once instead of
   being duplicated down both branches (extension of §3.4 to §3.3). *)
fun mkMemoBev filter =
  let
    val tbl = newTable ()
    fun mb pc =
      case lookup (tbl, pc) of
        SOME g => g
      | NONE => let val g = bev pc in (add (tbl, (pc, g)); g) end
    and bev pc =
      if pc >= length filter then code (fn s => ~1)
      else
        case sub (filter, pc) of
          RET_A => code (fn (A, X, pkt) => A)
        | RET_K k =>
            let cogen k' = lift k in code (fn s => k') end
        | LD_ABS_H k =>
            let cogen ev = mb (pc + 1)
                cogen k' = lift k
            in code (fn (A, X, pkt) =>
                 if k' + 1 >= length pkt then ~1
                 else ev (256 * sub (pkt, k') + sub (pkt, k' + 1), X, pkt))
            end
        | LD_ABS_B k =>
            let cogen ev = mb (pc + 1)
                cogen k' = lift k
            in code (fn (A, X, pkt) =>
                 if k' >= length pkt then ~1
                 else ev (sub (pkt, k'), X, pkt))
            end
        | LD_IND_H i =>
            let cogen ev = mb (pc + 1)
                cogen i' = lift i
            in code (fn (A, X, pkt) =>
                 let val k = X + i' in
                   if k + 1 >= length pkt then ~1
                   else ev (256 * sub (pkt, k) + sub (pkt, k + 1), X, pkt)
                 end)
            end
        | LD_IND_B i =>
            let cogen ev = mb (pc + 1)
                cogen i' = lift i
            in code (fn (A, X, pkt) =>
                 let val k = X + i' in
                   if k >= length pkt then ~1
                   else ev (sub (pkt, k), X, pkt)
                 end)
            end
        | LDX_MSH k =>
            let cogen ev = mb (pc + 1)
                cogen k' = lift k
            in code (fn (A, X, pkt) =>
                 if k' >= length pkt then ~1
                 else ev (A, 4 * (band (sub (pkt, k'), 15)), pkt))
            end
        | JEQ (k, jt, jf) =>
            let cogen evt = mb (pc + 1 + jt)
                cogen evf = mb (pc + 1 + jf)
                cogen k' = lift k
            in code (fn (A, X, pkt) =>
                 if A = k' then evt (A, X, pkt) else evf (A, X, pkt))
            end
        | JGT (k, jt, jf) =>
            let cogen evt = mb (pc + 1 + jt)
                cogen evf = mb (pc + 1 + jf)
                cogen k' = lift k
            in code (fn (A, X, pkt) =>
                 if A > k' then evt (A, X, pkt) else evf (A, X, pkt))
            end
        | JSET (k, jt, jf) =>
            let cogen evt = mb (pc + 1 + jt)
                cogen evf = mb (pc + 1 + jf)
                cogen k' = lift k
            in code (fn (A, X, pkt) =>
                 if band (A, k') > 0 then evt (A, X, pkt) else evf (A, X, pkt))
            end
  in mb 0 end
"#;

/// Renders one instruction as an MLbox constructor expression.
pub fn insn_to_ml(i: &Insn) -> String {
    match *i {
        Insn::RetA => "RET_A".to_string(),
        Insn::RetK(k) => format!("RET_K {}", ml_int(k)),
        Insn::LdAbsH(k) => format!("LD_ABS_H {}", ml_int(k)),
        Insn::LdAbsB(k) => format!("LD_ABS_B {}", ml_int(k)),
        Insn::LdIndH(k) => format!("LD_IND_H {}", ml_int(k)),
        Insn::LdIndB(k) => format!("LD_IND_B {}", ml_int(k)),
        Insn::LdxMsh(k) => format!("LDX_MSH {}", ml_int(k)),
        Insn::JeqK { k, jt, jf } => format!("JEQ ({}, {jt}, {jf})", ml_int(k)),
        Insn::JgtK { k, jt, jf } => format!("JGT ({}, {jt}, {jf})", ml_int(k)),
        Insn::JsetK { k, jt, jf } => format!("JSET ({}, {jt}, {jf})", ml_int(k)),
    }
}

fn ml_int(n: i64) -> String {
    if n < 0 {
        format!("~{}", n.unsigned_abs())
    } else {
        n.to_string()
    }
}

/// Renders a filter program as an MLbox declaration
/// `val <name> = fromList ([...], RET_A)` (an `instruction array`).
pub fn filter_decl(name: &str, prog: &[Insn]) -> String {
    let items: Vec<String> = prog.iter().map(insn_to_ml).collect();
    format!("val {name} = fromList ([{}], RET_A)", items.join(", "))
}

/// Converts a packet to a CCAM `int array` value (one integer per byte),
/// injectable via [`mlbox::Session::call`].
pub fn packet_value(p: &Packet) -> Value {
    Value::Array(Rc::new(RefCell::new(
        p.bytes.iter().map(|&b| Value::Int(b as i64)).collect(),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::telnet_filter;

    #[test]
    fn instruction_rendering() {
        assert_eq!(insn_to_ml(&Insn::RetK(0)), "RET_K 0");
        assert_eq!(
            insn_to_ml(&Insn::JeqK {
                k: 2048,
                jt: 0,
                jf: 8
            }),
            "JEQ (2048, 0, 8)"
        );
        assert_eq!(insn_to_ml(&Insn::RetK(-1)), "RET_K ~1");
    }

    #[test]
    fn filter_decl_is_parseable_source() {
        let decl = filter_decl("telnetFilter", &telnet_filter());
        assert!(decl.starts_with("val telnetFilter = fromList (["));
        assert!(decl.contains("LDX_MSH 14"));
        mlbox_syntax::parser::parse_program(&decl).unwrap();
    }
}
