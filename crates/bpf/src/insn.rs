//! The BPF instruction subset (§3.3 of the paper, after the BSD packet
//! filter of McCanne–Jacobson).
//!
//! The virtual machine has an accumulator `A`, an index register `X`, a
//! program counter, and reads a byte-addressed packet. Branch offsets are
//! relative to the *next* instruction, as in BSD BPF.

use mlbox::fingerprint::Fnv1a;
use std::fmt;

/// One BPF instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insn {
    /// Return the accumulator.
    RetA,
    /// Return the constant `k`.
    RetK(i64),
    /// `A := P[k..k+2]` (big-endian halfword at absolute offset).
    LdAbsH(i64),
    /// `A := P[k]` (byte at absolute offset).
    LdAbsB(i64),
    /// `A := P[X+k..X+k+2]`.
    LdIndH(i64),
    /// `A := P[X+k]` (the paper's `LD_IND`).
    LdIndB(i64),
    /// `X := 4 * (P[k] & 0x0f)` — the IP header-length idiom (`ldxb
    /// 4*([k]&0xf)`).
    LdxMsh(i64),
    /// If `A = k` jump `jt` else `jf` (relative to the next instruction).
    JeqK {
        /// Comparison constant.
        k: i64,
        /// True offset.
        jt: u8,
        /// False offset.
        jf: u8,
    },
    /// If `A > k` jump `jt` else `jf`.
    JgtK {
        /// Comparison constant.
        k: i64,
        /// True offset.
        jt: u8,
        /// False offset.
        jf: u8,
    },
    /// If `A & k != 0` jump `jt` else `jf`.
    JsetK {
        /// Mask.
        k: i64,
        /// True offset.
        jt: u8,
        /// False offset.
        jf: u8,
    },
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::RetA => write!(f, "ret A"),
            Insn::RetK(k) => write!(f, "ret #{k}"),
            Insn::LdAbsH(k) => write!(f, "ldh [{k}]"),
            Insn::LdAbsB(k) => write!(f, "ldb [{k}]"),
            Insn::LdIndH(k) => write!(f, "ldh [x + {k}]"),
            Insn::LdIndB(k) => write!(f, "ldb [x + {k}]"),
            Insn::LdxMsh(k) => write!(f, "ldxb 4*([{k}]&0xf)"),
            Insn::JeqK { k, jt, jf } => write!(f, "jeq #{k} jt {jt} jf {jf}"),
            Insn::JgtK { k, jt, jf } => write!(f, "jgt #{k} jt {jt} jf {jf}"),
            Insn::JsetK { k, jt, jf } => write!(f, "jset #{k} jt {jt} jf {jf}"),
        }
    }
}

/// A stable 64-bit fingerprint of a filter program, used as the
/// program half of the serving layer's specialization-cache key.
///
/// The digest hashes an explicit canonical encoding — a length prefix,
/// then per instruction an opcode tag byte followed by its operands in
/// declaration order — rather than `#[derive(Hash)]` output, so the
/// value does not depend on the Rust release or the enum's in-memory
/// layout. Re-encoding the same program always reproduces the same
/// fingerprint; programs differing in any opcode, constant, or jump
/// offset get different encodings (and, FNV collisions aside, different
/// fingerprints).
pub fn fingerprint(prog: &[Insn]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(prog.len() as u64);
    for insn in prog {
        match *insn {
            Insn::RetA => h.write_u8(0),
            Insn::RetK(k) => {
                h.write_u8(1);
                h.write_i64(k);
            }
            Insn::LdAbsH(k) => {
                h.write_u8(2);
                h.write_i64(k);
            }
            Insn::LdAbsB(k) => {
                h.write_u8(3);
                h.write_i64(k);
            }
            Insn::LdIndH(k) => {
                h.write_u8(4);
                h.write_i64(k);
            }
            Insn::LdIndB(k) => {
                h.write_u8(5);
                h.write_i64(k);
            }
            Insn::LdxMsh(k) => {
                h.write_u8(6);
                h.write_i64(k);
            }
            Insn::JeqK { k, jt, jf } => {
                h.write_u8(7);
                h.write_i64(k);
                h.write_u8(jt);
                h.write_u8(jf);
            }
            Insn::JgtK { k, jt, jf } => {
                h.write_u8(8);
                h.write_i64(k);
                h.write_u8(jt);
                h.write_u8(jf);
            }
            Insn::JsetK { k, jt, jf } => {
                h.write_u8(9);
                h.write_i64(k);
                h.write_u8(jt);
                h.write_u8(jf);
            }
        }
    }
    h.finish()
}

/// Checks the static validity of a filter program: all jump targets must
/// land inside the program (BPF programs are loop-free by construction
/// since jumps only go forward).
pub fn validate_filter(prog: &[Insn]) -> Result<(), String> {
    for (pc, insn) in prog.iter().enumerate() {
        let check = |off: u8| -> Result<(), String> {
            let target = pc + 1 + off as usize;
            if target >= prog.len() {
                Err(format!(
                    "instruction {pc} ({insn}) jumps to {target}, past the end ({})",
                    prog.len()
                ))
            } else {
                Ok(())
            }
        };
        match insn {
            Insn::JeqK { jt, jf, .. } | Insn::JgtK { jt, jf, .. } | Insn::JsetK { jt, jf, .. } => {
                check(*jt)?;
                check(*jf)?;
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_tcpdump_like() {
        assert_eq!(Insn::LdAbsH(12).to_string(), "ldh [12]");
        assert_eq!(
            Insn::JeqK {
                k: 2048,
                jt: 0,
                jf: 8
            }
            .to_string(),
            "jeq #2048 jt 0 jf 8"
        );
    }

    #[test]
    fn fingerprints_are_stable_across_reencodings() {
        let build = || {
            vec![
                Insn::LdAbsH(12),
                Insn::JeqK {
                    k: 2048,
                    jt: 0,
                    jf: 2,
                },
                Insn::RetK(1),
                Insn::RetK(0),
            ]
        };
        let a = build();
        let b = build();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }

    #[test]
    fn distinct_filters_get_distinct_fingerprints() {
        let filters: Vec<Vec<Insn>> = vec![
            crate::filters::telnet_filter(),
            crate::filters::port_filter(80),
            crate::filters::port_filter(22),
            crate::filters::multi_port_filter(&[22, 23, 80]),
            crate::filters::chain_filter(4),
            crate::filters::chain_filter(5),
            vec![Insn::RetA],
            vec![Insn::RetK(0)],
            vec![Insn::RetK(1)],
            // Same opcodes, different jump offsets.
            vec![Insn::JeqK { k: 0, jt: 0, jf: 0 }, Insn::RetK(0)],
            vec![Insn::JeqK { k: 0, jt: 0, jf: 0 }, Insn::RetK(9)],
        ];
        let mut seen = std::collections::HashMap::new();
        for f in &filters {
            if let Some(prev) = seen.insert(fingerprint(f), f.clone()) {
                panic!("fingerprint collision between {prev:?} and {f:?}");
            }
        }
    }

    #[test]
    fn validate_catches_out_of_range_jumps() {
        let bad = vec![Insn::JeqK { k: 0, jt: 5, jf: 0 }, Insn::RetK(0)];
        assert!(validate_filter(&bad).is_err());
        let ok = vec![Insn::JeqK { k: 0, jt: 0, jf: 0 }, Insn::RetK(0)];
        assert!(validate_filter(&ok).is_ok());
    }
}
