//! Synthetic network packets.
//!
//! The paper measured `evalpf`/`bevalpf` on telnet packets; we have no
//! captured traces, so we synthesize Ethernet/IPv4/TCP frames (destination
//! port 23 for telnet) plus UDP and ARP distractors (DESIGN.md §5). The
//! packet-filter computation inspects only header fields, so step counts
//! are workload-equivalent to real traffic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ethernet type for IPv4.
pub const ETHERTYPE_IP: u16 = 0x0800;
/// Ethernet type for ARP.
pub const ETHERTYPE_ARP: u16 = 0x0806;
/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;
/// The telnet TCP port.
pub const TELNET_PORT: u16 = 23;

/// A synthesized packet: raw bytes starting at the Ethernet header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Raw frame bytes.
    pub bytes: Vec<u8>,
    /// Human-readable description of what was synthesized.
    pub kind: PacketKind,
}

/// What a synthesized packet contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// TCP with the given destination port.
    Tcp {
        /// Destination port.
        dst_port: u16,
    },
    /// UDP with the given destination port.
    Udp {
        /// Destination port.
        dst_port: u16,
    },
    /// An ARP frame.
    Arp,
}

/// Deterministic packet generator.
#[derive(Debug)]
pub struct PacketGen {
    rng: StdRng,
}

impl PacketGen {
    /// A generator with a fixed seed (reproducible workloads).
    pub fn new(seed: u64) -> Self {
        PacketGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn eth_header(&mut self, ethertype: u16, out: &mut Vec<u8>) {
        for _ in 0..12 {
            out.push(self.rng.gen());
        }
        out.extend_from_slice(&ethertype.to_be_bytes());
    }

    fn ipv4_header(&mut self, proto: u8, payload_len: u16, out: &mut Vec<u8>) {
        out.push(0x45); // version 4, IHL 5 (20 bytes)
        out.push(0); // TOS
        out.extend_from_slice(&(20 + payload_len).to_be_bytes()); // total length
        out.extend_from_slice(&self.rng.gen::<u16>().to_be_bytes()); // id
        out.extend_from_slice(&0x4000u16.to_be_bytes()); // DF, fragment offset 0
        out.push(64); // TTL
        out.push(proto);
        out.extend_from_slice(&[0, 0]); // checksum (unverified by filters)
        for _ in 0..8 {
            out.push(self.rng.gen()); // src + dst IP
        }
    }

    fn tcp_header(&mut self, dst_port: u16, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.rng.gen_range(1024u16..65535).to_be_bytes()); // src port
        out.extend_from_slice(&dst_port.to_be_bytes());
        for _ in 0..8 {
            out.push(self.rng.gen()); // seq + ack
        }
        out.push(0x50); // data offset 5
        out.push(0x18); // PSH|ACK
        out.extend_from_slice(&1024u16.to_be_bytes()); // window
        out.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
    }

    fn udp_header(&mut self, dst_port: u16, payload_len: u16, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.rng.gen_range(1024u16..65535).to_be_bytes());
        out.extend_from_slice(&dst_port.to_be_bytes());
        out.extend_from_slice(&(8 + payload_len).to_be_bytes());
        out.extend_from_slice(&[0, 0]);
    }

    /// A TCP packet to the given destination port with a random payload of
    /// `payload_len` bytes.
    pub fn tcp(&mut self, dst_port: u16, payload_len: usize) -> Packet {
        let mut bytes = Vec::with_capacity(14 + 20 + 20 + payload_len);
        self.eth_header(ETHERTYPE_IP, &mut bytes);
        self.ipv4_header(IPPROTO_TCP, (20 + payload_len) as u16, &mut bytes);
        self.tcp_header(dst_port, &mut bytes);
        for _ in 0..payload_len {
            bytes.push(self.rng.gen());
        }
        Packet {
            bytes,
            kind: PacketKind::Tcp { dst_port },
        }
    }

    /// A telnet packet (TCP destination port 23).
    pub fn telnet(&mut self, payload_len: usize) -> Packet {
        self.tcp(TELNET_PORT, payload_len)
    }

    /// A UDP packet to the given destination port.
    pub fn udp(&mut self, dst_port: u16, payload_len: usize) -> Packet {
        let mut bytes = Vec::with_capacity(14 + 20 + 8 + payload_len);
        self.eth_header(ETHERTYPE_IP, &mut bytes);
        self.ipv4_header(IPPROTO_UDP, (8 + payload_len) as u16, &mut bytes);
        self.udp_header(dst_port, payload_len as u16, &mut bytes);
        for _ in 0..payload_len {
            bytes.push(self.rng.gen());
        }
        Packet {
            bytes,
            kind: PacketKind::Udp { dst_port },
        }
    }

    /// An ARP request frame.
    pub fn arp(&mut self) -> Packet {
        let mut bytes = Vec::with_capacity(14 + 28);
        self.eth_header(ETHERTYPE_ARP, &mut bytes);
        bytes.extend_from_slice(&[0, 1, 8, 0, 6, 4, 0, 1]); // eth/ip/sizes/request
        for _ in 0..20 {
            bytes.push(self.rng.gen());
        }
        Packet {
            bytes,
            kind: PacketKind::Arp,
        }
    }

    /// A mixed workload: `n` packets, roughly `telnet_fraction` of which
    /// are telnet, the rest TCP to other ports, UDP, or ARP.
    pub fn workload(&mut self, n: usize, telnet_fraction: f64) -> Vec<Packet> {
        (0..n)
            .map(|_| {
                if self.rng.gen_bool(telnet_fraction) {
                    let len = self.rng_payload();
                    self.telnet(len)
                } else {
                    match self.rng.gen_range(0..3u8) {
                        0 => {
                            let port = self.non_telnet_port();
                            let len = self.rng_payload();
                            self.tcp(port, len)
                        }
                        1 => {
                            let port = self.non_telnet_port();
                            let len = self.rng_payload();
                            self.udp(port, len)
                        }
                        _ => self.arp(),
                    }
                }
            })
            .collect()
    }

    fn rng_payload(&mut self) -> usize {
        self.rng.gen_range(0..64)
    }

    fn non_telnet_port(&mut self) -> u16 {
        loop {
            let p = self.rng.gen_range(1u16..1024);
            if p != TELNET_PORT {
                return p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telnet_packet_has_port_23() {
        let mut g = PacketGen::new(1);
        let p = g.telnet(10);
        // Ethernet 14 + IP 20 → TCP header; dst port at offset 36..38.
        assert_eq!(u16::from_be_bytes([p.bytes[36], p.bytes[37]]), 23);
        assert_eq!(u16::from_be_bytes([p.bytes[12], p.bytes[13]]), ETHERTYPE_IP);
        assert_eq!(p.bytes[23], IPPROTO_TCP);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = PacketGen::new(7).telnet(16);
        let b = PacketGen::new(7).telnet(16);
        assert_eq!(a, b);
    }

    #[test]
    fn workload_mix_contains_both_kinds() {
        let mut g = PacketGen::new(3);
        let w = g.workload(200, 0.5);
        let telnet = w
            .iter()
            .filter(|p| matches!(p.kind, PacketKind::Tcp { dst_port: 23 }))
            .count();
        assert!(telnet > 50 && telnet < 150, "telnet count {telnet}");
    }

    #[test]
    fn arp_frames_have_arp_ethertype() {
        let mut g = PacketGen::new(4);
        let p = g.arp();
        assert_eq!(
            u16::from_be_bytes([p.bytes[12], p.bytes[13]]),
            ETHERTYPE_ARP
        );
    }
}
