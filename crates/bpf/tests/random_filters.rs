//! Property-based differential testing of the packet-filter stack:
//! random (statically valid) BPF programs and random packets must get the
//! same verdict from the native Rust interpreter, the MLbox interpreter
//! `evalpf`, and the run-time-specialized `bevalpf` code.

use mlbox_bpf::harness::FilterHarness;
use mlbox_bpf::insn::{validate_filter, Insn};
use mlbox_bpf::native::run_filter;
use mlbox_bpf::packet::{Packet, PacketGen, PacketKind};
use proptest::prelude::*;

fn insn_strategy() -> impl Strategy<Value = Insn> {
    prop_oneof![
        Just(Insn::RetA),
        (0i64..70000).prop_map(Insn::RetK),
        (0i64..80).prop_map(Insn::LdAbsH),
        (0i64..80).prop_map(Insn::LdAbsB),
        (0i64..40).prop_map(Insn::LdIndH),
        (0i64..40).prop_map(Insn::LdIndB),
        (0i64..40).prop_map(Insn::LdxMsh),
        (0i64..70000, 0u8..3, 0u8..3).prop_map(|(k, jt, jf)| Insn::JeqK { k, jt, jf }),
        (0i64..70000, 0u8..3, 0u8..3).prop_map(|(k, jt, jf)| Insn::JgtK { k, jt, jf }),
        (0i64..70000, 0u8..3, 0u8..3).prop_map(|(k, jt, jf)| Insn::JsetK { k, jt, jf }),
    ]
}

/// Random filter: a body of arbitrary instructions followed by enough
/// `ret` sentinels that every jump (offset < 3) stays in range.
fn filter_strategy() -> impl Strategy<Value = Vec<Insn>> {
    proptest::collection::vec(insn_strategy(), 1..10).prop_map(|mut body| {
        body.extend([Insn::RetK(0), Insn::RetK(1), Insn::RetK(2), Insn::RetA]);
        body
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_backends_agree_on_random_filters(filter in filter_strategy(), seed in 0u64..1000) {
        prop_assume!(validate_filter(&filter).is_ok());
        let mut h = FilterHarness::new(&filter).unwrap();
        let mut g = PacketGen::new(seed);
        let packets = [
            g.telnet(8),
            g.tcp(80, 0),
            g.udp(53, 4),
            g.arp(),
            Packet { bytes: vec![], kind: PacketKind::Arp },
            Packet { bytes: vec![255; 3], kind: PacketKind::Arp },
        ];
        for pkt in &packets {
            let native = run_filter(&filter, &pkt.bytes);
            let (iv, _) = h.interp(pkt).unwrap();
            prop_assert_eq!(native, iv, "interp mismatch on {:?}", pkt.kind);
            let (sv, _) = h.specialized(pkt).unwrap();
            prop_assert_eq!(native, sv, "specialized mismatch on {:?}", pkt.kind);
        }
    }

    #[test]
    fn specialization_emission_is_linear_in_reachable_code(n in 1usize..24) {
        // Chain filters: emitted instructions grow linearly (no
        // exponential blowup from the branch-free shape).
        let mut h = FilterHarness::new(&mlbox_bpf::filters::chain_filter(n)).unwrap();
        let stats = h.specialize().unwrap();
        // Measured: emitted = 69 + 63n (each test emits a constant amount
        // plus a constant-size specialized jump target).
        prop_assert!(stats.emitted as usize <= 80 + 70 * n, "emitted {}", stats.emitted);
    }
}
