//! Type-inference properties over generated programs.

use mlbox_ir::elab::Elab;
use mlbox_syntax::parser::parse_expr;
use mlbox_types::check::{Checker, TypeCtx};
use proptest::prelude::*;

fn infer(src: &str) -> Result<String, String> {
    let e = parse_expr(src).map_err(|d| d.to_string())?;
    let mut elab = Elab::new();
    let core = elab.elab_expr(&e).map_err(|d| d.to_string())?;
    let mut ck = Checker::new();
    let tcx = TypeCtx {
        data: &elab.data,
        abbrevs: &elab.abbrevs,
    };
    let t = ck.infer(&core, tcx).map_err(|d| d.to_string())?;
    Ok(ck.display_type(&t, &elab.data))
}

fn int_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0i64..100).prop_map(|n| n.to_string()),
        Just("v".to_string()),
    ];
    leaf.prop_recursive(depth, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, a, b)| format!("(if {c} = {a} then {a} else {b})")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("(let val v = {a} in {b} end)")),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_int_expressions_have_type_int(body in int_expr(4)) {
        let t = infer(&format!("(fn v => {body}) 3")).unwrap();
        prop_assert_eq!(t, "int");
    }

    #[test]
    fn code_wraps_in_box(body in int_expr(3)) {
        // `+ v` pins the parameter type (the body may shadow or ignore v).
        let t = infer(&format!("code (fn v => {body} + v)")).unwrap();
        prop_assert_eq!(t, "(int -> int) $");
    }

    #[test]
    fn lift_wraps_in_box(body in int_expr(3)) {
        let t = infer(&format!("(fn v => lift ({body} + v))")).unwrap();
        prop_assert_eq!(t, "int -> int $");
    }

    #[test]
    fn staging_violations_always_rejected(body in int_expr(2)) {
        // y is a stage-0 value variable used inside code: always an error,
        // whatever the surrounding expression shape.
        let r = infer(&format!("fn y => code (fn v => {body} + y)"));
        prop_assert!(r.is_err());
    }

    #[test]
    fn eval_inverts_code(body in int_expr(3)) {
        let direct = infer(&format!("(fn v => {body}) 1")).unwrap();
        let staged = infer(&format!(
            "(fn c => let cogen u = c in u end) (code (fn v => {body})) 1"
        ))
        .unwrap();
        prop_assert_eq!(direct, staged);
    }
}
