//! Modal type checker for MLbox: Hindley–Milner inference with
//! let-polymorphism (value restriction) over the dual-context typing rules
//! of λ□ (the paper's Figure 2).
//!
//! The modal type `□A` (concrete syntax `A $`) classifies *generators for
//! code of type `A`*. Two contexts are maintained — Δ for code variables,
//! Γ for value variables — and checking `code M` clears Γ, so referencing
//! a not-yet-available (or no-longer-available) variable is a **type
//! error**, not a run-time crash: "a staging error becomes a type error
//! which can be analyzed and fixed" (§1).
//!
//! # Examples
//!
//! ```
//! use mlbox_ir::elab::Elab;
//! use mlbox_syntax::parser::parse_expr;
//! use mlbox_types::{Checker, TypeCtx};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut elab = Elab::new();
//! let core = elab.elab_expr(&parse_expr("code (fn x => x + 1)")?)?;
//! // A staging violation is elaborated fine but rejected by the checker:
//! let bad = elab.elab_expr(&parse_expr("fn y => code (fn x => x + y)")?)?;
//!
//! let mut checker = Checker::new();
//! let tcx = TypeCtx { data: &elab.data, abbrevs: &elab.abbrevs };
//! let t = checker.infer(&core, tcx)?;
//! assert_eq!(checker.display_type(&t, &elab.data), "(int -> int) $");
//! assert!(checker.infer(&bad, tcx).is_err());
//! # Ok(())
//! # }
//! ```

pub mod check;
pub mod ty;

pub use check::{Checker, TypeCtx};
pub use ty::{render, Scheme, TvGen, Type};
