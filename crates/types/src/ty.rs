//! Semantic types, unification variables, schemes, and unification.
//!
//! Standard Hindley–Milner machinery (mutable unification variables with
//! Rémy-style levels for efficient generalization) over a type language
//! extended with the modal constructor `□A` (`Box`).

use mlbox_ir::data::{DataEnv, DataId};
use std::cell::RefCell;
use std::rc::Rc;

/// A unification variable's state.
#[derive(Debug)]
pub enum TvState {
    /// Not yet solved; `level` is the let-nesting depth at creation.
    Unbound {
        /// Unique id (for printing and occurs checks).
        id: u32,
        /// Binding level for generalization.
        level: u32,
    },
    /// Solved: behaves as the linked type.
    Link(Type),
}

/// A shared, mutable unification variable.
pub type Tv = Rc<RefCell<TvState>>;

/// A semantic type.
#[derive(Debug, Clone)]
pub enum Type {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `string`
    Str,
    /// `unit`
    Unit,
    /// A unification variable.
    Var(Tv),
    /// A scheme parameter (only inside [`Scheme`] bodies).
    Param(u32),
    /// `A -> B`
    Arrow(Rc<Type>, Rc<Type>),
    /// `A * B * ...` (arity >= 2)
    Tuple(Rc<Vec<Type>>),
    /// `□A` — the modal type of generators for code of type `A`
    /// (written `A $` in the concrete syntax).
    Box(Rc<Type>),
    /// An applied datatype.
    Data(DataId, Rc<Vec<Type>>),
    /// `A ref`
    Ref(Rc<Type>),
    /// `A array`
    Array(Rc<Type>),
}

/// A type scheme `∀ params. body`.
#[derive(Debug, Clone)]
pub struct Scheme {
    /// Number of quantified parameters (`Param(0..count)`).
    pub params: u32,
    /// The body, mentioning `Param`s.
    pub body: Type,
}

impl Scheme {
    /// A monomorphic scheme.
    pub fn mono(t: Type) -> Scheme {
        Scheme { params: 0, body: t }
    }
}

/// Fresh-variable supply and level tracking.
#[derive(Debug, Default)]
pub struct TvGen {
    next: u32,
    level: u32,
}

impl TvGen {
    /// A fresh supply at level 0.
    pub fn new() -> TvGen {
        TvGen::default()
    }

    /// A fresh unbound variable at the current level.
    pub fn fresh(&mut self) -> Type {
        let id = self.next;
        self.next += 1;
        Type::Var(Rc::new(RefCell::new(TvState::Unbound {
            id,
            level: self.level,
        })))
    }

    /// Enters a let right-hand side (increments the level).
    pub fn enter_level(&mut self) {
        self.level += 1;
    }

    /// Leaves a let right-hand side.
    pub fn leave_level(&mut self) {
        self.level -= 1;
    }

    /// The current level.
    pub fn level(&self) -> u32 {
        self.level
    }
}

/// A unification failure: the two types that did not match (after
/// resolution), for error reporting.
#[derive(Debug, Clone)]
pub struct UnifyError {
    /// Rendering of the expected type.
    pub expected: String,
    /// Rendering of the found type.
    pub found: String,
    /// Whether the failure was an occurs-check (infinite type).
    pub occurs: bool,
}

/// Follows `Link`s to the representative.
pub fn resolve(t: &Type) -> Type {
    match t {
        Type::Var(tv) => {
            let state = tv.borrow();
            match &*state {
                TvState::Link(inner) => {
                    let r = resolve(inner);
                    drop(state);
                    // Path compression.
                    *tv.borrow_mut() = TvState::Link(r.clone());
                    r
                }
                TvState::Unbound { .. } => t.clone(),
            }
        }
        other => other.clone(),
    }
}

fn occurs_adjust(tv: &Tv, t: &Type) -> bool {
    match &resolve(t) {
        Type::Var(other) => {
            if Rc::ptr_eq(tv, other) {
                return true;
            }
            // Level adjustment: the variable escapes into an outer scope.
            let min_level = match &*tv.borrow() {
                TvState::Unbound { level, .. } => *level,
                TvState::Link(_) => unreachable!("tv is unbound during occurs check"),
            };
            let mut state = other.borrow_mut();
            if let TvState::Unbound { level, .. } = &mut *state {
                if *level > min_level {
                    *level = min_level;
                }
            }
            false
        }
        Type::Arrow(a, b) => occurs_adjust(tv, a) || occurs_adjust(tv, b),
        Type::Tuple(parts) => parts.iter().any(|p| occurs_adjust(tv, p)),
        Type::Box(inner) | Type::Ref(inner) | Type::Array(inner) => occurs_adjust(tv, inner),
        Type::Data(_, args) => args.iter().any(|a| occurs_adjust(tv, a)),
        _ => false,
    }
}

/// Unifies two types in place.
///
/// # Errors
///
/// Returns a [`UnifyError`] when the types clash or the occurs check
/// fails; renderings use `data` for datatype names.
pub fn unify(a: &Type, b: &Type, data: &DataEnv) -> Result<(), UnifyError> {
    let ra = resolve(a);
    let rb = resolve(b);
    match (&ra, &rb) {
        (Type::Var(x), Type::Var(y)) if Rc::ptr_eq(x, y) => Ok(()),
        (Type::Var(x), _) => {
            if occurs_adjust(x, &rb) {
                return Err(UnifyError {
                    expected: render(&ra, data),
                    found: render(&rb, data),
                    occurs: true,
                });
            }
            *x.borrow_mut() = TvState::Link(rb);
            Ok(())
        }
        (_, Type::Var(y)) => {
            if occurs_adjust(y, &ra) {
                return Err(UnifyError {
                    expected: render(&ra, data),
                    found: render(&rb, data),
                    occurs: true,
                });
            }
            *y.borrow_mut() = TvState::Link(ra);
            Ok(())
        }
        (Type::Int, Type::Int)
        | (Type::Bool, Type::Bool)
        | (Type::Str, Type::Str)
        | (Type::Unit, Type::Unit) => Ok(()),
        (Type::Arrow(a1, b1), Type::Arrow(a2, b2)) => {
            unify(a1, a2, data)?;
            unify(b1, b2, data)
        }
        (Type::Tuple(p1), Type::Tuple(p2)) if p1.len() == p2.len() => {
            for (x, y) in p1.iter().zip(p2.iter()) {
                unify(x, y, data)?;
            }
            Ok(())
        }
        (Type::Box(i1), Type::Box(i2)) => unify(i1, i2, data),
        (Type::Ref(i1), Type::Ref(i2)) => unify(i1, i2, data),
        (Type::Array(i1), Type::Array(i2)) => unify(i1, i2, data),
        (Type::Data(d1, a1), Type::Data(d2, a2)) if d1 == d2 && a1.len() == a2.len() => {
            for (x, y) in a1.iter().zip(a2.iter()) {
                unify(x, y, data)?;
            }
            Ok(())
        }
        _ => Err(UnifyError {
            expected: render(&ra, data),
            found: render(&rb, data),
            occurs: false,
        }),
    }
}

/// Generalizes a type at the current level: unbound variables deeper than
/// `level` become scheme parameters.
pub fn generalize(t: &Type, level: u32) -> Scheme {
    let mut params: Vec<*const RefCell<TvState>> = Vec::new();
    fn walk(t: &Type, level: u32, params: &mut Vec<*const RefCell<TvState>>) -> Type {
        match &resolve(t) {
            Type::Var(tv) => {
                let is_deep = matches!(
                    &*tv.borrow(),
                    TvState::Unbound { level: l, .. } if *l > level
                );
                if is_deep {
                    let ptr = Rc::as_ptr(tv);
                    let idx = params.iter().position(|p| *p == ptr).unwrap_or_else(|| {
                        params.push(ptr);
                        params.len() - 1
                    });
                    Type::Param(idx as u32)
                } else {
                    Type::Var(tv.clone())
                }
            }
            Type::Arrow(a, b) => Type::Arrow(
                Rc::new(walk(a, level, params)),
                Rc::new(walk(b, level, params)),
            ),
            Type::Tuple(parts) => Type::Tuple(Rc::new(
                parts.iter().map(|p| walk(p, level, params)).collect(),
            )),
            Type::Box(i) => Type::Box(Rc::new(walk(i, level, params))),
            Type::Ref(i) => Type::Ref(Rc::new(walk(i, level, params))),
            Type::Array(i) => Type::Array(Rc::new(walk(i, level, params))),
            Type::Data(d, args) => Type::Data(
                *d,
                Rc::new(args.iter().map(|a| walk(a, level, params)).collect()),
            ),
            other => other.clone(),
        }
    }
    let body = walk(t, level, &mut params);
    Scheme {
        params: params.len() as u32,
        body,
    }
}

/// Instantiates a scheme with fresh variables.
pub fn instantiate(s: &Scheme, gen: &mut TvGen) -> Type {
    if s.params == 0 {
        return s.body.clone();
    }
    let fresh: Vec<Type> = (0..s.params).map(|_| gen.fresh()).collect();
    subst_params(&s.body, &fresh)
}

/// Substitutes `Param(i)` with `args[i]`.
pub fn subst_params(t: &Type, args: &[Type]) -> Type {
    match t {
        Type::Param(i) => args[*i as usize].clone(),
        Type::Var(_) => t.clone(),
        Type::Arrow(a, b) => Type::Arrow(
            Rc::new(subst_params(a, args)),
            Rc::new(subst_params(b, args)),
        ),
        Type::Tuple(parts) => Type::Tuple(Rc::new(
            parts.iter().map(|p| subst_params(p, args)).collect(),
        )),
        Type::Box(i) => Type::Box(Rc::new(subst_params(i, args))),
        Type::Ref(i) => Type::Ref(Rc::new(subst_params(i, args))),
        Type::Array(i) => Type::Array(Rc::new(subst_params(i, args))),
        Type::Data(d, as_) => Type::Data(
            *d,
            Rc::new(as_.iter().map(|a| subst_params(a, args)).collect()),
        ),
        other => other.clone(),
    }
}

/// Renders a type in the concrete syntax (`int list`, `(int -> int) $`,
/// `'a * 'b`).
pub fn render(t: &Type, data: &DataEnv) -> String {
    fn atom(t: &Type, data: &DataEnv) -> String {
        let s = go(t, data);
        match resolve(t) {
            Type::Arrow(_, _) | Type::Tuple(_) => format!("({s})"),
            _ => s,
        }
    }
    fn go(t: &Type, data: &DataEnv) -> String {
        match &resolve(t) {
            Type::Int => "int".into(),
            Type::Bool => "bool".into(),
            Type::Str => "string".into(),
            Type::Unit => "unit".into(),
            Type::Var(tv) => match &*tv.borrow() {
                TvState::Unbound { id, .. } => format!("'_{id}"),
                TvState::Link(_) => unreachable!("resolved"),
            },
            Type::Param(i) => format!("'{}", param_name(*i)),
            Type::Arrow(a, b) => format!("{} -> {}", atom(a, data), go(b, data)),
            Type::Tuple(parts) => parts
                .iter()
                .map(|p| atom(p, data))
                .collect::<Vec<_>>()
                .join(" * "),
            Type::Box(i) => format!("{} $", atom(i, data)),
            Type::Ref(i) => format!("{} ref", atom(i, data)),
            Type::Array(i) => format!("{} array", atom(i, data)),
            Type::Data(d, args) => {
                let name = &data.datatype(*d).name;
                match args.len() {
                    0 => name.clone(),
                    1 => format!("{} {}", atom(&args[0], data), name),
                    _ => format!(
                        "({}) {}",
                        args.iter()
                            .map(|a| go(a, data))
                            .collect::<Vec<_>>()
                            .join(", "),
                        name
                    ),
                }
            }
        }
    }
    go(t, data)
}

fn param_name(i: u32) -> String {
    let letter = (b'a' + (i % 26) as u8) as char;
    if i < 26 {
        letter.to_string()
    } else {
        format!("{}{}", letter, i / 26)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> DataEnv {
        DataEnv::new()
    }

    #[test]
    fn unify_base_types() {
        assert!(unify(&Type::Int, &Type::Int, &data()).is_ok());
        assert!(unify(&Type::Int, &Type::Bool, &data()).is_err());
    }

    #[test]
    fn unify_links_variables() {
        let mut g = TvGen::new();
        let v = g.fresh();
        unify(&v, &Type::Int, &data()).unwrap();
        assert!(matches!(resolve(&v), Type::Int));
    }

    #[test]
    fn occurs_check_rejects_infinite_types() {
        let mut g = TvGen::new();
        let v = g.fresh();
        let arrow = Type::Arrow(Rc::new(v.clone()), Rc::new(Type::Int));
        let e = unify(&v, &arrow, &data()).unwrap_err();
        assert!(e.occurs);
    }

    #[test]
    fn generalize_and_instantiate() {
        let mut g = TvGen::new();
        g.enter_level();
        let v = g.fresh();
        g.leave_level();
        let id_ty = Type::Arrow(Rc::new(v.clone()), Rc::new(v));
        let scheme = generalize(&id_ty, g.level());
        assert_eq!(scheme.params, 1);
        let t1 = instantiate(&scheme, &mut g);
        let t2 = instantiate(&scheme, &mut g);
        // Instantiations are independent: unifying t1's domain with int
        // must not affect t2.
        let Type::Arrow(d1, _) = resolve(&t1) else {
            panic!()
        };
        unify(&d1, &Type::Int, &data()).unwrap();
        let Type::Arrow(d2, _) = resolve(&t2) else {
            panic!()
        };
        assert!(matches!(resolve(&d2), Type::Var(_)));
    }

    #[test]
    fn shallow_variables_are_not_generalized() {
        let mut g = TvGen::new();
        let v = g.fresh(); // level 0
        let scheme = generalize(&v, 0);
        assert_eq!(scheme.params, 0);
    }

    #[test]
    fn render_box_types() {
        let t = Type::Box(Rc::new(Type::Arrow(Rc::new(Type::Int), Rc::new(Type::Int))));
        assert_eq!(render(&t, &data()), "(int -> int) $");
    }

    #[test]
    fn render_list() {
        let t = Type::Data(mlbox_ir::LIST, Rc::new(vec![Type::Int]));
        assert_eq!(render(&t, &data()), "int list");
    }
}
