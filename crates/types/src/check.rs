//! The modal type checker: Hindley–Milner inference with let-polymorphism
//! (value restriction) over the dual-context typing discipline of Figure 2.
//!
//! Two contexts are threaded: Γ (value variables) and Δ (code variables).
//! The critical staging rule: checking `code M` **clears Γ** — only code
//! variables and variables bound inside `M` may occur — so a staging error
//! is a type error, exactly as the paper advertises.

use crate::ty::{generalize, instantiate, render, resolve, unify, Scheme, TvGen, Type};
use mlbox_ir::core::{CExpr, CExprS, CoreDecl, Lit, Prim};
use mlbox_ir::data::{ConId, DataEnv, CONS, LIST, NIL};
use mlbox_ir::elab::TypeAbbrev;
use mlbox_ir::name::Name;
use mlbox_syntax::ast as surface;
use mlbox_syntax::diag::{Diagnostic, Phase};
use mlbox_syntax::span::Span;
use std::collections::HashMap;
use std::rc::Rc;

/// Shorthand for type-checking failure.
pub type Result<T> = std::result::Result<T, Diagnostic>;

/// The persistent checker state (usable incrementally, one declaration at
/// a time).
#[derive(Debug, Default)]
pub struct Checker {
    gamma: Vec<(Name, Scheme)>,
    delta: Vec<(Name, Scheme)>,
    gen: TvGen,
}

/// Read-only context the checker needs from elaboration.
#[derive(Debug, Clone, Copy)]
pub struct TypeCtx<'a> {
    /// Datatype environment.
    pub data: &'a DataEnv,
    /// `type` abbreviations.
    pub abbrevs: &'a HashMap<String, TypeAbbrev>,
}

impl Checker {
    /// A fresh checker with empty contexts.
    pub fn new() -> Checker {
        Checker::default()
    }

    fn err(&self, msg: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic::new(Phase::Type, msg, span)
    }

    fn unify_at(&self, a: &Type, b: &Type, span: Span, tcx: TypeCtx<'_>) -> Result<()> {
        unify(a, b, tcx.data).map_err(|e| {
            let msg = if e.occurs {
                format!(
                    "cannot construct the infinite type {} = {}",
                    e.expected, e.found
                )
            } else {
                format!("type mismatch: expected {}, found {}", e.expected, e.found)
            };
            self.err(msg, span)
        })
    }

    fn lookup_gamma(&self, n: &Name) -> Option<&Scheme> {
        self.gamma
            .iter()
            .rev()
            .find(|(m, _)| m == n)
            .map(|(_, s)| s)
    }

    fn lookup_delta(&self, n: &Name) -> Option<&Scheme> {
        self.delta
            .iter()
            .rev()
            .find(|(m, _)| m == n)
            .map(|(_, s)| s)
    }

    /// Type-checks a top-level declaration, extending Γ/Δ. Returns the
    /// declaration's principal type (for display).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic on any type or staging error.
    pub fn check_decl(&mut self, d: &CoreDecl, tcx: TypeCtx<'_>) -> Result<Type> {
        match d {
            CoreDecl::Val(n, e) => {
                self.gen.enter_level();
                let t = self.infer(e, tcx)?;
                self.gen.leave_level();
                let scheme = if is_value(e) {
                    generalize(&t, self.gen.level())
                } else {
                    Scheme::mono(t.clone())
                };
                self.gamma.push((n.clone(), scheme));
                Ok(t)
            }
            CoreDecl::Cogen(u, e) => {
                self.gen.enter_level();
                let t = self.infer(e, tcx)?;
                let inner = self.gen.fresh();
                self.unify_at(&t, &Type::Box(Rc::new(inner.clone())), span_of(e), tcx)?;
                self.gen.leave_level();
                let scheme = if is_value(e) {
                    generalize(&inner, self.gen.level())
                } else {
                    Scheme::mono(inner.clone())
                };
                self.delta.push((u.clone(), scheme));
                Ok(t)
            }
            CoreDecl::Fun(defs) => self
                .check_letrec(defs, tcx)
                .map(|mut ts| ts.pop().unwrap_or(Type::Unit)),
            CoreDecl::Expr(e) => self.infer(e, tcx),
        }
    }

    /// Type-checks and binds a recursive group; returns the generalized
    /// types in definition order.
    fn check_letrec(
        &mut self,
        defs: &[mlbox_ir::core::FunDef],
        tcx: TypeCtx<'_>,
    ) -> Result<Vec<Type>> {
        self.gen.enter_level();
        // Monomorphic assumptions for the group.
        let assumptions: Vec<Type> = defs.iter().map(|_| self.gen.fresh()).collect();
        let mark = self.gamma.len();
        for (def, t) in defs.iter().zip(&assumptions) {
            self.gamma.push((def.name.clone(), Scheme::mono(t.clone())));
        }
        for (def, t) in defs.iter().zip(&assumptions) {
            let param_t = self.gen.fresh();
            let inner_mark = self.gamma.len();
            self.gamma
                .push((def.param.clone(), Scheme::mono(param_t.clone())));
            let body_t = self.infer(&def.body, tcx)?;
            self.gamma.truncate(inner_mark);
            let fun_t = Type::Arrow(Rc::new(param_t), Rc::new(body_t));
            self.unify_at(&fun_t, t, span_of(&def.body), tcx)?;
        }
        self.gen.leave_level();
        // Rebind with generalized schemes.
        self.gamma.truncate(mark);
        let mut out = Vec::with_capacity(defs.len());
        for (def, t) in defs.iter().zip(&assumptions) {
            let scheme = generalize(t, self.gen.level());
            self.gamma.push((def.name.clone(), scheme));
            out.push(t.clone());
        }
        Ok(out)
    }

    /// Infers the type of an expression in the current contexts.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic on any type or staging error.
    pub fn infer(&mut self, e: &CExprS, tcx: TypeCtx<'_>) -> Result<Type> {
        let span = e.span;
        match &e.node {
            CExpr::Lit(l) => Ok(match l {
                Lit::Int(_) => Type::Int,
                Lit::Bool(_) => Type::Bool,
                Lit::Str(_) => Type::Str,
                Lit::Unit => Type::Unit,
            }),
            CExpr::Var(n) => {
                let scheme = self.lookup_gamma(n).cloned().ok_or_else(|| {
                    self.err(
                        format!(
                            "value variable `{}` is not in scope here (it may be from an \
                             earlier stage — under `code`, only code variables are visible; \
                             bind it with `let cogen` or stage it with `lift`)",
                            n.text()
                        ),
                        span,
                    )
                })?;
                Ok(instantiate(&scheme, &mut self.gen))
            }
            CExpr::CodeVar(u) => {
                let scheme = self.lookup_delta(u).cloned().ok_or_else(|| {
                    self.err(format!("unbound code variable `{}`", u.text()), span)
                })?;
                Ok(instantiate(&scheme, &mut self.gen))
            }
            CExpr::Lam(p, body) => {
                let param_t = self.gen.fresh();
                let mark = self.gamma.len();
                self.gamma.push((p.clone(), Scheme::mono(param_t.clone())));
                let body_t = self.infer(body, tcx)?;
                self.gamma.truncate(mark);
                Ok(Type::Arrow(Rc::new(param_t), Rc::new(body_t)))
            }
            CExpr::App(f, a) => {
                let f_t = self.infer(f, tcx)?;
                let a_t = self.infer(a, tcx)?;
                let r = self.gen.fresh();
                self.unify_at(
                    &f_t,
                    &Type::Arrow(Rc::new(a_t), Rc::new(r.clone())),
                    span,
                    tcx,
                )?;
                Ok(r)
            }
            CExpr::Prim(p, args) => {
                let mut arg_ts = Vec::with_capacity(args.len());
                for a in args {
                    arg_ts.push(self.infer(a, tcx)?);
                }
                self.prim_type(*p, &arg_ts, args, span, tcx)
            }
            CExpr::If(c, t, f) => {
                let c_t = self.infer(c, tcx)?;
                self.unify_at(&c_t, &Type::Bool, span_of(c), tcx)?;
                let t_t = self.infer(t, tcx)?;
                let f_t = self.infer(f, tcx)?;
                self.unify_at(&t_t, &f_t, span, tcx)?;
                Ok(t_t)
            }
            CExpr::Let(n, rhs, body) => {
                self.gen.enter_level();
                let rhs_t = self.infer(rhs, tcx)?;
                self.gen.leave_level();
                let scheme = if is_value(rhs) {
                    generalize(&rhs_t, self.gen.level())
                } else {
                    Scheme::mono(rhs_t)
                };
                let mark = self.gamma.len();
                self.gamma.push((n.clone(), scheme));
                let body_t = self.infer(body, tcx)?;
                self.gamma.truncate(mark);
                Ok(body_t)
            }
            CExpr::LetRec(defs, body) => {
                let mark = self.gamma.len();
                self.check_letrec(defs, tcx)?;
                let body_t = self.infer(body, tcx)?;
                self.gamma.truncate(mark);
                Ok(body_t)
            }
            CExpr::Tuple(parts) => {
                let mut ts = Vec::with_capacity(parts.len());
                for p in parts {
                    ts.push(self.infer(p, tcx)?);
                }
                Ok(Type::Tuple(Rc::new(ts)))
            }
            CExpr::Proj {
                index,
                arity,
                tuple,
            } => {
                let tup_t = self.infer(tuple, tcx)?;
                let parts: Vec<Type> = (0..*arity).map(|_| self.gen.fresh()).collect();
                let want = Type::Tuple(Rc::new(parts.clone()));
                self.unify_at(&tup_t, &want, span, tcx)?;
                Ok(parts[*index].clone())
            }
            CExpr::Con(c, payload) => {
                let (payload_t, result_t) = self.con_type(*c, tcx, span)?;
                match (payload, payload_t) {
                    (None, None) => Ok(result_t),
                    (Some(p), Some(want)) => {
                        let got = self.infer(p, tcx)?;
                        self.unify_at(&got, &want, span_of(p), tcx)?;
                        Ok(result_t)
                    }
                    (None, Some(_)) => {
                        Err(self.err("constructor requires a payload but none was given", span))
                    }
                    (Some(_), None) => {
                        Err(self.err("constructor takes no payload but one was given", span))
                    }
                }
            }
            CExpr::Case {
                scrut,
                arms,
                default,
            } => {
                let scrut_t = self.infer(scrut, tcx)?;
                let result_t = self.gen.fresh();
                // All arms must belong to one datatype; unify the scrutinee
                // with it, instantiated once.
                let first = arms
                    .first()
                    .ok_or_else(|| self.err("case expression has no arms", span))?;
                let d = tcx.data.con(first.con).data;
                let args: Vec<Type> = (0..tcx
                    .data
                    .datatype(d)
                    .tyvars
                    .len()
                    .max(usize::from(d == LIST)))
                    .map(|_| self.gen.fresh())
                    .collect();
                let data_t = Type::Data(d, Rc::new(args.clone()));
                self.unify_at(&scrut_t, &data_t, span_of(scrut), tcx)?;
                for arm in arms {
                    let info = tcx.data.con(arm.con);
                    if info.data != d {
                        return Err(self.err(
                            format!(
                                "constructor `{}` belongs to datatype `{}`, not `{}`",
                                info.name,
                                tcx.data.datatype(info.data).name,
                                tcx.data.datatype(d).name
                            ),
                            span_of(&arm.rhs),
                        ));
                    }
                    let payload_t = self.con_payload(arm.con, &args, tcx, span)?;
                    let mark = self.gamma.len();
                    match (&arm.binder, payload_t) {
                        (Some(b), Some(t)) => {
                            self.gamma.push((b.clone(), Scheme::mono(t)));
                        }
                        (Some(b), None) => {
                            self.gamma.push((b.clone(), Scheme::mono(Type::Unit)));
                        }
                        _ => {}
                    }
                    let rhs_t = self.infer(&arm.rhs, tcx)?;
                    self.gamma.truncate(mark);
                    self.unify_at(&rhs_t, &result_t, span_of(&arm.rhs), tcx)?;
                }
                if let Some(dflt) = default {
                    let t = self.infer(dflt, tcx)?;
                    self.unify_at(&t, &result_t, span_of(dflt), tcx)?;
                }
                Ok(result_t)
            }
            CExpr::Code(body) => {
                // Clear Γ — the staging restriction of Figure 2.
                let saved = std::mem::take(&mut self.gamma);
                let result = self.infer(body, tcx);
                self.gamma = saved;
                Ok(Type::Box(Rc::new(result?)))
            }
            CExpr::Lift(inner) => {
                let t = self.infer(inner, tcx)?;
                Ok(Type::Box(Rc::new(t)))
            }
            CExpr::LetCogen(u, m, n) => {
                self.gen.enter_level();
                let m_t = self.infer(m, tcx)?;
                let inner = self.gen.fresh();
                self.unify_at(&m_t, &Type::Box(Rc::new(inner.clone())), span_of(m), tcx)?;
                self.gen.leave_level();
                let scheme = if is_value(m) {
                    generalize(&inner, self.gen.level())
                } else {
                    Scheme::mono(inner)
                };
                let mark = self.delta.len();
                self.delta.push((u.clone(), scheme));
                let n_t = self.infer(n, tcx)?;
                self.delta.truncate(mark);
                Ok(n_t)
            }
            CExpr::Fail(_) => Ok(self.gen.fresh()),
            CExpr::Ascribe(inner, ty) => {
                let t = self.infer(inner, tcx)?;
                let mut scope = HashMap::new();
                let want = self.convert_surface(ty, &mut scope, tcx)?;
                self.unify_at(&t, &want, span, tcx)?;
                Ok(t)
            }
        }
    }

    /// Instantiated payload/result types for a constructor.
    fn con_type(&mut self, c: ConId, tcx: TypeCtx<'_>, span: Span) -> Result<(Option<Type>, Type)> {
        let info = tcx.data.con(c);
        let d = info.data;
        let nvars = tcx.data.datatype(d).tyvars.len();
        let args: Vec<Type> = (0..nvars).map(|_| self.gen.fresh()).collect();
        let payload = self.con_payload(c, &args, tcx, span)?;
        Ok((payload, Type::Data(d, Rc::new(args))))
    }

    /// Payload type of a constructor at the given datatype arguments.
    fn con_payload(
        &mut self,
        c: ConId,
        args: &[Type],
        tcx: TypeCtx<'_>,
        span: Span,
    ) -> Result<Option<Type>> {
        if c == CONS {
            // :: of 'a * 'a list
            let elem = args[0].clone();
            return Ok(Some(Type::Tuple(Rc::new(vec![
                elem.clone(),
                Type::Data(LIST, Rc::new(vec![elem])),
            ]))));
        }
        if c == NIL {
            return Ok(None);
        }
        let info = tcx.data.con(c).clone();
        match &info.arg {
            None => Ok(None),
            Some(ty) => {
                let tyvars = &tcx.data.datatype(info.data).tyvars;
                let mut scope: HashMap<String, Type> =
                    tyvars.iter().cloned().zip(args.iter().cloned()).collect();
                let t = self
                    .convert_surface(ty, &mut scope, tcx)
                    .map_err(|d| Diagnostic::new(Phase::Type, d.message, span))?;
                Ok(Some(t))
            }
        }
    }

    /// Converts a surface type to a semantic type. Unknown type variables
    /// become fresh unification variables (recorded in `scope`).
    fn convert_surface(
        &mut self,
        ty: &surface::TyS,
        scope: &mut HashMap<String, Type>,
        tcx: TypeCtx<'_>,
    ) -> Result<Type> {
        let span = ty.span;
        match &ty.node {
            surface::Ty::Var(v) => {
                if let Some(t) = scope.get(v) {
                    return Ok(t.clone());
                }
                let t = self.gen.fresh();
                scope.insert(v.clone(), t.clone());
                Ok(t)
            }
            surface::Ty::Arrow(a, b) => Ok(Type::Arrow(
                Rc::new(self.convert_surface(a, scope, tcx)?),
                Rc::new(self.convert_surface(b, scope, tcx)?),
            )),
            surface::Ty::Tuple(parts) => {
                let mut ts = Vec::with_capacity(parts.len());
                for p in parts {
                    ts.push(self.convert_surface(p, scope, tcx)?);
                }
                Ok(Type::Tuple(Rc::new(ts)))
            }
            surface::Ty::Box(inner) => {
                Ok(Type::Box(Rc::new(self.convert_surface(inner, scope, tcx)?)))
            }
            surface::Ty::Con(name, args) => {
                let mut arg_ts = Vec::with_capacity(args.len());
                for a in args {
                    arg_ts.push(self.convert_surface(a, scope, tcx)?);
                }
                match (name.as_str(), arg_ts.len()) {
                    ("int", 0) => Ok(Type::Int),
                    ("bool", 0) => Ok(Type::Bool),
                    ("string", 0) => Ok(Type::Str),
                    ("unit", 0) => Ok(Type::Unit),
                    ("ref", 1) => Ok(Type::Ref(Rc::new(arg_ts.pop().expect("one arg")))),
                    ("array", 1) => Ok(Type::Array(Rc::new(arg_ts.pop().expect("one arg")))),
                    _ => {
                        // `type` abbreviation?
                        if let Some(ab) = tcx.abbrevs.get(name) {
                            if ab.tyvars.len() != arg_ts.len() {
                                return Err(self.err(
                                    format!(
                                        "type abbreviation `{name}` expects {} argument(s), \
                                         got {}",
                                        ab.tyvars.len(),
                                        arg_ts.len()
                                    ),
                                    span,
                                ));
                            }
                            let mut inner_scope: HashMap<String, Type> = ab
                                .tyvars
                                .iter()
                                .cloned()
                                .zip(arg_ts.iter().cloned())
                                .collect();
                            return self.convert_surface(&ab.body, &mut inner_scope, tcx);
                        }
                        // Datatype (latest declaration with this name wins).
                        let found = tcx
                            .data
                            .datatypes()
                            .filter(|(_, info)| info.name == *name)
                            .map(|(id, info)| (id, info.tyvars.len()))
                            .last();
                        match found {
                            Some((id, nvars)) if nvars == arg_ts.len() => {
                                Ok(Type::Data(id, Rc::new(arg_ts)))
                            }
                            Some((_, nvars)) => Err(self.err(
                                format!(
                                    "datatype `{name}` expects {nvars} argument(s), got {}",
                                    arg_ts.len()
                                ),
                                span,
                            )),
                            None => {
                                Err(self.err(format!("unknown type constructor `{name}`"), span))
                            }
                        }
                    }
                }
            }
        }
    }

    fn prim_type(
        &mut self,
        p: Prim,
        arg_ts: &[Type],
        args: &[CExprS],
        span: Span,
        tcx: TypeCtx<'_>,
    ) -> Result<Type> {
        let at = |i: usize| -> Span { args.get(i).map_or(span, span_of) };
        let want = |this: &mut Self, i: usize, t: Type| -> Result<()> {
            this.unify_at(&arg_ts[i], &t, at(i), tcx)
        };
        match p {
            Prim::Add | Prim::Sub | Prim::Mul | Prim::Div | Prim::Mod | Prim::BitAnd => {
                want(self, 0, Type::Int)?;
                want(self, 1, Type::Int)?;
                Ok(Type::Int)
            }
            Prim::Neg => {
                want(self, 0, Type::Int)?;
                Ok(Type::Int)
            }
            Prim::Eq | Prim::Ne => {
                self.unify_at(&arg_ts[0], &arg_ts[1], span, tcx)?;
                Ok(Type::Bool)
            }
            Prim::Lt | Prim::Le | Prim::Gt | Prim::Ge => {
                want(self, 0, Type::Int)?;
                want(self, 1, Type::Int)?;
                Ok(Type::Bool)
            }
            Prim::Concat => {
                want(self, 0, Type::Str)?;
                want(self, 1, Type::Str)?;
                Ok(Type::Str)
            }
            Prim::Not => {
                want(self, 0, Type::Bool)?;
                Ok(Type::Bool)
            }
            Prim::StrSize => {
                want(self, 0, Type::Str)?;
                Ok(Type::Int)
            }
            Prim::IntToString => {
                want(self, 0, Type::Int)?;
                Ok(Type::Str)
            }
            Prim::Print => {
                want(self, 0, Type::Str)?;
                Ok(Type::Unit)
            }
            Prim::Ref => Ok(Type::Ref(Rc::new(arg_ts[0].clone()))),
            Prim::Deref => {
                let inner = self.gen.fresh();
                want(self, 0, Type::Ref(Rc::new(inner.clone())))?;
                Ok(inner)
            }
            Prim::Assign => {
                let inner = arg_ts[1].clone();
                want(self, 0, Type::Ref(Rc::new(inner)))?;
                Ok(Type::Unit)
            }
            Prim::MkArray => {
                want(self, 0, Type::Int)?;
                Ok(Type::Array(Rc::new(arg_ts[1].clone())))
            }
            Prim::ArrSub => {
                let inner = self.gen.fresh();
                want(self, 0, Type::Array(Rc::new(inner.clone())))?;
                want(self, 1, Type::Int)?;
                Ok(inner)
            }
            Prim::ArrUpdate => {
                let inner = arg_ts[2].clone();
                want(self, 0, Type::Array(Rc::new(inner)))?;
                want(self, 1, Type::Int)?;
                Ok(Type::Unit)
            }
            Prim::ArrLen => {
                let inner = self.gen.fresh();
                want(self, 0, Type::Array(Rc::new(inner)))?;
                Ok(Type::Int)
            }
        }
    }

    /// Renders a type for display, resolving links.
    pub fn display_type(&self, t: &Type, data: &DataEnv) -> String {
        render(&resolve(t), data)
    }
}

fn span_of(e: &CExprS) -> Span {
    e.span
}

/// The value restriction: only syntactic values may be generalized.
fn is_value(e: &CExprS) -> bool {
    match &e.node {
        CExpr::Lit(_) | CExpr::Var(_) | CExpr::Lam(_, _) | CExpr::Code(_) | CExpr::Fail(_) => true,
        CExpr::Tuple(parts) => parts.iter().all(is_value),
        CExpr::Con(_, payload) => payload.as_deref().is_none_or(is_value),
        CExpr::Ascribe(inner, _) => is_value(inner),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlbox_ir::elab::Elab;
    use mlbox_syntax::parser::{parse_expr, parse_program};

    fn infer_str(src: &str) -> std::result::Result<String, Diagnostic> {
        let e = parse_expr(src).unwrap();
        let mut elab = Elab::new();
        let core = elab.elab_expr(&e)?;
        let mut ck = Checker::new();
        let tcx = TypeCtx {
            data: &elab.data,
            abbrevs: &elab.abbrevs,
        };
        let t = ck.infer(&core, tcx)?;
        Ok(ck.display_type(&t, &elab.data))
    }

    fn infer_program(src: &str) -> std::result::Result<String, Diagnostic> {
        let p = parse_program(src).unwrap();
        let mut elab = Elab::new();
        let decls = elab.elab_program(&p)?;
        let mut ck = Checker::new();
        let mut last = "unit".to_string();
        for d in &decls {
            let tcx = TypeCtx {
                data: &elab.data,
                abbrevs: &elab.abbrevs,
            };
            let t = ck.check_decl(d, tcx)?;
            last = ck.display_type(&t, &elab.data);
        }
        Ok(last)
    }

    #[test]
    fn base_types() {
        assert_eq!(infer_str("1 + 2").unwrap(), "int");
        assert_eq!(infer_str("1 < 2").unwrap(), "bool");
        assert_eq!(infer_str("\"a\" ^ \"b\"").unwrap(), "string");
        assert_eq!(infer_str("()").unwrap(), "unit");
    }

    #[test]
    fn functions() {
        assert_eq!(infer_str("fn x => x + 1").unwrap(), "int -> int");
        assert_eq!(infer_str("(fn x => x) 3").unwrap(), "int");
    }

    #[test]
    fn let_polymorphism() {
        assert_eq!(
            infer_str("let val id = fn x => x in (id 1, id true) end").unwrap(),
            "int * bool"
        );
    }

    #[test]
    fn value_restriction_blocks_generalization() {
        // `(fn x => x) (fn y => y)` is not a value; its type stays mono.
        let r = infer_str("let val id = (fn x => x) (fn y => y) in (id 1, id true) end");
        assert!(r.is_err());
    }

    #[test]
    fn code_type_is_box() {
        assert_eq!(infer_str("code (fn x => x + 1)").unwrap(), "(int -> int) $");
        assert_eq!(infer_str("lift 3").unwrap(), "int $");
    }

    #[test]
    fn staging_violation_is_a_type_error() {
        // The paper's central claim: a staging error becomes a type error.
        let r = infer_str("fn y => code (fn x => x + y)");
        let err = r.unwrap_err();
        assert!(err.message.contains("earlier stage"), "{}", err.message);
    }

    #[test]
    fn code_variables_are_visible_under_code() {
        // The tyvar numbering is unstable; check the shape.
        let t = infer_str("fn c => let cogen f = c in code (fn x => f (x + 0)) end").unwrap();
        assert!(t.contains("$ ->"), "{t}");
        assert!(t.ends_with('$'), "{t}");
    }

    #[test]
    fn eval_is_typeable() {
        // eval : □'a -> 'a, rendered '_N $ -> '_N.
        let t = infer_str("fn c => let cogen u = c in u end").unwrap();
        assert!(t.contains("$ ->"), "{t}");
        assert!(!t.ends_with('$'), "{t}");
    }

    #[test]
    fn comp_poly_type() {
        let t = infer_program(
            "fun compPoly p =\n\
             case p of nil => code (fn x => 0)\n\
             | a :: p' => let cogen f = compPoly p' cogen a' = lift a\n\
                          in code (fn x => a' + (x * f x)) end",
        )
        .unwrap();
        assert_eq!(t, "int list -> (int -> int) $");
    }

    #[test]
    fn datatypes_and_case_typing() {
        let t = infer_program(
            "datatype shape = Circle of int | Point\n\
             fun area s = case s of Circle r => r * r | Point => 0",
        )
        .unwrap();
        assert_eq!(t, "shape -> int");
    }

    #[test]
    fn polymorphic_datatypes() {
        let t = infer_program(
            "datatype 'a option = NONE | SOME of 'a\n\
             fun get x = case x of SOME v => v | NONE => 0",
        )
        .unwrap();
        assert_eq!(t, "int option -> int");
    }

    #[test]
    fn arm_from_wrong_datatype_rejected() {
        let r = infer_program(
            "datatype a = A\ndatatype b = B\n\
             fun f x = case x of A => 1 | B => 2",
        );
        assert!(r.is_err());
    }

    #[test]
    fn branches_must_agree() {
        assert!(infer_str("if true then 1 else false").is_err());
        assert!(infer_str("if 1 then 2 else 3").is_err());
    }

    #[test]
    fn occurs_check() {
        assert!(infer_str("fn x => x x").is_err());
    }

    #[test]
    fn refs_and_arrays_typing() {
        assert_eq!(infer_str("ref 1").unwrap(), "int ref");
        assert_eq!(infer_str("!(ref 1)").unwrap(), "int");
        assert_eq!(infer_str("array (3, true)").unwrap(), "bool array");
        assert_eq!(
            infer_str("fn a => sub (a, 0) + 1").unwrap(),
            "int array -> int"
        );
    }

    #[test]
    fn ascription_checks() {
        assert_eq!(infer_str("(fn x => x) : int -> int").unwrap(), "int -> int");
        assert!(infer_str("(1 : bool)").is_err());
    }

    #[test]
    fn type_abbreviations_expand() {
        let t = infer_program(
            "type poly = int list\nfun f p = case (p : poly) of nil => 0 | a :: r => a",
        )
        .unwrap();
        assert_eq!(t, "int list -> int");
    }

    #[test]
    fn multi_stage_box_box() {
        let t = infer_str("code (code 3)").unwrap();
        assert_eq!(t, "int $ $");
    }

    #[test]
    fn lift_inside_code() {
        let t = infer_str("code (fn a => lift (a + 1))").unwrap();
        assert_eq!(t, "(int -> int $) $");
    }

    #[test]
    fn equality_is_polymorphic() {
        assert_eq!(
            infer_str("fn x => fn y => x = y")
                .unwrap()
                .matches("->")
                .count(),
            2
        );
        assert_eq!(infer_str("[1] = [2]").unwrap(), "bool");
    }

    #[test]
    fn tuple_projection_via_patterns() {
        assert_eq!(
            infer_str("fn (a, b) => a + b").unwrap(),
            "(int * int) -> int"
        );
    }

    #[test]
    fn polymorphic_tables_pattern() {
        // The memoization table from the paper, with the value restriction
        // satisfied per instantiation site.
        let t = infer_program(
            "fun newTable u = ref nil\n\
             fun lookup (t, k) = case !t of nil => NONE | (k', v) :: r => if k = k' then SOME v else lookup (ref r, k)\n\
             and xxx u = u\n\
             datatype 'a option = NONE | SOME of 'a",
        );
        // option must be declared before use; rewritten below.
        assert!(t.is_err());
        let t = infer_program(
            "datatype 'a option = NONE | SOME of 'a\n\
             fun lookupIn (kvs, k) = case kvs of nil => NONE | (k', v) :: r => if k = k' then SOME v else lookupIn (r, k)",
        )
        .unwrap();
        assert!(t.contains("option"), "{t}");
    }
}
