//! Disassembler: renders CCAM code as indented text, for debugging,
//! documentation, and golden tests.

use crate::instr::Instr;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders a code sequence, one instruction per line, nested code blocks
/// indented.
pub fn disassemble(code: &[Instr]) -> String {
    let mut out = String::new();
    render(code, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render(code: &[Instr], depth: usize, out: &mut String) {
    for i in code {
        render_instr(i, depth, out);
    }
}

/// The one-line rendering of an instruction that carries no nested code
/// block: the mnemonic plus its operand, if any.
fn inline_label(i: &Instr) -> String {
    match i {
        Instr::Acc(n) => format!("acc {n}"),
        Instr::Quote(v) => format!("quote {v}"),
        Instr::Prim(op) => format!("prim {op:?}"),
        Instr::Pack(tag) => format!("pack {tag}"),
        Instr::Fail(m) => format!("fail {m:?}"),
        Instr::MergeSwitch(spec) => format!(
            "merge_switch[{} arms{}]",
            spec.arms.len(),
            if spec.default { " + default" } else { "" }
        ),
        Instr::MergeRec(n) => format!("merge_rec[{n}]"),
        // Operand-free instructions render as their mnemonic. The
        // block-carrying ones (`cur`, `branch`, `switch`, `recclos`,
        // `emit`) are rendered by `render_instr` and only reach here as
        // a degenerate fallback.
        Instr::Id
        | Instr::Fst
        | Instr::Snd
        | Instr::Push
        | Instr::Swap
        | Instr::ConsPair
        | Instr::App
        | Instr::LiftV
        | Instr::NewArena
        | Instr::Merge
        | Instr::Call
        | Instr::MergeBranch
        | Instr::Cur(_)
        | Instr::Branch(_, _)
        | Instr::Switch(_)
        | Instr::RecClos(_)
        | Instr::Emit(_) => i.mnemonic().to_string(),
    }
}

fn render_instr(i: &Instr, depth: usize, out: &mut String) {
    indent(depth, out);
    match i {
        Instr::Cur(c) => {
            out.push_str("cur {\n");
            render(c, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        Instr::Emit(inner) => {
            // Render the operand inline where simple; nested blocks indent.
            match &**inner {
                Instr::Cur(_) | Instr::Branch(_, _) | Instr::Switch(_) | Instr::RecClos(_) => {
                    out.push_str("emit\n");
                    render_instr(inner, depth + 1, out);
                }
                simple => {
                    let _ = writeln!(out, "emit [{}]", inline_label(simple));
                }
            }
        }
        Instr::Branch(a, b) => {
            out.push_str("branch {\n");
            render(a, depth + 1, out);
            indent(depth, out);
            out.push_str("} else {\n");
            render(b, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        Instr::Switch(table) => {
            out.push_str("switch {\n");
            for arm in &table.arms {
                indent(depth + 1, out);
                let _ = writeln!(
                    out,
                    "tag {}{} =>",
                    arm.tag,
                    if arm.bind { " (bind)" } else { "" }
                );
                render(&arm.code, depth + 2, out);
            }
            if let Some(d) = &table.default {
                indent(depth + 1, out);
                out.push_str("default =>\n");
                render(d, depth + 2, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        Instr::RecClos(bodies) => {
            let _ = writeln!(out, "recclos[{}] {{", bodies.len());
            for b in bodies.iter() {
                render(b, depth + 1, out);
                indent(depth + 1, out);
                out.push_str("--\n");
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        simple => {
            let _ = writeln!(out, "{}", inline_label(simple));
        }
    }
}

/// Counts instructions by mnemonic, recursing into `Cur`, `Branch`,
/// `Switch`, `RecClos`, and `Emit` operands. Useful for asserting
/// properties of *generated* code — e.g. that specialization eliminated
/// all `switch` dispatch.
pub fn census(code: &[Instr]) -> BTreeMap<&'static str, usize> {
    let mut out = BTreeMap::new();
    fn visit(i: &Instr, out: &mut BTreeMap<&'static str, usize>) {
        *out.entry(i.mnemonic()).or_insert(0) += 1;
        match i {
            Instr::Cur(c) => {
                for j in c.iter() {
                    visit(j, out);
                }
            }
            Instr::Branch(a, b) => {
                for j in a.iter().chain(b.iter()) {
                    visit(j, out);
                }
            }
            Instr::Switch(t) => {
                for arm in &t.arms {
                    for j in arm.code.iter() {
                        visit(j, out);
                    }
                }
                if let Some(d) = &t.default {
                    for j in d.iter() {
                        visit(j, out);
                    }
                }
            }
            Instr::RecClos(bodies) => {
                for b in bodies.iter() {
                    for j in b.iter() {
                        visit(j, out);
                    }
                }
            }
            Instr::Emit(inner) => visit(inner, out),
            // Exhaustive on purpose: a new instruction must declare
            // whether it nests code the census should descend into.
            Instr::Id
            | Instr::Fst
            | Instr::Snd
            | Instr::Acc(_)
            | Instr::Push
            | Instr::Swap
            | Instr::ConsPair
            | Instr::App
            | Instr::Quote(_)
            | Instr::LiftV
            | Instr::NewArena
            | Instr::Merge
            | Instr::Call
            | Instr::Pack(_)
            | Instr::Prim(_)
            | Instr::Fail(_)
            | Instr::MergeBranch
            | Instr::MergeSwitch(_)
            | Instr::MergeRec(_) => {}
        }
    }
    for i in code {
        visit(i, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::rc::Rc;

    #[test]
    fn renders_nested_blocks() {
        let code = vec![
            Instr::Push,
            Instr::Cur(Rc::new(vec![Instr::Snd, Instr::Quote(Value::Int(3))])),
            Instr::Emit(Box::new(Instr::App)),
        ];
        let text = disassemble(&code);
        assert!(text.contains("push"));
        assert!(text.contains("cur {"));
        assert!(text.contains("  snd"));
        assert!(text.contains("quote 3"));
        assert!(text.contains("emit [app]"));
    }

    #[test]
    fn census_counts_recursively() {
        let code = vec![
            Instr::Push,
            Instr::Cur(Rc::new(vec![Instr::Snd, Instr::Push])),
            Instr::Emit(Box::new(Instr::App)),
        ];
        let c = census(&code);
        assert_eq!(c["push"], 2);
        assert_eq!(c["cur"], 1);
        assert_eq!(c["emit"], 1);
        assert_eq!(c["app"], 1);
        assert_eq!(c["snd"], 1);
    }

    #[test]
    fn renders_branch() {
        let code = vec![Instr::Branch(
            Rc::new(vec![Instr::Id]),
            Rc::new(vec![Instr::Fst]),
        )];
        let text = disassemble(&code);
        assert!(text.contains("} else {"));
    }
}
