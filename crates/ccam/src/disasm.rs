//! Disassembler: renders CCAM code as block-labelled text, for debugging,
//! documentation, and golden tests.
//!
//! Code is flat ([`crate::seg::CodeSeg`]), so a listing is a sequence of
//! labelled blocks rather than an indented tree: the entry block prints
//! first, and every block it (transitively) references follows, one
//! instruction per line. Labels are assigned in first-reference discovery
//! order starting from `L0` for the entry, so the listing is stable under
//! unrelated segment growth — two structurally identical programs
//! disassemble identically no matter where their blocks sit in the
//! segment.

use crate::instr::Instr;
use crate::seg::{BlockId, CodeSeg};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders the block `entry` of `seg` and every block reachable from it.
pub fn disassemble(seg: &CodeSeg, entry: BlockId) -> String {
    let mut labels = Labels::new(entry);
    let mut out = String::new();
    let mut next = 0usize;
    while next < labels.order.len() {
        let block = labels.order[next];
        if next > 0 {
            out.push('\n');
        }
        let _ = writeln!(out, "L{next}:");
        for i in seg.block_to_vec(block) {
            let _ = writeln!(out, "  {}", label(&i, &mut labels));
        }
        next += 1;
    }
    out
}

/// Display-label assignment: block ids renumbered in discovery order.
struct Labels {
    names: HashMap<BlockId, usize>,
    order: Vec<BlockId>,
}

impl Labels {
    fn new(entry: BlockId) -> Labels {
        let mut l = Labels {
            names: HashMap::new(),
            order: Vec::new(),
        };
        l.name(entry);
        l
    }

    /// The display name of `b`, assigning the next number on first sight.
    fn name(&mut self, b: BlockId) -> String {
        let n = *self.names.entry(b).or_insert_with(|| {
            self.order.push(b);
            self.order.len() - 1
        });
        format!("L{n}")
    }
}

/// The one-line rendering of an instruction: the mnemonic plus its
/// operand, if any. Block operands render as labels (registering the
/// blocks for listing).
fn label(i: &Instr, labels: &mut Labels) -> String {
    match i {
        Instr::Acc(n) => format!("acc {n}"),
        Instr::Quote(v) => format!("quote {v}"),
        Instr::Prim(op) => format!("prim {op:?}"),
        Instr::Pack(tag) => format!("pack {tag}"),
        Instr::Fail(m) => format!("fail {m:?}"),
        Instr::Cur(c) => format!("cur {}", labels.name(*c)),
        Instr::Branch(t, e) => {
            let t = labels.name(*t);
            let e = labels.name(*e);
            format!("branch {t} else {e}")
        }
        Instr::Switch(table) => {
            let mut s = String::from("switch {");
            for (k, arm) in table.arms.iter().enumerate() {
                if k > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    " tag {}{} => {}",
                    arm.tag,
                    if arm.bind { " (bind)" } else { "" },
                    labels.name(arm.code)
                );
            }
            if let Some(d) = table.default {
                let _ = write!(s, ", default => {}", labels.name(d));
            }
            s.push_str(" }");
            s
        }
        Instr::RecClos(bodies) => {
            let names: Vec<String> = bodies.iter().map(|b| labels.name(*b)).collect();
            format!("recclos[{}]", names.join(", "))
        }
        Instr::Emit(inner) => format!("emit [{}]", label(inner, labels)),
        Instr::MergeSwitch(spec) => format!(
            "merge_switch[{} arms{}]",
            spec.arms.len(),
            if spec.default { " + default" } else { "" }
        ),
        Instr::MergeRec(n) => format!("merge_rec[{n}]"),
        Instr::PushAcc(n) => format!("push_acc {n}"),
        Instr::AccApp(n) => format!("acc_app {n}"),
        Instr::QuoteCons(v) => format!("quote_cons {v}"),
        Instr::PushQuote(v) => format!("push_quote {v}"),
        // Operand-free instructions render as their mnemonic.
        Instr::Id
        | Instr::Fst
        | Instr::Snd
        | Instr::Push
        | Instr::Swap
        | Instr::ConsPair
        | Instr::App
        | Instr::LiftV
        | Instr::NewArena
        | Instr::Merge
        | Instr::Call
        | Instr::MergeBranch
        | Instr::SwapCons
        | Instr::ConsApp
        | Instr::EnvCons => i.mnemonic().to_string(),
    }
}

/// Counts instructions by mnemonic, recursing into `Cur`, `Branch`,
/// `Switch`, `RecClos`, and `Emit` operands **per reference**: a block
/// referenced twice is counted twice, matching what would execute if both
/// references ran. Useful for asserting properties of *generated* code —
/// e.g. that specialization eliminated all `switch` dispatch.
pub fn census(seg: &CodeSeg, entry: BlockId) -> BTreeMap<&'static str, usize> {
    let mut out = BTreeMap::new();
    visit_block(seg, entry, &mut out);
    out
}

fn visit_block(seg: &CodeSeg, b: BlockId, out: &mut BTreeMap<&'static str, usize>) {
    // Copy the block out so no segment borrow is held across recursion.
    for i in seg.block_to_vec(b) {
        visit(seg, &i, out);
    }
}

fn visit(seg: &CodeSeg, i: &Instr, out: &mut BTreeMap<&'static str, usize>) {
    *out.entry(i.mnemonic()).or_insert(0) += 1;
    match i {
        Instr::Cur(c) => visit_block(seg, *c, out),
        Instr::Branch(a, b) => {
            visit_block(seg, *a, out);
            visit_block(seg, *b, out);
        }
        Instr::Switch(t) => {
            for arm in &t.arms {
                visit_block(seg, arm.code, out);
            }
            if let Some(d) = t.default {
                visit_block(seg, d, out);
            }
        }
        Instr::RecClos(bodies) => {
            for b in bodies.iter() {
                visit_block(seg, *b, out);
            }
        }
        Instr::Emit(inner) => visit(seg, inner, out),
        // Exhaustive on purpose: a new instruction must declare whether
        // it references code the census should descend into.
        Instr::Id
        | Instr::Fst
        | Instr::Snd
        | Instr::Acc(_)
        | Instr::Push
        | Instr::Swap
        | Instr::ConsPair
        | Instr::App
        | Instr::Quote(_)
        | Instr::LiftV
        | Instr::NewArena
        | Instr::Merge
        | Instr::Call
        | Instr::Pack(_)
        | Instr::Prim(_)
        | Instr::Fail(_)
        | Instr::MergeBranch
        | Instr::MergeSwitch(_)
        | Instr::MergeRec(_)
        | Instr::PushAcc(_)
        | Instr::QuoteCons(_)
        | Instr::SwapCons
        | Instr::ConsApp
        | Instr::AccApp(_)
        | Instr::PushQuote(_)
        | Instr::EnvCons => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn renders_labelled_blocks() {
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![Instr::Snd, Instr::Quote(Value::Int(3))]);
        let entry = seg.add_block(vec![
            Instr::Push,
            Instr::Cur(body),
            Instr::Emit(Box::new(Instr::App)),
        ]);
        let text = disassemble(&seg, entry);
        assert!(text.starts_with("L0:\n"), "{text}");
        assert!(text.contains("  push\n"));
        assert!(text.contains("  cur L1\n"));
        assert!(text.contains("  emit [app]\n"));
        assert!(text.contains("L1:\n"));
        assert!(text.contains("  snd\n"));
        assert!(text.contains("  quote 3\n"));
    }

    #[test]
    fn labels_are_discovery_order_not_block_ids() {
        // The same program laid out at different segment offsets must
        // disassemble identically.
        let mk = |seg: &CodeSeg| {
            let body = seg.add_block(vec![Instr::Snd]);
            seg.add_block(vec![Instr::Cur(body), Instr::App])
        };
        let a = CodeSeg::new();
        let ea = mk(&a);
        let b = CodeSeg::new();
        b.add_block(vec![Instr::Id; 7]); // shift every subsequent block id
        let eb = mk(&b);
        assert_eq!(disassemble(&a, ea), disassemble(&b, eb));
    }

    #[test]
    fn shared_blocks_list_once_but_census_counts_per_reference() {
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![Instr::Snd]);
        let entry = seg.add_block(vec![Instr::Cur(body), Instr::Cur(body)]);
        let text = disassemble(&seg, entry);
        assert_eq!(text.matches("L1:").count(), 1, "{text}");
        assert!(text.contains("  cur L1\n  cur L1\n"), "{text}");
        let c = census(&seg, entry);
        assert_eq!(c["cur"], 2);
        assert_eq!(c["snd"], 2, "counted per reference");
    }

    #[test]
    fn census_counts_recursively() {
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![Instr::Snd, Instr::Push]);
        let entry = seg.add_block(vec![
            Instr::Push,
            Instr::Cur(body),
            Instr::Emit(Box::new(Instr::App)),
        ]);
        let c = census(&seg, entry);
        assert_eq!(c["push"], 2);
        assert_eq!(c["cur"], 1);
        assert_eq!(c["emit"], 1);
        assert_eq!(c["app"], 1);
        assert_eq!(c["snd"], 1);
    }

    #[test]
    fn renders_env_cons() {
        let seg = CodeSeg::new();
        let entry = seg.add_block(vec![
            Instr::Push,
            Instr::Quote(Value::Int(9)),
            Instr::EnvCons,
            Instr::Acc(0),
        ]);
        let text = disassemble(&seg, entry);
        assert_eq!(text, "L0:\n  push\n  quote 9\n  env_cons\n  acc 0\n");
        let c = census(&seg, entry);
        assert_eq!(c["env_cons"], 1);
    }

    #[test]
    fn renders_branch_and_switch() {
        use crate::instr::{SwitchArm, SwitchTable};
        use std::rc::Rc;
        let seg = CodeSeg::new();
        let t = seg.add_block(vec![Instr::Id]);
        let e = seg.add_block(vec![Instr::Fst]);
        let arm = seg.add_block(vec![Instr::Snd]);
        let entry = seg.add_block(vec![
            Instr::Branch(t, e),
            Instr::Switch(Rc::new(SwitchTable {
                arms: vec![SwitchArm {
                    tag: 4,
                    bind: true,
                    code: arm,
                }],
                default: None,
            })),
        ]);
        let text = disassemble(&seg, entry);
        assert!(text.contains("branch L1 else L2"), "{text}");
        assert!(text.contains("switch { tag 4 (bind) => L3 }"), "{text}");
    }
}
