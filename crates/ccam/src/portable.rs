//! Thread-shareable renderings of frozen code and first-order values.
//!
//! The machine's run-time representation is deliberately single-threaded:
//! [`Code`] is `Rc<Vec<Instr>>`, values share structure through `Rc`, and
//! arenas/references/arrays carry `RefCell`s. That is the right choice for
//! the simulator's hot path, but it means a specialized program — the
//! paper's *generate once, run many* artifact — cannot leave the thread
//! that generated it.
//!
//! This module defines a parallel, immutable, `Send + Sync` representation
//! ([`PortableInstr`], [`PortableValue`], [`PortableCode`]) plus two
//! conversions:
//!
//! - **extraction** ([`PortableValue::extract`], [`extract_code`]):
//!   deep-converts `Rc` structure to `Arc` structure, preserving sharing
//!   (a code body referenced from two closures stays one allocation) and
//!   *rejecting* anything whose semantics depend on shared mutation —
//!   arenas still under construction, `ref` cells, arrays. Those are the
//!   `Rc`-escape hatches that must not leak into a cross-thread artifact.
//! - **hydration** ([`PortableValue::hydrate`], [`hydrate_code`]): the
//!   inverse, rebuilding machine-native `Rc` structure inside whichever
//!   thread wants to execute the code. Hydration cannot fail and again
//!   preserves sharing.
//!
//! Extraction and hydration cost one pass each; afterwards execution pays
//! no synchronization at all — every worker runs plain `Rc` values on its
//! own [`crate::machine::Machine`].

use crate::instr::{Code, Instr, MergeSwitchSpec, PrimOp, SwitchArm, SwitchTable};
use crate::value::{Closure, ConTag, RecGroup, Value};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A thread-shareable instruction sequence.
pub type PortableCode = Arc<Vec<PortableInstr>>;

/// A thread-shareable closure (see [`Closure`]).
#[derive(Debug)]
pub struct PortableClosure {
    /// Captured environment value.
    pub env: PortableValue,
    /// Body code.
    pub body: PortableCode,
}

/// A thread-shareable recursive closure group (see [`RecGroup`]).
#[derive(Debug)]
pub struct PortableRecGroup {
    /// The environment captured at group-creation time.
    pub env: PortableValue,
    /// One body per function in the group.
    pub bodies: Arc<Vec<PortableCode>>,
}

/// One arm of a portable `switch` dispatch (see [`SwitchArm`]).
#[derive(Debug, Clone)]
pub struct PortableSwitchArm {
    /// Tag to match.
    pub tag: ConTag,
    /// Whether the arm binds the constructor payload.
    pub bind: bool,
    /// Arm body.
    pub code: PortableCode,
}

/// A portable `switch` dispatch table (see [`SwitchTable`]).
#[derive(Debug, Clone)]
pub struct PortableSwitchTable {
    /// Arms in declaration order.
    pub arms: Vec<PortableSwitchArm>,
    /// Fallback code.
    pub default: Option<PortableCode>,
}

/// A thread-shareable value: the immutable subset of [`Value`].
///
/// Mutable values (arenas, `ref` cells, arrays) have no portable
/// rendering — sharing them across threads would either race or silently
/// change semantics — so [`PortableValue::extract`] rejects them.
#[derive(Debug, Clone)]
pub enum PortableValue {
    /// The unit value.
    Unit,
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(Arc<str>),
    /// A pair.
    Pair(Arc<(PortableValue, PortableValue)>),
    /// A closure.
    Closure(Arc<PortableClosure>),
    /// A member of a recursive closure group.
    RecClosure {
        /// The shared group.
        group: Arc<PortableRecGroup>,
        /// Which member this value is.
        index: usize,
    },
    /// A datatype constructor application.
    Con(ConTag, Option<Arc<PortableValue>>),
}

/// A thread-shareable instruction: the mirror of [`Instr`] with every
/// `Rc` replaced by `Arc` and every embedded [`Value`] replaced by
/// [`PortableValue`].
#[derive(Debug, Clone)]
pub enum PortableInstr {
    /// No-op.
    Id,
    /// First projection.
    Fst,
    /// Second projection.
    Snd,
    /// Fused indexed environment access.
    Acc(usize),
    /// Duplicate the top of the stack.
    Push,
    /// Exchange the two top stack entries.
    Swap,
    /// Build a pair.
    ConsPair,
    /// Apply a closure.
    App,
    /// Push a constant.
    Quote(PortableValue),
    /// Build a closure.
    Cur(PortableCode),
    /// Append a static instruction to the arena under construction.
    Emit(Box<PortableInstr>),
    /// Residualize the current value into the arena.
    LiftV,
    /// Create a fresh arena.
    NewArena,
    /// Insert an arena into another as a `Cur` body.
    Merge,
    /// Splice generated code into the instruction stream.
    Call,
    /// Conditional.
    Branch(PortableCode, PortableCode),
    /// Recursive closure group.
    RecClos(Arc<Vec<PortableCode>>),
    /// Constructor application.
    Pack(ConTag),
    /// Constructor dispatch.
    Switch(Arc<PortableSwitchTable>),
    /// Primitive operation.
    Prim(PrimOp),
    /// Abort with a message.
    Fail(Arc<str>),
    /// Merge-family conditional.
    MergeBranch,
    /// Merge-family dispatch.
    MergeSwitch(Arc<MergeSwitchSpec>),
    /// Merge-family recursion.
    MergeRec(usize),
}

// The entire point of this module: everything above must be shareable
// across threads. Compile-time enforcement.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PortableValue>();
    assert_send_sync::<PortableInstr>();
    assert_send_sync::<PortableCode>();
};

/// Why a value could not be extracted into portable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractError {
    /// The offending run-time representation ("code arena", "ref cell",
    /// "array").
    pub kind: &'static str,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value contains a {}, which is mutable shared state and cannot \
             cross threads; only finished (frozen) code and first-order \
             values are portable",
            self.kind
        )
    }
}

impl std::error::Error for ExtractError {}

/// Pointer-memoized extraction state: converting the same `Rc` twice must
/// yield the same `Arc`, both to preserve sharing (hydration restores it)
/// and to keep the conversion linear in the size of the object graph —
/// generated code is often a DAG (memoized generating extensions reuse
/// whole subtrees).
#[derive(Default)]
struct Extract {
    codes: HashMap<*const Vec<Instr>, PortableCode>,
    pairs: HashMap<*const (Value, Value), Arc<(PortableValue, PortableValue)>>,
    closures: HashMap<*const Closure, Arc<PortableClosure>>,
    groups: HashMap<*const RecGroup, Arc<PortableRecGroup>>,
}

impl Extract {
    fn value(&mut self, v: &Value) -> Result<PortableValue, ExtractError> {
        Ok(match v {
            Value::Unit => PortableValue::Unit,
            Value::Int(n) => PortableValue::Int(*n),
            Value::Bool(b) => PortableValue::Bool(*b),
            Value::Str(s) => PortableValue::Str(Arc::from(&**s)),
            Value::Pair(p) => {
                let key = Rc::as_ptr(p);
                if let Some(done) = self.pairs.get(&key) {
                    return Ok(PortableValue::Pair(done.clone()));
                }
                let pair = Arc::new((self.value(&p.0)?, self.value(&p.1)?));
                self.pairs.insert(key, pair.clone());
                PortableValue::Pair(pair)
            }
            Value::Closure(c) => {
                let key = Rc::as_ptr(c);
                if let Some(done) = self.closures.get(&key) {
                    return Ok(PortableValue::Closure(done.clone()));
                }
                let closure = Arc::new(PortableClosure {
                    env: self.value(&c.env)?,
                    body: self.code(&c.body)?,
                });
                self.closures.insert(key, closure.clone());
                PortableValue::Closure(closure)
            }
            Value::RecClosure { group, index } => {
                let key = Rc::as_ptr(group);
                let group = if let Some(done) = self.groups.get(&key) {
                    done.clone()
                } else {
                    let bodies = group
                        .bodies
                        .iter()
                        .map(|b| self.code(b))
                        .collect::<Result<Vec<_>, _>>()?;
                    let g = Arc::new(PortableRecGroup {
                        env: self.value(&group.env)?,
                        bodies: Arc::new(bodies),
                    });
                    self.groups.insert(key, g.clone());
                    g
                };
                PortableValue::RecClosure {
                    group,
                    index: *index,
                }
            }
            Value::Con(tag, payload) => PortableValue::Con(
                *tag,
                match payload {
                    Some(p) => Some(Arc::new(self.value(p)?)),
                    None => None,
                },
            ),
            Value::Arena(_) => return Err(ExtractError { kind: "code arena" }),
            Value::Ref(_) => return Err(ExtractError { kind: "ref cell" }),
            Value::Array(_) => return Err(ExtractError { kind: "array" }),
        })
    }

    fn code(&mut self, c: &Code) -> Result<PortableCode, ExtractError> {
        let key = Rc::as_ptr(c);
        if let Some(done) = self.codes.get(&key) {
            return Ok(done.clone());
        }
        let instrs = c
            .iter()
            .map(|i| self.instr(i))
            .collect::<Result<Vec<_>, _>>()?;
        let code = Arc::new(instrs);
        self.codes.insert(key, code.clone());
        Ok(code)
    }

    fn instr(&mut self, i: &Instr) -> Result<PortableInstr, ExtractError> {
        Ok(match i {
            Instr::Id => PortableInstr::Id,
            Instr::Fst => PortableInstr::Fst,
            Instr::Snd => PortableInstr::Snd,
            Instr::Acc(n) => PortableInstr::Acc(*n),
            Instr::Push => PortableInstr::Push,
            Instr::Swap => PortableInstr::Swap,
            Instr::ConsPair => PortableInstr::ConsPair,
            Instr::App => PortableInstr::App,
            Instr::Quote(v) => PortableInstr::Quote(self.value(v)?),
            Instr::Cur(c) => PortableInstr::Cur(self.code(c)?),
            Instr::Emit(inner) => PortableInstr::Emit(Box::new(self.instr(inner)?)),
            Instr::LiftV => PortableInstr::LiftV,
            Instr::NewArena => PortableInstr::NewArena,
            Instr::Merge => PortableInstr::Merge,
            Instr::Call => PortableInstr::Call,
            Instr::Branch(t, e) => PortableInstr::Branch(self.code(t)?, self.code(e)?),
            Instr::RecClos(bodies) => {
                let bodies = bodies
                    .iter()
                    .map(|b| self.code(b))
                    .collect::<Result<Vec<_>, _>>()?;
                PortableInstr::RecClos(Arc::new(bodies))
            }
            Instr::Pack(tag) => PortableInstr::Pack(*tag),
            Instr::Switch(table) => {
                let arms = table
                    .arms
                    .iter()
                    .map(|a| {
                        Ok(PortableSwitchArm {
                            tag: a.tag,
                            bind: a.bind,
                            code: self.code(&a.code)?,
                        })
                    })
                    .collect::<Result<Vec<_>, ExtractError>>()?;
                let default = match &table.default {
                    Some(d) => Some(self.code(d)?),
                    None => None,
                };
                PortableInstr::Switch(Arc::new(PortableSwitchTable { arms, default }))
            }
            Instr::Prim(op) => PortableInstr::Prim(*op),
            Instr::Fail(msg) => PortableInstr::Fail(Arc::from(&**msg)),
            Instr::MergeBranch => PortableInstr::MergeBranch,
            Instr::MergeSwitch(spec) => PortableInstr::MergeSwitch(Arc::new((**spec).clone())),
            Instr::MergeRec(n) => PortableInstr::MergeRec(*n),
        })
    }
}

/// Pointer-memoized hydration state (the inverse of [`Extract`]).
#[derive(Default)]
struct Hydrate {
    codes: HashMap<*const Vec<PortableInstr>, Code>,
    pairs: HashMap<*const (PortableValue, PortableValue), Rc<(Value, Value)>>,
    closures: HashMap<*const PortableClosure, Rc<Closure>>,
    groups: HashMap<*const PortableRecGroup, Rc<RecGroup>>,
}

impl Hydrate {
    fn value(&mut self, v: &PortableValue) -> Value {
        match v {
            PortableValue::Unit => Value::Unit,
            PortableValue::Int(n) => Value::Int(*n),
            PortableValue::Bool(b) => Value::Bool(*b),
            PortableValue::Str(s) => Value::Str(Rc::from(&**s)),
            PortableValue::Pair(p) => {
                let key = Arc::as_ptr(p);
                if let Some(done) = self.pairs.get(&key) {
                    return Value::Pair(done.clone());
                }
                let pair = Rc::new((self.value(&p.0), self.value(&p.1)));
                self.pairs.insert(key, pair.clone());
                Value::Pair(pair)
            }
            PortableValue::Closure(c) => {
                let key = Arc::as_ptr(c);
                if let Some(done) = self.closures.get(&key) {
                    return Value::Closure(done.clone());
                }
                let closure = Rc::new(Closure {
                    env: self.value(&c.env),
                    body: self.code(&c.body),
                });
                self.closures.insert(key, closure.clone());
                Value::Closure(closure)
            }
            PortableValue::RecClosure { group, index } => {
                let key = Arc::as_ptr(group);
                let group = if let Some(done) = self.groups.get(&key) {
                    done.clone()
                } else {
                    let g = Rc::new(RecGroup {
                        env: self.value(&group.env),
                        bodies: Rc::new(group.bodies.iter().map(|b| self.code(b)).collect()),
                    });
                    self.groups.insert(key, g.clone());
                    g
                };
                Value::RecClosure {
                    group,
                    index: *index,
                }
            }
            PortableValue::Con(tag, payload) => {
                Value::Con(*tag, payload.as_ref().map(|p| Rc::new(self.value(p))))
            }
        }
    }

    fn code(&mut self, c: &PortableCode) -> Code {
        let key = Arc::as_ptr(c);
        if let Some(done) = self.codes.get(&key) {
            return done.clone();
        }
        let code = Rc::new(c.iter().map(|i| self.instr(i)).collect::<Vec<_>>());
        self.codes.insert(key, code.clone());
        code
    }

    fn instr(&mut self, i: &PortableInstr) -> Instr {
        match i {
            PortableInstr::Id => Instr::Id,
            PortableInstr::Fst => Instr::Fst,
            PortableInstr::Snd => Instr::Snd,
            PortableInstr::Acc(n) => Instr::Acc(*n),
            PortableInstr::Push => Instr::Push,
            PortableInstr::Swap => Instr::Swap,
            PortableInstr::ConsPair => Instr::ConsPair,
            PortableInstr::App => Instr::App,
            PortableInstr::Quote(v) => Instr::Quote(self.value(v)),
            PortableInstr::Cur(c) => Instr::Cur(self.code(c)),
            PortableInstr::Emit(inner) => Instr::Emit(Box::new(self.instr(inner))),
            PortableInstr::LiftV => Instr::LiftV,
            PortableInstr::NewArena => Instr::NewArena,
            PortableInstr::Merge => Instr::Merge,
            PortableInstr::Call => Instr::Call,
            PortableInstr::Branch(t, e) => Instr::Branch(self.code(t), self.code(e)),
            PortableInstr::RecClos(bodies) => {
                Instr::RecClos(Rc::new(bodies.iter().map(|b| self.code(b)).collect()))
            }
            PortableInstr::Pack(tag) => Instr::Pack(*tag),
            PortableInstr::Switch(table) => {
                let arms = table
                    .arms
                    .iter()
                    .map(|a| SwitchArm {
                        tag: a.tag,
                        bind: a.bind,
                        code: self.code(&a.code),
                    })
                    .collect();
                let default = table.default.as_ref().map(|d| self.code(d));
                Instr::Switch(Rc::new(SwitchTable { arms, default }))
            }
            PortableInstr::Prim(op) => Instr::Prim(*op),
            PortableInstr::Fail(msg) => Instr::Fail(Rc::from(&**msg)),
            PortableInstr::MergeBranch => Instr::MergeBranch,
            PortableInstr::MergeSwitch(spec) => Instr::MergeSwitch(Rc::new((**spec).clone())),
            PortableInstr::MergeRec(n) => Instr::MergeRec(*n),
        }
    }
}

impl PortableValue {
    /// Extracts a machine value into portable form.
    ///
    /// # Errors
    ///
    /// Returns an [`ExtractError`] if the value (transitively) contains an
    /// arena, a `ref` cell, or an array.
    pub fn extract(v: &Value) -> Result<PortableValue, ExtractError> {
        Extract::default().value(v)
    }

    /// Rebuilds a machine-native value inside the calling thread.
    /// Sharing present at extraction time is restored.
    pub fn hydrate(&self) -> Value {
        Hydrate::default().value(self)
    }

    /// Total number of instructions reachable from this value, counting
    /// each shared code sequence once (the artifact-size metric).
    pub fn instr_count(&self) -> usize {
        let mut counter = InstrCount::default();
        counter.value(self);
        counter.total
    }
}

/// Extracts a frozen code sequence into portable form.
///
/// # Errors
///
/// Returns an [`ExtractError`] if an embedded constant (`quote`)
/// contains a non-portable value.
pub fn extract_code(c: &Code) -> Result<PortableCode, ExtractError> {
    Extract::default().code(c)
}

/// Rebuilds machine-native code inside the calling thread.
pub fn hydrate_code(c: &PortableCode) -> Code {
    Hydrate::default().code(c)
}

/// Visitor counting instructions, one visit per shared code block.
#[derive(Default)]
struct InstrCount {
    total: usize,
    seen: std::collections::HashSet<*const Vec<PortableInstr>>,
}

impl InstrCount {
    fn value(&mut self, v: &PortableValue) {
        match v {
            PortableValue::Unit
            | PortableValue::Int(_)
            | PortableValue::Bool(_)
            | PortableValue::Str(_)
            | PortableValue::Con(_, None) => {}
            PortableValue::Pair(p) => {
                self.value(&p.0);
                self.value(&p.1);
            }
            PortableValue::Closure(c) => {
                self.value(&c.env);
                self.code(&c.body);
            }
            PortableValue::RecClosure { group, .. } => {
                self.value(&group.env);
                for b in group.bodies.iter() {
                    self.code(b);
                }
            }
            PortableValue::Con(_, Some(p)) => self.value(p),
        }
    }

    fn code(&mut self, c: &PortableCode) {
        if !self.seen.insert(Arc::as_ptr(c)) {
            return;
        }
        for i in c.iter() {
            self.instr(i);
        }
    }

    fn instr(&mut self, i: &PortableInstr) {
        self.total += 1;
        match i {
            PortableInstr::Quote(v) => self.value(v),
            PortableInstr::Cur(c) => self.code(c),
            PortableInstr::Emit(inner) => self.instr(inner),
            PortableInstr::Branch(t, e) => {
                self.code(t);
                self.code(e);
            }
            PortableInstr::RecClos(bodies) => {
                for b in bodies.iter() {
                    self.code(b);
                }
            }
            PortableInstr::Switch(table) => {
                for arm in &table.arms {
                    self.code(&arm.code);
                }
                if let Some(d) = &table.default {
                    self.code(d);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::value::Arena;
    use std::cell::RefCell;

    fn closure(env: Value, body: Vec<Instr>) -> Value {
        Value::Closure(Rc::new(Closure {
            env,
            body: Rc::new(body),
        }))
    }

    #[test]
    fn first_order_values_roundtrip() {
        let v = Value::tuple(vec![
            Value::Int(-3),
            Value::Bool(true),
            Value::Str(Rc::from("hi")),
            Value::Con(2, Some(Rc::new(Value::Unit))),
        ]);
        let p = PortableValue::extract(&v).unwrap();
        assert_eq!(v.structural_eq(&p.hydrate()), Some(true));
    }

    #[test]
    fn closures_roundtrip_and_still_run() {
        // fn x => snd x + 1, captured env ().
        let f = closure(
            Value::Unit,
            vec![
                Instr::Snd,
                Instr::Push,
                Instr::Quote(Value::Int(1)),
                Instr::ConsPair,
                Instr::Prim(PrimOp::Add),
            ],
        );
        let p = PortableValue::extract(&f).unwrap();
        let g = p.hydrate();
        let out = Machine::new()
            .run(Rc::new(vec![Instr::App]), Value::pair(g, Value::Int(41)))
            .unwrap();
        assert!(matches!(out, Value::Int(42)));
    }

    #[test]
    fn mutable_state_is_rejected() {
        let cases = [
            (Value::Arena(Arena::new()), "code arena"),
            (Value::Ref(Rc::new(RefCell::new(Value::Unit))), "ref cell"),
            (Value::Array(Rc::new(RefCell::new(vec![]))), "array"),
        ];
        for (v, kind) in cases {
            // Bury it in a pair to check the traversal is transitive.
            let buried = Value::pair(Value::Int(1), v);
            let err = PortableValue::extract(&buried).unwrap_err();
            assert_eq!(err.kind, kind);
            assert!(err.to_string().contains(kind));
        }
    }

    #[test]
    fn shared_code_stays_shared_through_roundtrip() {
        let body: Code = Rc::new(vec![Instr::Snd]);
        let f = Value::pair(
            closure(Value::Unit, vec![Instr::Cur(body.clone())]),
            closure(Value::Unit, vec![Instr::Cur(body)]),
        );
        let p = PortableValue::extract(&f).unwrap();
        // Extraction shares…
        let (a, b) = match &p {
            PortableValue::Pair(pair) => match (&pair.0, &pair.1) {
                (PortableValue::Closure(a), PortableValue::Closure(b)) => (a.clone(), b.clone()),
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        };
        let inner = |c: &Arc<PortableClosure>| match &c.body[0] {
            PortableInstr::Cur(inner) => inner.clone(),
            other => panic!("unexpected: {other:?}"),
        };
        assert!(Arc::ptr_eq(&inner(&a), &inner(&b)));
        // …and hydration restores the sharing.
        let h = p.hydrate();
        let (ha, hb) = match &h {
            Value::Pair(pair) => match (&pair.0, &pair.1) {
                (Value::Closure(a), Value::Closure(b)) => (a.clone(), b.clone()),
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        };
        let hinner = |c: &Rc<Closure>| match &c.body[0] {
            Instr::Cur(inner) => inner.clone(),
            other => panic!("unexpected: {other:?}"),
        };
        assert!(Rc::ptr_eq(&hinner(&ha), &hinner(&hb)));
    }

    #[test]
    fn every_instruction_roundtrips() {
        // One of each instruction, nested codes included, so adding an
        // instruction without a portable rendering fails this test.
        let sub: Code = Rc::new(vec![Instr::Id]);
        let all = vec![
            Instr::Id,
            Instr::Fst,
            Instr::Snd,
            Instr::Acc(2),
            Instr::Push,
            Instr::Swap,
            Instr::ConsPair,
            Instr::App,
            Instr::Quote(Value::Int(7)),
            Instr::Cur(sub.clone()),
            Instr::Emit(Box::new(Instr::Snd)),
            Instr::LiftV,
            Instr::NewArena,
            Instr::Merge,
            Instr::Call,
            Instr::Branch(sub.clone(), sub.clone()),
            Instr::RecClos(Rc::new(vec![sub.clone()])),
            Instr::Pack(3),
            Instr::Switch(Rc::new(SwitchTable {
                arms: vec![SwitchArm {
                    tag: 0,
                    bind: true,
                    code: sub.clone(),
                }],
                default: Some(sub),
            })),
            Instr::Prim(PrimOp::Mul),
            Instr::Fail(Rc::from("boom")),
            Instr::MergeBranch,
            Instr::MergeSwitch(Rc::new(MergeSwitchSpec {
                arms: vec![(0, true)],
                default: true,
            })),
            Instr::MergeRec(2),
        ];
        let code: Code = Rc::new(all);
        let portable = extract_code(&code).unwrap();
        let back = hydrate_code(&portable);
        assert_eq!(code.len(), back.len());
        for (orig, round) in code.iter().zip(back.iter()) {
            assert_eq!(orig.opcode(), round.opcode());
        }
    }

    #[test]
    fn instr_count_counts_shared_code_once() {
        let body: Code = Rc::new(vec![Instr::Id, Instr::Snd]);
        let v = Value::pair(
            closure(Value::Unit, vec![Instr::Cur(body.clone())]),
            closure(Value::Unit, vec![Instr::Cur(body)]),
        );
        let p = PortableValue::extract(&v).unwrap();
        // Two Cur instructions + the shared 2-instruction body once.
        assert_eq!(p.instr_count(), 2 + 2);
    }

    #[test]
    fn portable_values_cross_threads() {
        let f = closure(Value::Unit, vec![Instr::Snd]);
        let p = PortableValue::extract(&f).unwrap();
        let out = std::thread::spawn(move || {
            let g = p.hydrate();
            let v = Machine::new()
                .run(Rc::new(vec![Instr::App]), Value::pair(g, Value::Int(9)))
                .unwrap();
            matches!(v, Value::Int(9))
        })
        .join()
        .unwrap();
        assert!(out);
    }
}
