//! Thread-shareable renderings of frozen code and first-order values.
//!
//! The machine's run-time representation is deliberately single-threaded:
//! code lives in a [`CodeSeg`] (an `Rc`-shared, `RefCell`-grown arena),
//! values share structure through `Rc`, and arenas/references/arrays carry
//! `RefCell`s. That is the right choice for the simulator's hot path, but
//! it means a specialized program — the paper's *generate once, run many*
//! artifact — cannot leave the thread that generated it.
//!
//! This module defines a parallel, immutable, `Send + Sync` representation
//! ([`PortableSeg`], [`PortableInstr`], [`PortableValue`],
//! [`PortableCode`]) plus two conversions:
//!
//! - **extraction** ([`PortableValue::extract`], [`extract_code`]): walks
//!   the reachable blocks of the source segment(s) and packs them into one
//!   dense [`PortableSeg`] — a flat instruction vector plus a block table,
//!   mirroring [`CodeSeg`] itself — preserving sharing (a block referenced
//!   from two closures is packed once) and *rejecting* anything whose
//!   semantics depend on shared mutation: arenas still under construction,
//!   `ref` cells, arrays. Those are the escape hatches that must not leak
//!   into a cross-thread artifact.
//! - **hydration** ([`PortableValue::hydrate`], [`hydrate_code`]): the
//!   inverse, rebuilding a machine-native segment inside whichever thread
//!   wants to execute the code. Because the portable form is already flat
//!   with index-based block references, hydration is a single pass that
//!   copies the block table verbatim — portable block `i` becomes
//!   [`BlockId`]`(i)` of one fresh segment — rather than a pointer-chasing
//!   graph walk.
//!
//! Extraction and hydration cost one pass each; afterwards execution pays
//! no synchronization at all — every worker runs plain `Rc` values on its
//! own [`crate::machine::Machine`].

use crate::instr::{Instr, MergeSwitchSpec, PrimOp, SwitchArm, SwitchTable};
use crate::seg::{BlockId, CodeRef, CodeSeg};
use crate::value::{Closure, ConTag, Frame, RecGroup, Value};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A thread-shareable code segment: the portable mirror of [`CodeSeg`].
/// Immutable once built; shared by reference between every value and
/// instruction extracted together.
#[derive(Debug)]
pub struct PortableSegData {
    /// All instructions, block after block.
    pub instrs: Vec<PortableInstr>,
    /// The block table: `(start, len)` ranges into `instrs`, indexed by
    /// portable block number.
    pub blocks: Vec<(u32, u32)>,
}

/// Shared handle to a [`PortableSegData`].
pub type PortableSeg = Arc<PortableSegData>;

impl PortableSegData {
    /// The instructions of one block.
    pub fn block(&self, b: u32) -> &[PortableInstr] {
        let (start, len) = self.blocks[b as usize];
        &self.instrs[start as usize..(start + len) as usize]
    }
}

/// A thread-shareable reference to executable code: a portable segment
/// plus the entry block to run.
#[derive(Debug, Clone)]
pub struct PortableCode {
    /// The segment holding the instructions.
    pub seg: PortableSeg,
    /// The entry block.
    pub block: u32,
}

impl PortableCode {
    /// The entry block's instructions.
    pub fn instrs(&self) -> &[PortableInstr] {
        self.seg.block(self.block)
    }
}

/// A thread-shareable closure body or value graph root (see
/// [`crate::value::Closure`]). Block references are portable block
/// numbers into the owning [`PortableValue`]'s segment.
#[derive(Debug)]
pub struct PortableClosure {
    /// Captured environment value.
    pub env: PortableVal,
    /// Body block.
    pub body: u32,
}

/// A thread-shareable recursive closure group (see
/// [`crate::value::RecGroup`]).
#[derive(Debug)]
pub struct PortableRecGroup {
    /// The environment captured at group-creation time.
    pub env: PortableVal,
    /// One body block per function in the group.
    pub bodies: Arc<Vec<u32>>,
}

/// A thread-shareable contiguous environment frame (see
/// [`crate::value::Frame`]): the flat-environment-mode rendering of a
/// pair spine.
#[derive(Debug)]
pub struct PortableFrame {
    /// The enclosing environment.
    pub link: PortableVal,
    /// Bindings, oldest first.
    pub slots: Vec<PortableVal>,
}

/// One arm of a portable `switch` dispatch (see [`SwitchArm`]).
#[derive(Debug, Clone)]
pub struct PortableSwitchArm {
    /// Tag to match.
    pub tag: ConTag,
    /// Whether the arm binds the constructor payload.
    pub bind: bool,
    /// Arm body block.
    pub code: u32,
}

/// A portable `switch` dispatch table (see [`SwitchTable`]).
#[derive(Debug, Clone)]
pub struct PortableSwitchTable {
    /// Arms in declaration order.
    pub arms: Vec<PortableSwitchArm>,
    /// Fallback block.
    pub default: Option<u32>,
}

/// The immutable subset of [`Value`], with code as portable block
/// numbers. Always paired with the [`PortableSeg`] those numbers index
/// into — see [`PortableValue`], the self-contained wrapper.
///
/// Mutable values (arenas, `ref` cells, arrays) have no portable
/// rendering — sharing them across threads would either race or silently
/// change semantics — so [`PortableValue::extract`] rejects them.
#[derive(Debug, Clone)]
pub enum PortableVal {
    /// The unit value.
    Unit,
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(Arc<str>),
    /// A pair.
    Pair(Arc<(PortableVal, PortableVal)>),
    /// A contiguous environment frame (flat environment mode only).
    Frame(Arc<PortableFrame>),
    /// A closure.
    Closure(Arc<PortableClosure>),
    /// A member of a recursive closure group.
    RecClosure {
        /// The shared group.
        group: Arc<PortableRecGroup>,
        /// Which member this value is.
        index: usize,
    },
    /// A datatype constructor application.
    Con(ConTag, Option<Arc<PortableVal>>),
}

/// A self-contained thread-shareable value: a [`PortableVal`] graph plus
/// the [`PortableSeg`] its block numbers index into.
#[derive(Debug, Clone)]
pub struct PortableValue {
    /// The segment holding every code block the value references.
    pub seg: PortableSeg,
    /// The value graph.
    pub root: PortableVal,
    /// Whether the graph (including `quote` immediates in reachable
    /// code) contains [`PortableVal::Frame`] environments — set at
    /// extraction time so consumers can refuse to hydrate a
    /// flat-environment artifact into a pair-spine session.
    uses_frames: bool,
}

/// A thread-shareable instruction: the mirror of [`Instr`] with every
/// block reference flattened to a portable block number and every
/// embedded [`Value`] replaced by [`PortableVal`].
#[derive(Debug, Clone)]
pub enum PortableInstr {
    /// No-op.
    Id,
    /// First projection.
    Fst,
    /// Second projection.
    Snd,
    /// Fused indexed environment access.
    Acc(usize),
    /// Duplicate the top of the stack.
    Push,
    /// Exchange the two top stack entries.
    Swap,
    /// Build a pair.
    ConsPair,
    /// Apply a closure.
    App,
    /// Push a constant.
    Quote(PortableVal),
    /// Build a closure.
    Cur(u32),
    /// Append a static instruction to the arena under construction.
    Emit(Box<PortableInstr>),
    /// Residualize the current value into the arena.
    LiftV,
    /// Create a fresh arena.
    NewArena,
    /// Insert an arena into another as a `Cur` body.
    Merge,
    /// Splice generated code into the instruction stream.
    Call,
    /// Conditional.
    Branch(u32, u32),
    /// Recursive closure group.
    RecClos(Arc<Vec<u32>>),
    /// Constructor application.
    Pack(ConTag),
    /// Constructor dispatch.
    Switch(Arc<PortableSwitchTable>),
    /// Primitive operation.
    Prim(PrimOp),
    /// Abort with a message.
    Fail(Arc<str>),
    /// Merge-family conditional.
    MergeBranch,
    /// Merge-family dispatch.
    MergeSwitch(Arc<MergeSwitchSpec>),
    /// Merge-family recursion.
    MergeRec(usize),
    /// Fused `push; acc n`.
    PushAcc(usize),
    /// Fused `quote v; cons`.
    QuoteCons(PortableVal),
    /// Fused `swap; cons`.
    SwapCons,
    /// Fused `cons; app`.
    ConsApp,
    /// Fused `acc n; app`.
    AccApp(usize),
    /// Fused `push; quote v`.
    PushQuote(PortableVal),
    /// Environment extension as a frame slot (flat environment mode).
    EnvCons,
}

// The entire point of this module: everything above must be shareable
// across threads. Compile-time enforcement.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PortableValue>();
    assert_send_sync::<PortableVal>();
    assert_send_sync::<PortableInstr>();
    assert_send_sync::<PortableCode>();
    assert_send_sync::<PortableSeg>();
};

/// Why a value could not be extracted into portable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractError {
    /// The offending run-time representation ("code arena", "ref cell",
    /// "array").
    pub kind: &'static str,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value contains a {}, which is mutable shared state and cannot \
             cross threads; only finished (frozen) code and first-order \
             values are portable",
            self.kind
        )
    }
}

impl std::error::Error for ExtractError {}

/// Extraction state. Blocks are memoized per `(segment identity, block)`,
/// both to preserve sharing (hydration restores it) and to keep the
/// conversion linear in the size of the object graph — generated code is
/// often a DAG (memoized generating extensions reuse whole blocks).
/// Value-level sharing (pairs, closures, groups) is memoized by pointer
/// for the same reason.
#[derive(Default)]
struct Extract {
    instrs: Vec<PortableInstr>,
    blocks: Vec<(u32, u32)>,
    /// `(CodeSeg::addr, block id)` → portable block number. The source
    /// segments are kept alive by the value under extraction, so the
    /// addresses are stable for the duration.
    block_memo: HashMap<(usize, u32), u32>,
    pairs: HashMap<*const (Value, Value), Arc<(PortableVal, PortableVal)>>,
    frames: HashMap<*const Frame, Arc<PortableFrame>>,
    closures: HashMap<*const Closure, Arc<PortableClosure>>,
    groups: HashMap<*const RecGroup, Arc<PortableRecGroup>>,
    uses_frames: bool,
}

impl Extract {
    fn finish(self) -> PortableSeg {
        Arc::new(PortableSegData {
            instrs: self.instrs,
            blocks: self.blocks,
        })
    }

    /// Packs one block of `seg` (and, transitively, every block it
    /// references) into the portable segment, returning its portable
    /// block number.
    fn block(&mut self, seg: &CodeSeg, b: BlockId) -> Result<u32, ExtractError> {
        let key = (seg.addr(), b.0);
        if let Some(done) = self.block_memo.get(&key) {
            return Ok(*done);
        }
        // Reserve the number first so sharing within the block's own
        // reference graph resolves; the range is filled in below.
        let number = u32::try_from(self.blocks.len()).expect("portable segment exceeds u32 blocks");
        self.blocks.push((0, 0));
        self.block_memo.insert(key, number);
        let converted = seg
            .block_to_vec(b)
            .iter()
            .map(|i| self.instr(seg, i))
            .collect::<Result<Vec<_>, _>>()?;
        let start =
            u32::try_from(self.instrs.len()).expect("portable segment exceeds u32 instructions");
        let len = u32::try_from(converted.len()).expect("block exceeds u32 instructions");
        self.instrs.extend(converted);
        self.blocks[number as usize] = (start, len);
        Ok(number)
    }

    fn value(&mut self, v: &Value) -> Result<PortableVal, ExtractError> {
        Ok(match v {
            Value::Unit => PortableVal::Unit,
            Value::Int(n) => PortableVal::Int(*n),
            Value::Bool(b) => PortableVal::Bool(*b),
            Value::Str(s) => PortableVal::Str(Arc::from(s.as_str())),
            Value::Pair(p) => {
                let key = Rc::as_ptr(p);
                if let Some(done) = self.pairs.get(&key) {
                    return Ok(PortableVal::Pair(done.clone()));
                }
                let pair = Arc::new((self.value(&p.0)?, self.value(&p.1)?));
                self.pairs.insert(key, pair.clone());
                PortableVal::Pair(pair)
            }
            Value::Frame(f) => {
                self.uses_frames = true;
                let key = Rc::as_ptr(f);
                if let Some(done) = self.frames.get(&key) {
                    return Ok(PortableVal::Frame(done.clone()));
                }
                let frame = Arc::new(PortableFrame {
                    link: self.value(&f.link)?,
                    slots: f
                        .slots
                        .iter()
                        .map(|s| self.value(s))
                        .collect::<Result<Vec<_>, _>>()?,
                });
                self.frames.insert(key, frame.clone());
                PortableVal::Frame(frame)
            }
            Value::Closure(c) => {
                let key = Rc::as_ptr(c);
                if let Some(done) = self.closures.get(&key) {
                    return Ok(PortableVal::Closure(done.clone()));
                }
                let closure = Arc::new(PortableClosure {
                    env: self.value(&c.env)?,
                    body: self.block(&c.body.seg, c.body.block)?,
                });
                self.closures.insert(key, closure.clone());
                PortableVal::Closure(closure)
            }
            Value::RecClosure { group, index } => {
                let key = Rc::as_ptr(group);
                let group = if let Some(done) = self.groups.get(&key) {
                    done.clone()
                } else {
                    let bodies = group
                        .bodies
                        .iter()
                        .map(|b| self.block(&group.seg, *b))
                        .collect::<Result<Vec<_>, _>>()?;
                    let g = Arc::new(PortableRecGroup {
                        env: self.value(&group.env)?,
                        bodies: Arc::new(bodies),
                    });
                    self.groups.insert(key, g.clone());
                    g
                };
                PortableVal::RecClosure {
                    group,
                    index: *index as usize,
                }
            }
            Value::Con(tag, payload) => PortableVal::Con(
                *tag,
                match payload {
                    Some(p) => Some(Arc::new(self.value(p)?)),
                    None => None,
                },
            ),
            Value::Arena(_) => return Err(ExtractError { kind: "code arena" }),
            Value::Ref(_) => return Err(ExtractError { kind: "ref cell" }),
            Value::Array(_) => return Err(ExtractError { kind: "array" }),
        })
    }

    fn instr(&mut self, seg: &CodeSeg, i: &Instr) -> Result<PortableInstr, ExtractError> {
        Ok(match i {
            Instr::Id => PortableInstr::Id,
            Instr::Fst => PortableInstr::Fst,
            Instr::Snd => PortableInstr::Snd,
            Instr::Acc(n) => PortableInstr::Acc(*n),
            Instr::Push => PortableInstr::Push,
            Instr::Swap => PortableInstr::Swap,
            Instr::ConsPair => PortableInstr::ConsPair,
            Instr::App => PortableInstr::App,
            Instr::Quote(v) => PortableInstr::Quote(self.value(v)?),
            Instr::Cur(c) => PortableInstr::Cur(self.block(seg, *c)?),
            Instr::Emit(inner) => PortableInstr::Emit(Box::new(self.instr(seg, inner)?)),
            Instr::LiftV => PortableInstr::LiftV,
            Instr::NewArena => PortableInstr::NewArena,
            Instr::Merge => PortableInstr::Merge,
            Instr::Call => PortableInstr::Call,
            Instr::Branch(t, e) => {
                PortableInstr::Branch(self.block(seg, *t)?, self.block(seg, *e)?)
            }
            Instr::RecClos(bodies) => {
                let bodies = bodies
                    .iter()
                    .map(|b| self.block(seg, *b))
                    .collect::<Result<Vec<_>, _>>()?;
                PortableInstr::RecClos(Arc::new(bodies))
            }
            Instr::Pack(tag) => PortableInstr::Pack(*tag),
            Instr::Switch(table) => {
                let arms = table
                    .arms
                    .iter()
                    .map(|a| {
                        Ok(PortableSwitchArm {
                            tag: a.tag,
                            bind: a.bind,
                            code: self.block(seg, a.code)?,
                        })
                    })
                    .collect::<Result<Vec<_>, ExtractError>>()?;
                let default = match table.default {
                    Some(d) => Some(self.block(seg, d)?),
                    None => None,
                };
                PortableInstr::Switch(Arc::new(PortableSwitchTable { arms, default }))
            }
            Instr::Prim(op) => PortableInstr::Prim(*op),
            Instr::Fail(msg) => PortableInstr::Fail(Arc::from(&**msg)),
            Instr::MergeBranch => PortableInstr::MergeBranch,
            Instr::MergeSwitch(spec) => PortableInstr::MergeSwitch(Arc::new((**spec).clone())),
            Instr::MergeRec(n) => PortableInstr::MergeRec(*n),
            Instr::PushAcc(n) => PortableInstr::PushAcc(*n),
            Instr::QuoteCons(v) => PortableInstr::QuoteCons(self.value(v)?),
            Instr::SwapCons => PortableInstr::SwapCons,
            Instr::ConsApp => PortableInstr::ConsApp,
            Instr::AccApp(n) => PortableInstr::AccApp(*n),
            Instr::PushQuote(v) => PortableInstr::PushQuote(self.value(v)?),
            Instr::EnvCons => PortableInstr::EnvCons,
        })
    }
}

/// Hydration state: one fresh [`CodeSeg`] per portable segment (shared by
/// every value hydrated together), plus pointer memos restoring
/// value-level sharing.
struct Hydrate {
    seg: CodeSeg,
    pairs: HashMap<*const (PortableVal, PortableVal), Rc<(Value, Value)>>,
    frames: HashMap<*const PortableFrame, Rc<Frame>>,
    closures: HashMap<*const PortableClosure, Rc<Closure>>,
    groups: HashMap<*const PortableRecGroup, Rc<RecGroup>>,
}

impl Hydrate {
    fn code(&self, b: u32) -> CodeRef {
        CodeRef {
            seg: self.seg.clone(),
            block: BlockId(b),
        }
    }

    fn value(&mut self, v: &PortableVal) -> Value {
        match v {
            PortableVal::Unit => Value::Unit,
            PortableVal::Int(n) => Value::Int(*n),
            PortableVal::Bool(b) => Value::Bool(*b),
            PortableVal::Str(s) => Value::str(&**s),
            PortableVal::Pair(p) => {
                let key = Arc::as_ptr(p);
                if let Some(done) = self.pairs.get(&key) {
                    return Value::Pair(done.clone());
                }
                let pair = Rc::new((self.value(&p.0), self.value(&p.1)));
                self.pairs.insert(key, pair.clone());
                Value::Pair(pair)
            }
            PortableVal::Frame(f) => {
                let key = Arc::as_ptr(f);
                if let Some(done) = self.frames.get(&key) {
                    return Value::Frame(done.clone());
                }
                let frame = Rc::new(Frame {
                    link: self.value(&f.link),
                    slots: f.slots.iter().map(|s| self.value(s)).collect(),
                });
                self.frames.insert(key, frame.clone());
                Value::Frame(frame)
            }
            PortableVal::Closure(c) => {
                let key = Arc::as_ptr(c);
                if let Some(done) = self.closures.get(&key) {
                    return Value::Closure(done.clone());
                }
                let closure = Rc::new(Closure {
                    env: self.value(&c.env),
                    body: self.code(c.body),
                });
                self.closures.insert(key, closure.clone());
                Value::Closure(closure)
            }
            PortableVal::RecClosure { group, index } => {
                let key = Arc::as_ptr(group);
                let group = if let Some(done) = self.groups.get(&key) {
                    done.clone()
                } else {
                    let g = Rc::new(RecGroup {
                        env: self.value(&group.env),
                        seg: self.seg.clone(),
                        bodies: Rc::new(group.bodies.iter().map(|b| BlockId(*b)).collect()),
                    });
                    self.groups.insert(key, g.clone());
                    g
                };
                Value::RecClosure {
                    group,
                    index: u32::try_from(*index).expect("rec group exceeds u32 members"),
                }
            }
            PortableVal::Con(tag, payload) => {
                Value::Con(*tag, payload.as_ref().map(|p| Rc::new(self.value(p))))
            }
        }
    }
}

impl PortableValue {
    /// Extracts a machine value into portable form, packing every
    /// reachable code block into one dense portable segment.
    ///
    /// # Errors
    ///
    /// Returns an [`ExtractError`] if the value (transitively) contains an
    /// arena, a `ref` cell, or an array.
    pub fn extract(v: &Value) -> Result<PortableValue, ExtractError> {
        let mut e = Extract::default();
        let root = e.value(v)?;
        let uses_frames = e.uses_frames;
        Ok(PortableValue {
            seg: e.finish(),
            root,
            uses_frames,
        })
    }

    /// Assembles a portable value from already-validated parts. Only the
    /// wire decoder uses this: `uses_frames` is an invariant of the graph
    /// (recomputed during decode, never trusted from the producer), so the
    /// constructor stays crate-private.
    pub(crate) fn from_parts(seg: PortableSeg, root: PortableVal, uses_frames: bool) -> Self {
        PortableValue {
            seg,
            root,
            uses_frames,
        }
    }

    /// Whether the value graph contains contiguous environment frames
    /// ([`PortableVal::Frame`]). Frames only exist under the flat
    /// environment mode; a consumer running a different mode must refuse
    /// to hydrate such a value rather than silently mixing
    /// representations with different step counts.
    pub fn uses_frames(&self) -> bool {
        self.uses_frames
    }

    /// Rebuilds a machine-native value inside the calling thread: one
    /// fresh segment (the block table copies over verbatim), then the
    /// value graph. Sharing present at extraction time is restored.
    pub fn hydrate(&self) -> Value {
        let mut h = hydrate_seg(&self.seg);
        h.value(&self.root)
    }

    /// Total number of instructions reachable from this value, counting
    /// each shared block once (the artifact-size metric). Because
    /// extraction packs exactly the reachable blocks, this is simply the
    /// portable segment's length.
    pub fn instr_count(&self) -> usize {
        self.seg.instrs.len()
    }
}

/// Extracts a frozen code reference into portable form.
///
/// # Errors
///
/// Returns an [`ExtractError`] if an embedded constant (`quote`)
/// contains a non-portable value.
pub fn extract_code(c: &CodeRef) -> Result<PortableCode, ExtractError> {
    let mut e = Extract::default();
    let block = e.block(&c.seg, c.block)?;
    Ok(PortableCode {
        seg: e.finish(),
        block,
    })
}

/// Rebuilds machine-native code inside the calling thread (one fresh
/// segment per call).
pub fn hydrate_code(c: &PortableCode) -> CodeRef {
    let h = hydrate_seg(&c.seg);
    h.code(c.block)
}

/// Rebuilds the whole portable segment as one machine segment in a single
/// pass, block table carried over verbatim (portable block `i` becomes
/// `BlockId(i)`).
fn hydrate_seg(p: &PortableSeg) -> Hydrate {
    let seg = CodeSeg::new();
    let mut h = Hydrate {
        seg: seg.clone(),
        pairs: HashMap::new(),
        frames: HashMap::new(),
        closures: HashMap::new(),
        groups: HashMap::new(),
    };
    for b in 0..p.blocks.len() {
        let instrs: Vec<Instr> = p
            .block(b as u32)
            .iter()
            .map(|i| hydrate_instr(&mut h, i))
            .collect();
        h.seg.add_block(instrs);
    }
    h
}

/// Converts one portable instruction back to machine form. Block numbers
/// map to [`BlockId`]s directly (the hydrated segment's block table is a
/// verbatim copy of the portable one); `Quote`d values are rebuilt
/// through `h` so value-level sharing is restored.
fn hydrate_instr(h: &mut Hydrate, i: &PortableInstr) -> Instr {
    match i {
        PortableInstr::Id => Instr::Id,
        PortableInstr::Fst => Instr::Fst,
        PortableInstr::Snd => Instr::Snd,
        PortableInstr::Acc(n) => Instr::Acc(*n),
        PortableInstr::Push => Instr::Push,
        PortableInstr::Swap => Instr::Swap,
        PortableInstr::ConsPair => Instr::ConsPair,
        PortableInstr::App => Instr::App,
        PortableInstr::Quote(v) => Instr::Quote(h.value(v)),
        PortableInstr::Cur(c) => Instr::Cur(BlockId(*c)),
        PortableInstr::Emit(inner) => Instr::Emit(Box::new(hydrate_instr(h, inner))),
        PortableInstr::LiftV => Instr::LiftV,
        PortableInstr::NewArena => Instr::NewArena,
        PortableInstr::Merge => Instr::Merge,
        PortableInstr::Call => Instr::Call,
        PortableInstr::Branch(t, e) => Instr::Branch(BlockId(*t), BlockId(*e)),
        PortableInstr::RecClos(bodies) => {
            Instr::RecClos(Rc::new(bodies.iter().map(|b| BlockId(*b)).collect()))
        }
        PortableInstr::Pack(tag) => Instr::Pack(*tag),
        PortableInstr::Switch(table) => {
            let arms = table
                .arms
                .iter()
                .map(|a| SwitchArm {
                    tag: a.tag,
                    bind: a.bind,
                    code: BlockId(a.code),
                })
                .collect();
            let default = table.default.map(BlockId);
            Instr::Switch(Rc::new(SwitchTable { arms, default }))
        }
        PortableInstr::Prim(op) => Instr::Prim(*op),
        PortableInstr::Fail(msg) => Instr::Fail(Rc::from(&**msg)),
        PortableInstr::MergeBranch => Instr::MergeBranch,
        PortableInstr::MergeSwitch(spec) => Instr::MergeSwitch(Rc::new((**spec).clone())),
        PortableInstr::MergeRec(n) => Instr::MergeRec(*n),
        PortableInstr::PushAcc(n) => Instr::PushAcc(*n),
        PortableInstr::QuoteCons(v) => Instr::QuoteCons(h.value(v)),
        PortableInstr::SwapCons => Instr::SwapCons,
        PortableInstr::ConsApp => Instr::ConsApp,
        PortableInstr::AccApp(n) => Instr::AccApp(*n),
        PortableInstr::PushQuote(v) => Instr::PushQuote(h.value(v)),
        PortableInstr::EnvCons => Instr::EnvCons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::value::Arena;
    use std::cell::RefCell;

    fn closure(env: Value, body: Vec<Instr>) -> Value {
        Value::Closure(Rc::new(Closure {
            env,
            body: CodeSeg::new().entry(body),
        }))
    }

    fn app() -> CodeRef {
        CodeSeg::new().entry(vec![Instr::App])
    }

    #[test]
    fn first_order_values_roundtrip() {
        let v = Value::tuple(vec![
            Value::Int(-3),
            Value::Bool(true),
            Value::str("hi"),
            Value::Con(2, Some(Rc::new(Value::Unit))),
        ]);
        let p = PortableValue::extract(&v).unwrap();
        assert_eq!(v.structural_eq(&p.hydrate()), Some(true));
        assert_eq!(p.instr_count(), 0, "no code reachable");
    }

    #[test]
    fn closures_roundtrip_and_still_run() {
        // fn x => snd x + 1, captured env ().
        let f = closure(
            Value::Unit,
            vec![
                Instr::Snd,
                Instr::Push,
                Instr::Quote(Value::Int(1)),
                Instr::ConsPair,
                Instr::Prim(PrimOp::Add),
            ],
        );
        let p = PortableValue::extract(&f).unwrap();
        let g = p.hydrate();
        let out = Machine::new()
            .run(app(), Value::pair(g, Value::Int(41)))
            .unwrap();
        assert!(matches!(out, Value::Int(42)));
    }

    #[test]
    fn mutable_state_is_rejected() {
        let cases = [
            (Value::Arena(Arena::new()), "code arena"),
            (Value::Ref(Rc::new(RefCell::new(Value::Unit))), "ref cell"),
            (Value::Array(Rc::new(RefCell::new(vec![]))), "array"),
        ];
        for (v, kind) in cases {
            // Bury it in a pair to check the traversal is transitive.
            let buried = Value::pair(Value::Int(1), v);
            let err = PortableValue::extract(&buried).unwrap_err();
            assert_eq!(err.kind, kind);
            assert!(err.to_string().contains(kind));
        }
    }

    #[test]
    fn shared_code_stays_shared_through_roundtrip() {
        // Two closures over one segment sharing one body block.
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![Instr::Snd]);
        let mk = || {
            Value::Closure(Rc::new(Closure {
                env: Value::Unit,
                body: CodeRef {
                    seg: seg.clone(),
                    block: body,
                },
            }))
        };
        let f = Value::pair(mk(), mk());
        let p = PortableValue::extract(&f).unwrap();
        // Extraction packs the shared block once…
        assert_eq!(p.seg.blocks.len(), 1);
        assert_eq!(p.instr_count(), 1);
        let h = p.hydrate();
        // …and hydration restores the sharing: both closures reference
        // the same block of the same fresh segment.
        let (ha, hb) = match &h {
            Value::Pair(pair) => match (&pair.0, &pair.1) {
                (Value::Closure(a), Value::Closure(b)) => (a.clone(), b.clone()),
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        };
        assert!(CodeRef::same_block(&ha.body, &hb.body));
    }

    #[test]
    fn every_instruction_roundtrips() {
        // One of each instruction, nested blocks included, so adding an
        // instruction without a portable rendering fails this test.
        let seg = CodeSeg::new();
        let sub = seg.add_block(vec![Instr::Id]);
        let all = vec![
            Instr::Id,
            Instr::Fst,
            Instr::Snd,
            Instr::Acc(2),
            Instr::Push,
            Instr::Swap,
            Instr::ConsPair,
            Instr::App,
            Instr::Quote(Value::Int(7)),
            Instr::Cur(sub),
            Instr::Emit(Box::new(Instr::Snd)),
            Instr::LiftV,
            Instr::NewArena,
            Instr::Merge,
            Instr::Call,
            Instr::Branch(sub, sub),
            Instr::RecClos(Rc::new(vec![sub])),
            Instr::Pack(3),
            Instr::Switch(Rc::new(SwitchTable {
                arms: vec![SwitchArm {
                    tag: 0,
                    bind: true,
                    code: sub,
                }],
                default: Some(sub),
            })),
            Instr::Prim(PrimOp::Mul),
            Instr::Fail(Rc::from("boom")),
            Instr::MergeBranch,
            Instr::MergeSwitch(Rc::new(MergeSwitchSpec {
                arms: vec![(0, true)],
                default: true,
            })),
            Instr::MergeRec(2),
            Instr::PushAcc(1),
            Instr::QuoteCons(Value::Int(8)),
            Instr::SwapCons,
            Instr::ConsApp,
            Instr::AccApp(0),
            Instr::PushQuote(Value::Bool(false)),
            Instr::EnvCons,
        ];
        let code = seg.entry(all);
        let portable = extract_code(&code).unwrap();
        let back = hydrate_code(&portable);
        assert_eq!(code.len(), back.len());
        for (orig, round) in code.to_vec().iter().zip(back.to_vec().iter()) {
            assert_eq!(orig.opcode(), round.opcode());
        }
    }

    #[test]
    fn frame_environments_roundtrip_and_are_flagged() {
        // A closure whose captured environment is a frame — what flat
        // environment mode produces — survives extraction faithfully
        // (same representation, so same step counts on hydrate), and the
        // artifact is flagged so mismatched consumers can refuse it.
        let env = Value::env_extend(
            Value::env_extend(Value::Unit, Value::Int(10)),
            Value::Int(20),
        );
        // After application the argument is slot 0, so acc 2 reads the
        // deepest captured binding.
        let f = closure(env, vec![Instr::Acc(2)]);
        let p = PortableValue::extract(&f).unwrap();
        assert!(p.uses_frames());
        let g = p.hydrate();
        let Value::Closure(c) = &g else {
            panic!("{g:?}")
        };
        assert!(matches!(c.env, Value::Frame(_)), "representation kept");
        let out = Machine::new()
            .run(app(), Value::pair(g, Value::Unit))
            .unwrap();
        assert!(matches!(out, Value::Int(10)), "{out}");
        // Pair-spine values are not flagged.
        let plain = closure(Value::pair(Value::Unit, Value::Int(1)), vec![Instr::Snd]);
        assert!(!PortableValue::extract(&plain).unwrap().uses_frames());
    }

    #[test]
    fn shared_frames_stay_shared_through_roundtrip() {
        let env = Value::env_extend(Value::Unit, Value::Int(1));
        let v = Value::pair(env.clone(), env);
        let p = PortableValue::extract(&v).unwrap();
        let h = p.hydrate();
        let Value::Pair(pair) = &h else {
            panic!("{h:?}")
        };
        let (Value::Frame(a), Value::Frame(b)) = (&pair.0, &pair.1) else {
            panic!("{h:?}")
        };
        assert!(Rc::ptr_eq(a, b), "frame sharing restored");
    }

    #[test]
    fn quoted_closures_roundtrip() {
        // LiftV residualizes closures as `quote` immediates in generated
        // code; those must survive extraction inside code, not just at
        // the value layer.
        let inner = closure(Value::Unit, vec![Instr::Snd]);
        let seg = CodeSeg::new();
        let code = seg.entry(vec![
            Instr::Push,
            Instr::Quote(inner),
            Instr::Swap,
            Instr::Quote(Value::Int(5)),
            Instr::ConsPair,
            Instr::App,
        ]);
        let p = extract_code(&code).unwrap();
        let back = hydrate_code(&p);
        let out = Machine::new().run(back, Value::Unit).unwrap();
        assert!(matches!(out, Value::Int(5)), "{out}");
    }

    #[test]
    fn instr_count_counts_shared_code_once() {
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![Instr::Id, Instr::Snd]);
        let mk = || {
            Value::Closure(Rc::new(Closure {
                env: Value::Unit,
                body: CodeRef {
                    seg: seg.clone(),
                    block: body,
                },
            }))
        };
        let v = Value::pair(mk(), mk());
        let p = PortableValue::extract(&v).unwrap();
        // The shared 2-instruction body packs once. (The old tree
        // representation also counted the `cur` instructions of each
        // closure body; closures now point straight at blocks.)
        assert_eq!(p.instr_count(), 2);
    }

    #[test]
    fn portable_values_cross_threads() {
        let f = closure(Value::Unit, vec![Instr::Snd]);
        let p = PortableValue::extract(&f).unwrap();
        let out = std::thread::spawn(move || {
            let g = p.hydrate();
            let v = Machine::new()
                .run(app(), Value::pair(g, Value::Int(9)))
                .unwrap();
            matches!(v, Value::Int(9))
        })
        .join()
        .unwrap();
        assert!(out);
    }
}
