//! Flat code segments: one contiguous arena of instructions with an
//! index-based block table.
//!
//! The paper's point is Fabius-style *flat instruction-stream* code
//! generation — no source-term manipulation at run time. A [`CodeSeg`] is
//! the canonical executable form: every compiled or generated block of
//! code is a `(start, len)` range into one growable instruction vector,
//! and nested code (closure bodies, branch arms, switch arms, recursive
//! groups) is referenced by [`BlockId`] instead of by owning pointer.
//! Machine frames are `(segment, block, pc)` triples, so dispatch walks a
//! contiguous slice with zero per-step reference counting, and run-time
//! generation appends new blocks to the tail of the same segment — exactly
//! the paper's arena model.

use crate::instr::{Instr, SwitchArm, SwitchTable};
use std::cell::{Ref, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// An index into a segment's block table. Only meaningful relative to the
/// [`CodeSeg`] it was issued by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One entry of the block table: a `start..start+len` range of the
/// segment's instruction vector.
#[derive(Debug, Clone, Copy)]
struct Block {
    start: u32,
    len: u32,
}

#[derive(Debug, Default)]
struct SegInner {
    instrs: RefCell<Vec<Instr>>,
    blocks: RefCell<Vec<Block>>,
    /// Peephole memo: source block → optimized block (see `opt`).
    opt_memo: RefCell<HashMap<u32, u32>>,
    /// Fusion memo: source block → fused block (see `opt::fuse`).
    fuse_memo: RefCell<HashMap<u32, u32>>,
    /// Thread-coded lowerings: block → its native tier (see `native`).
    native_memo: RefCell<HashMap<u32, Rc<crate::native::NativeBlock>>>,
    /// Adaptive tier controller state, indexed by block id (block ids
    /// are dense, so a flat table makes the per-activation lookup an
    /// index instead of a hash). Entries only ever gain information:
    /// counters rise and `promoted` is written at most once, so a
    /// block's tier is monotone.
    tier: RefCell<Vec<TierState>>,
}

/// Tier-controller bookkeeping for one block.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct TierState {
    /// Activations observed before promotion.
    pub execs: u64,
    /// The block's promoted rendering, once the controller acted.
    /// May be the block itself when fusion found nothing to rewrite.
    pub promoted: Option<BlockId>,
    /// The tier this block runs at when executed directly
    /// (0 cold, 1 fused, 2 fused + native-lowered).
    pub level: u8,
}

/// What the tier controller learns from one frame activation — see
/// [`CodeSeg::tier_probe`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum TierProbe {
    /// The block has a promoted rendering: run it, at this level.
    Promoted(BlockId, u8),
    /// Still cold: the activation count *before* this one, and the
    /// block's own level.
    Cold(u64, u8),
}

/// A contiguous code segment. Cheap to clone (a reference-counted
/// handle); blocks only ever *append*, so issued [`BlockId`]s and the
/// ranges behind them are stable forever.
#[derive(Clone, Default)]
pub struct CodeSeg(Rc<SegInner>);

impl fmt::Debug for CodeSeg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CodeSeg")
            .field("instrs", &self.0.instrs.borrow().len())
            .field("blocks", &self.0.blocks.borrow().len())
            .finish()
    }
}

impl CodeSeg {
    /// A fresh empty segment.
    pub fn new() -> CodeSeg {
        CodeSeg::default()
    }

    /// Whether two handles name the same segment. [`BlockId`]s transfer
    /// between segments only through [`CodeSeg::import_block`].
    pub fn ptr_eq(a: &CodeSeg, b: &CodeSeg) -> bool {
        Rc::ptr_eq(&a.0, &b.0)
    }

    /// A stable address for identity-keyed memo tables.
    pub fn addr(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }

    /// Appends `instrs` as a new block at the segment tail and returns
    /// its id.
    pub fn add_block(&self, instrs: Vec<Instr>) -> BlockId {
        let mut v = self.0.instrs.borrow_mut();
        let start = u32::try_from(v.len()).expect("segment exceeds u32 instructions");
        let len = u32::try_from(instrs.len()).expect("block exceeds u32 instructions");
        v.extend(instrs);
        let mut blocks = self.0.blocks.borrow_mut();
        let id = u32::try_from(blocks.len()).expect("segment exceeds u32 blocks");
        blocks.push(Block { start, len });
        BlockId(id)
    }

    /// Appends `instrs` as a new block and returns a self-contained
    /// reference to it.
    pub fn entry(&self, instrs: Vec<Instr>) -> CodeRef {
        CodeRef {
            seg: self.clone(),
            block: self.add_block(instrs),
        }
    }

    /// The `(start, len)` range of a block.
    ///
    /// # Panics
    ///
    /// Panics if `b` was not issued by this segment.
    pub fn block_bounds(&self, b: BlockId) -> (usize, usize) {
        let blk = self.0.blocks.borrow()[b.0 as usize];
        (blk.start as usize, blk.len as usize)
    }

    /// Borrows the whole instruction vector. Hold the guard across a
    /// dispatch loop; drop it before any operation that may append blocks
    /// to this segment.
    pub fn borrow_instrs(&self) -> Ref<'_, Vec<Instr>> {
        self.0.instrs.borrow()
    }

    /// Copies one block's instructions out.
    pub fn block_to_vec(&self, b: BlockId) -> Vec<Instr> {
        let (start, len) = self.block_bounds(b);
        self.0.instrs.borrow()[start..start + len].to_vec()
    }

    /// Total instructions across all blocks.
    pub fn len(&self) -> usize {
        self.0.instrs.borrow().len()
    }

    /// Whether the segment holds no instructions yet.
    pub fn is_empty(&self) -> bool {
        self.0.instrs.borrow().is_empty()
    }

    /// Number of blocks issued so far.
    pub fn num_blocks(&self) -> usize {
        self.0.blocks.borrow().len()
    }

    /// Deep-copies a block of `from` (and, recursively, every block it
    /// references) into this segment, returning the copy's id. Identity
    /// when `from` *is* this segment.
    pub fn import_block(&self, from: &CodeSeg, b: BlockId) -> BlockId {
        if CodeSeg::ptr_eq(self, from) {
            return b;
        }
        let body = from
            .block_to_vec(b)
            .iter()
            .map(|i| self.import_instr(from, i))
            .collect();
        self.add_block(body)
    }

    /// Rewrites one instruction of `from` so every nested [`BlockId`] it
    /// carries refers to this segment, importing referenced blocks as
    /// needed. Identity when `from` *is* this segment.
    pub fn import_instr(&self, from: &CodeSeg, i: &Instr) -> Instr {
        if CodeSeg::ptr_eq(self, from) {
            return i.clone();
        }
        match i {
            Instr::Cur(b) => Instr::Cur(self.import_block(from, *b)),
            Instr::Branch(t, e) => {
                Instr::Branch(self.import_block(from, *t), self.import_block(from, *e))
            }
            Instr::Switch(table) => {
                let arms = table
                    .arms
                    .iter()
                    .map(|arm| SwitchArm {
                        tag: arm.tag,
                        bind: arm.bind,
                        code: self.import_block(from, arm.code),
                    })
                    .collect();
                let default = table.default.map(|d| self.import_block(from, d));
                Instr::Switch(Rc::new(SwitchTable { arms, default }))
            }
            Instr::RecClos(bodies) => Instr::RecClos(Rc::new(
                bodies.iter().map(|b| self.import_block(from, *b)).collect(),
            )),
            Instr::Emit(inner) => Instr::Emit(Box::new(self.import_instr(from, inner))),
            other => other.clone(),
        }
    }

    /// The peephole memo (source block → optimized block), shared by all
    /// handles to this segment.
    pub(crate) fn opt_memo_get(&self, b: BlockId) -> Option<BlockId> {
        self.0.opt_memo.borrow().get(&b.0).copied().map(BlockId)
    }

    pub(crate) fn opt_memo_put(&self, from: BlockId, to: BlockId) {
        self.0.opt_memo.borrow_mut().insert(from.0, to.0);
    }

    /// The fusion memo (source block → fused block), shared by all
    /// handles to this segment.
    pub(crate) fn fuse_memo_get(&self, b: BlockId) -> Option<BlockId> {
        self.0.fuse_memo.borrow().get(&b.0).copied().map(BlockId)
    }

    pub(crate) fn fuse_memo_put(&self, from: BlockId, to: BlockId) {
        self.0.fuse_memo.borrow_mut().insert(from.0, to.0);
    }

    /// The thread-coded lowering memo (block → native tier), shared by
    /// all handles to this segment. Blocks are immutable ranges, so a
    /// cached lowering never goes stale.
    pub(crate) fn native_memo_get(&self, b: BlockId) -> Option<Rc<crate::native::NativeBlock>> {
        self.0.native_memo.borrow().get(&b.0).cloned()
    }

    pub(crate) fn native_memo_put(&self, b: BlockId, lowered: Rc<crate::native::NativeBlock>) {
        self.0.native_memo.borrow_mut().insert(b.0, lowered);
    }

    /// The tier controller's per-activation probe, everything in one
    /// borrow: if `b` has a promoted rendering, report it and the level
    /// that rendering runs at; otherwise count this activation and
    /// report the count *before* it (so `promote_after = 0` promotes at
    /// the very first activation) plus the block's own level. Promoted
    /// blocks are *not* counted — their activations land on the
    /// rendering, and the decision for the source block is already made.
    pub(crate) fn tier_probe(&self, b: BlockId) -> TierProbe {
        let mut tier = self.0.tier.borrow_mut();
        let i = b.0 as usize;
        if tier.len() <= i {
            tier.resize(i + 1, TierState::default());
        }
        if let Some(promoted) = tier[i].promoted {
            let level = tier.get(promoted.0 as usize).map_or(0, |st| st.level);
            return TierProbe::Promoted(promoted, level);
        }
        let st = &mut tier[i];
        let prior = st.execs;
        st.execs += 1;
        TierProbe::Cold(prior, st.level)
    }

    /// Publishes the promotion `b → to` at `level`. A block's tier only
    /// rises: a second publication for the same block is a programming
    /// error and panics in debug builds.
    pub(crate) fn tier_promote(&self, b: BlockId, to: BlockId, level: u8) {
        let mut tier = self.0.tier.borrow_mut();
        let top = b.0.max(to.0) as usize;
        if tier.len() <= top {
            tier.resize(top + 1, TierState::default());
        }
        let st = &mut tier[b.0 as usize];
        debug_assert!(st.promoted.is_none(), "block {b} promoted twice");
        st.promoted = Some(to);
        let dest = &mut tier[to.0 as usize];
        dest.level = dest.level.max(level);
    }

    /// The tier `b` runs at when executed directly (0 for blocks the
    /// controller never touched).
    pub(crate) fn tier_level(&self, b: BlockId) -> u8 {
        self.0
            .tier
            .borrow()
            .get(b.0 as usize)
            .map_or(0, |st| st.level)
    }
}

/// A self-contained reference to executable code: a segment handle plus
/// the block to run. This replaces the old owning `Rc<Vec<Instr>>` form.
#[derive(Debug, Clone)]
pub struct CodeRef {
    /// The segment holding the instructions.
    pub seg: CodeSeg,
    /// The block to execute.
    pub block: BlockId,
}

impl CodeRef {
    /// Number of instructions in the referenced block.
    pub fn len(&self) -> usize {
        self.seg.block_bounds(self.block).1
    }

    /// Whether the referenced block is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the referenced block's instructions out.
    pub fn to_vec(&self) -> Vec<Instr> {
        self.seg.block_to_vec(self.block)
    }

    /// Whether two references name the same block of the same segment.
    pub fn same_block(a: &CodeRef, b: &CodeRef) -> bool {
        CodeSeg::ptr_eq(&a.seg, &b.seg) && a.block == b.block
    }
}

/// An append-only emission buffer targeting one segment: the compiler's
/// interface for producing flat code. Nested code is finished into the
/// segment first (yielding a [`BlockId`]) and then referenced by the
/// enclosing instruction.
#[derive(Debug)]
pub struct CodeBuilder {
    seg: CodeSeg,
    buf: Vec<Instr>,
}

impl CodeBuilder {
    /// A builder emitting into `seg`.
    pub fn new(seg: &CodeSeg) -> CodeBuilder {
        CodeBuilder {
            seg: seg.clone(),
            buf: Vec::new(),
        }
    }

    /// The target segment.
    pub fn seg(&self) -> &CodeSeg {
        &self.seg
    }

    /// A fresh builder over the same segment (for a nested body).
    pub fn child(&self) -> CodeBuilder {
        CodeBuilder::new(&self.seg)
    }

    /// Appends one instruction.
    pub fn push(&mut self, i: Instr) {
        self.buf.push(i);
    }

    /// Appends a sequence of instructions.
    pub fn extend(&mut self, instrs: impl IntoIterator<Item = Instr>) {
        self.buf.extend(instrs);
    }

    /// Instructions emitted so far.
    pub fn instrs(&self) -> &[Instr] {
        &self.buf
    }

    /// Finishes the buffer into the segment as a new block.
    pub fn finish_block(self) -> BlockId {
        self.seg.add_block(self.buf)
    }

    /// Finishes the buffer into the segment and returns a runnable
    /// reference.
    pub fn finish_entry(self) -> CodeRef {
        let seg = self.seg.clone();
        CodeRef {
            block: self.seg.add_block(self.buf),
            seg,
        }
    }

    /// Surrenders the raw buffer without registering a block (for callers
    /// that splice the instructions into a larger sequence).
    pub fn into_instrs(self) -> Vec<Instr> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_stable_ranges() {
        let seg = CodeSeg::new();
        let a = seg.add_block(vec![Instr::Id, Instr::Fst]);
        let b = seg.add_block(vec![Instr::Snd]);
        assert_eq!(seg.block_bounds(a), (0, 2));
        assert_eq!(seg.block_bounds(b), (2, 1));
        // Appending more blocks never moves earlier ones.
        let _c = seg.add_block(vec![Instr::Id; 10]);
        assert_eq!(seg.block_bounds(a), (0, 2));
        assert_eq!(seg.num_blocks(), 3);
        assert_eq!(seg.len(), 13);
    }

    #[test]
    fn import_is_identity_within_a_segment() {
        let seg = CodeSeg::new();
        let b = seg.add_block(vec![Instr::Id]);
        assert_eq!(seg.import_block(&seg, b), b);
        let before = seg.num_blocks();
        let i = seg.import_instr(&seg, &Instr::Cur(b));
        assert!(matches!(i, Instr::Cur(x) if x == b));
        assert_eq!(seg.num_blocks(), before, "no copies made");
    }

    #[test]
    fn import_deep_copies_across_segments() {
        let src = CodeSeg::new();
        let inner = src.add_block(vec![Instr::Snd]);
        let outer = src.add_block(vec![Instr::Cur(inner), Instr::App]);
        let dst = CodeSeg::new();
        let moved = dst.import_block(&src, outer);
        let body = dst.block_to_vec(moved);
        assert_eq!(body.len(), 2);
        let Instr::Cur(moved_inner) = body[0] else {
            panic!("expected cur, got {:?}", body[0]);
        };
        assert!(matches!(dst.block_to_vec(moved_inner)[..], [Instr::Snd]));
        assert_eq!(src.num_blocks(), 2, "source untouched");
    }

    #[test]
    fn builder_emits_into_the_segment() {
        let seg = CodeSeg::new();
        let mut b = CodeBuilder::new(&seg);
        let mut inner = b.child();
        inner.push(Instr::Snd);
        let body = inner.finish_block();
        b.push(Instr::Cur(body));
        b.push(Instr::App);
        let entry = b.finish_entry();
        assert!(CodeSeg::ptr_eq(&entry.seg, &seg));
        assert_eq!(entry.len(), 2);
        assert!(matches!(entry.to_vec()[0], Instr::Cur(x) if x == body));
    }

    #[test]
    fn coderef_reads_its_block() {
        let seg = CodeSeg::new();
        let r = seg.entry(vec![Instr::Push, Instr::Swap]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(CodeRef::same_block(&r, &r.clone()));
        let other = seg.entry(vec![Instr::Push, Instr::Swap]);
        assert!(!CodeRef::same_block(&r, &other));
    }
}
