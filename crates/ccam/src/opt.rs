//! Emission-time peephole optimization of generated code.
//!
//! §4.2 of the paper: *"A more sophisticated specialization system might
//! compile emit(add) to a series of instructions which would test the
//! values of the operands of the add instruction at specialization time
//! (if they are available) and eliminate the instruction altogether if
//! either one is 0."* This module implements that idea as a post-pass
//! applied when an arena is frozen (see [`crate::machine::Machine::set_optimize`]):
//!
//! - **constant folding** — `⟨quote a, quote b⟩; prim op` → `quote (a op b)`;
//! - **unary folding** — `quote v; prim neg/not` → `quote v'`;
//! - **identity elimination** — `x + 0`, `0 + x`, `x * 1`, `1 * x`,
//!   `x - 0` reduce to `x`; `x * 0` and `0 * x` reduce to `quote 0` when
//!   `x`'s code is effect-free;
//! - **branch folding** — `branch` on a constant boolean condition;
//! - **dead `id` removal**;
//! - **access fusion** — `fst^k; snd` chains (the CAM's O(depth)
//!   environment walks) collapse into the single-dispatch `acc k`.
//!
//! Code is flat: nested blocks are rewritten by [`optimize_block`], which
//! appends the optimized rendering to the same segment and memoizes the
//! mapping per segment, so shared blocks are optimized once no matter how
//! many instructions reference them.
//!
//! The CAM pairing discipline makes operand boundaries recoverable: every
//! `⟨A, B⟩ = push; A; swap; B; cons` is parenthesis-balanced in
//! `push`/`cons`, so the extent of a compiled operand can be found by
//! depth counting.

use crate::instr::{Instr, PrimOp, SwitchArm, SwitchTable};
use crate::seg::{BlockId, CodeSeg};
use crate::value::Value;
use std::rc::Rc;

/// Optimizes a code sequence whose block references resolve in `seg`
/// (recursively through nested blocks, which are rewritten in `seg`).
/// The result computes the same values in the same order of effects.
pub fn peephole(seg: &CodeSeg, code: &[Instr]) -> Vec<Instr> {
    let mut cur: Vec<Instr> = code.iter().map(|i| optimize_nested(seg, i)).collect();
    for _ in 0..4 {
        // A pass can rewrite without shrinking (e.g. constant-folding a
        // chosen branch arm of the same length), so convergence is
        // detected by an explicit change flag, not by length.
        let (next, changed) = pass(seg, &cur);
        cur = next;
        if !changed {
            break;
        }
    }
    cur
}

/// Optimizes one block of `seg`, appending the optimized rendering as a
/// new block of the same segment and returning its id. Memoized per
/// segment: a block referenced by many instructions is optimized once,
/// and re-optimizing an already-optimized block is the identity.
pub fn optimize_block(seg: &CodeSeg, b: BlockId) -> BlockId {
    if let Some(done) = seg.opt_memo_get(b) {
        return done;
    }
    let optimized = peephole(seg, &seg.block_to_vec(b));
    let nb = seg.add_block(optimized);
    seg.opt_memo_put(b, nb);
    seg.opt_memo_put(nb, nb);
    nb
}

fn optimize_nested(seg: &CodeSeg, i: &Instr) -> Instr {
    match i {
        Instr::Cur(c) => Instr::Cur(optimize_block(seg, *c)),
        Instr::Branch(a, b) => Instr::Branch(optimize_block(seg, *a), optimize_block(seg, *b)),
        Instr::Switch(t) => Instr::Switch(Rc::new(SwitchTable {
            arms: t
                .arms
                .iter()
                .map(|arm| SwitchArm {
                    tag: arm.tag,
                    bind: arm.bind,
                    code: optimize_block(seg, arm.code),
                })
                .collect(),
            default: t.default.map(|d| optimize_block(seg, d)),
        })),
        Instr::RecClos(bodies) => Instr::RecClos(Rc::new(
            bodies.iter().map(|b| optimize_block(seg, *b)).collect(),
        )),
        // Exhaustive on purpose: a new instruction carrying nested code
        // must be added above, not silently left unoptimized.
        Instr::Id
        | Instr::Fst
        | Instr::Snd
        | Instr::Acc(_)
        | Instr::Push
        | Instr::Swap
        | Instr::ConsPair
        | Instr::App
        | Instr::Quote(_)
        | Instr::Emit(_)
        | Instr::LiftV
        | Instr::NewArena
        | Instr::Merge
        | Instr::Call
        | Instr::Pack(_)
        | Instr::Prim(_)
        | Instr::Fail(_)
        | Instr::MergeBranch
        | Instr::MergeSwitch(_)
        | Instr::MergeRec(_)
        | Instr::PushAcc(_)
        | Instr::QuoteCons(_)
        | Instr::SwapCons
        | Instr::ConsApp
        | Instr::AccApp(_)
        | Instr::PushQuote(_)
        | Instr::EnvCons => i.clone(),
    }
}

/// Number of distinguishable fusion rules (see [`FuseSelection`]).
pub const FUSE_RULE_COUNT: usize = 7;

/// Rule indices: 0 is the `fst^k; snd → acc` access collapse, the rest
/// are the adjacent-pair superinstructions.
const RULE_ACCESS: usize = 0;
const RULE_PUSH_ACC: usize = 1;
const RULE_PUSH_QUOTE: usize = 2;
const RULE_QUOTE_CONS: usize = 3;
const RULE_SWAP_CONS: usize = 4;
const RULE_CONS_APP: usize = 5;
const RULE_ACC_APP: usize = 6;

/// Human-readable rule names, indexed like the selection.
pub const FUSE_RULE_NAMES: [&str; FUSE_RULE_COUNT] = [
    "access",
    "push_acc",
    "push_quote",
    "quote_cons",
    "swap_cons",
    "cons_app",
    "acc_app",
];

/// Which fusion rules a [`fuse_pass`] run may apply. The static `fuse`
/// entry points enable everything; the adaptive tier controller derives
/// a selection from a block's own pair profile ([`select_rules`]), so
/// the fused-pair set is a parameter, not a global constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuseSelection {
    enabled: [bool; FUSE_RULE_COUNT],
}

impl FuseSelection {
    /// Every rule enabled — the static fusion behavior.
    pub fn all() -> FuseSelection {
        FuseSelection {
            enabled: [true; FUSE_RULE_COUNT],
        }
    }

    /// No rule enabled; fusion under this selection is the identity.
    pub fn none() -> FuseSelection {
        FuseSelection {
            enabled: [false; FUSE_RULE_COUNT],
        }
    }

    /// Whether rule `r` is enabled.
    pub fn is_enabled(&self, r: usize) -> bool {
        self.enabled[r]
    }

    /// Disables the access-chain collapse (rule 0). The indexed/flat
    /// baselines charge every instruction — `acc n` included — as one
    /// step, so a step-transparent rendering must not collapse a
    /// multi-instruction `fst…; snd` chain into a single `acc`: with
    /// the collapse off, every fused opcode stands for exactly two
    /// baseline instructions, which is what the adaptive controller's
    /// indexed charge model assumes.
    pub fn disable_access(&mut self) {
        self.enabled[RULE_ACCESS] = false;
    }

    /// Number of enabled rules.
    pub fn len(&self) -> usize {
        self.enabled.iter().filter(|e| **e).count()
    }

    /// Whether no rule is enabled.
    pub fn is_empty(&self) -> bool {
        self.enabled.iter().all(|e| !e)
    }
}

/// The pair rule (if any) that would fuse the adjacent pair `(a, b)`.
fn pair_rule(a: &Instr, b: &Instr) -> Option<usize> {
    Some(match (a, b) {
        (Instr::Push, Instr::Acc(_) | Instr::Snd) => RULE_PUSH_ACC,
        (Instr::Push, Instr::Quote(_)) => RULE_PUSH_QUOTE,
        (Instr::Quote(_), Instr::ConsPair) => RULE_QUOTE_CONS,
        (Instr::Swap, Instr::ConsPair) => RULE_SWAP_CONS,
        (Instr::ConsPair, Instr::App) => RULE_CONS_APP,
        (Instr::Acc(_) | Instr::Snd, Instr::App) => RULE_ACC_APP,
        _ => return None,
    })
}

/// Ranks the fusion rules by how often their pattern occurs in `code`
/// and enables the `k` most frequent (ties broken toward the lower rule
/// index, so the ranking is deterministic). Rules whose pattern never
/// occurs stay disabled regardless of `k`. Access chains are collapsed
/// *before* the pair patterns are counted, so the counts describe the
/// shape fusion actually sees — `push; fst; snd` counts one access hit
/// and one `push_acc` hit.
pub fn select_rules(code: &[Instr], k: usize) -> FuseSelection {
    let mut counts = [0u64; FUSE_RULE_COUNT];
    let mut norm: Vec<Instr> = Vec::with_capacity(code.len());
    let mut i = 0;
    while i < code.len() {
        if matches!(code[i], Instr::Fst) {
            let mut run = 1;
            while matches!(code.get(i + run), Some(Instr::Fst)) {
                run += 1;
            }
            let collapsed = match code.get(i + run) {
                Some(Instr::Snd) => Some(run),
                Some(Instr::Acc(m)) => Some(run + m),
                _ => None,
            };
            if let Some(depth) = collapsed {
                counts[RULE_ACCESS] += 1;
                norm.push(Instr::Acc(depth));
                i += run + 1;
                continue;
            }
        }
        norm.push(code[i].clone());
        i += 1;
    }
    for w in norm.windows(2) {
        if let Some(rule) = pair_rule(&w[0], &w[1]) {
            counts[rule] += 1;
        }
    }
    let mut order: Vec<usize> = (0..FUSE_RULE_COUNT).collect();
    order.sort_by_key(|&r| (std::cmp::Reverse(counts[r]), r));
    let mut sel = FuseSelection::none();
    for &r in order.iter().take(k) {
        if counts[r] > 0 {
            sel.enabled[r] = true;
        }
    }
    sel
}

/// Superinstruction fusion (DESIGN.md §11): rewrites the hottest adjacent
/// opcode pairs of the CAM's stereotyped sequences into single fused
/// dispatches. Unlike [`peephole`] this pass never folds constants or
/// changes the computation — every fused opcode performs exactly the work
/// of the pair it replaces, in one reduction step. The `fst^k; snd → acc`
/// collapse is included so fusion composes with (and without) the
/// peephole: `push; fst; fst; snd` becomes `push_acc 2` either way.
pub fn fuse(seg: &CodeSeg, code: &[Instr]) -> Vec<Instr> {
    let mut cur: Vec<Instr> = code.iter().map(|i| fuse_nested(seg, i)).collect();
    let sel = FuseSelection::all();
    for _ in 0..4 {
        let (next, changed) = fuse_pass(&cur, &sel);
        cur = next;
        if !changed {
            break;
        }
    }
    cur
}

/// Fuses one straight-line sequence under `sel`, leaving every nested
/// block reference untouched. This is the tier controller's promotion
/// renderer: each block earns its own promotion from its own profile,
/// so nested bodies are deliberately *not* rewritten here — they stay
/// cold until their own counters cross the threshold. The flag reports
/// whether any rule fired (so callers can skip registering an identical
/// rendering).
pub fn fuse_selected(code: &[Instr], sel: &FuseSelection) -> (Vec<Instr>, bool) {
    let mut cur = code.to_vec();
    if sel.is_empty() {
        return (cur, false);
    }
    let mut any = false;
    for _ in 0..4 {
        let (next, changed) = fuse_pass(&cur, sel);
        cur = next;
        if !changed {
            break;
        }
        any = true;
    }
    (cur, any)
}

/// Fuses one block of `seg`, appending the fused rendering as a new block
/// of the same segment and returning its id. Memoized per segment, like
/// [`optimize_block`]: shared blocks are fused once, and re-fusing an
/// already-fused block is the identity.
pub fn fuse_block(seg: &CodeSeg, b: BlockId) -> BlockId {
    if let Some(done) = seg.fuse_memo_get(b) {
        return done;
    }
    let fused = fuse(seg, &seg.block_to_vec(b));
    let nb = seg.add_block(fused);
    seg.fuse_memo_put(b, nb);
    seg.fuse_memo_put(nb, nb);
    nb
}

fn fuse_nested(seg: &CodeSeg, i: &Instr) -> Instr {
    match i {
        Instr::Cur(c) => Instr::Cur(fuse_block(seg, *c)),
        Instr::Branch(a, b) => Instr::Branch(fuse_block(seg, *a), fuse_block(seg, *b)),
        Instr::Switch(t) => Instr::Switch(Rc::new(SwitchTable {
            arms: t
                .arms
                .iter()
                .map(|arm| SwitchArm {
                    tag: arm.tag,
                    bind: arm.bind,
                    code: fuse_block(seg, arm.code),
                })
                .collect(),
            default: t.default.map(|d| fuse_block(seg, d)),
        })),
        Instr::RecClos(bodies) => Instr::RecClos(Rc::new(
            bodies.iter().map(|b| fuse_block(seg, *b)).collect(),
        )),
        // `Emit` carries a single static instruction, never a fusable
        // sequence; fusion of emitted code happens when its arena freezes.
        other => other.clone(),
    }
}

/// One greedy left-to-right fusion pass over a straight-line sequence,
/// applying only the rules `sel` enables.
fn fuse_pass(code: &[Instr], sel: &FuseSelection) -> (Vec<Instr>, bool) {
    let mut out: Vec<Instr> = Vec::with_capacity(code.len());
    let mut changed = false;
    let mut i = 0;
    'outer: while i < code.len() {
        // fst^k; snd / fst^k; acc m — same access collapse as the
        // peephole, repeated here so fusion alone produces `acc`s for the
        // pair rules below to consume.
        if sel.enabled[RULE_ACCESS] && matches!(code[i], Instr::Fst) {
            let mut k = 1;
            while matches!(code.get(i + k), Some(Instr::Fst)) {
                k += 1;
            }
            let fused = match code.get(i + k) {
                Some(Instr::Snd) => Some(k),
                Some(Instr::Acc(m)) => Some(k + m),
                _ => None,
            };
            if let Some(depth) = fused {
                out.push(Instr::Acc(depth));
                changed = true;
                i += k + 1;
                continue 'outer;
            }
        }
        // Adjacent-pair superinstructions.
        let rule = code
            .get(i + 1)
            .and_then(|next| pair_rule(&code[i], next))
            .filter(|r| sel.enabled[*r]);
        let fused = match rule {
            Some(RULE_PUSH_ACC) => Some(match code.get(i + 1) {
                Some(Instr::Acc(n)) => Instr::PushAcc(*n),
                _ => Instr::PushAcc(0),
            }),
            Some(RULE_PUSH_QUOTE) => match code.get(i + 1) {
                Some(Instr::Quote(v)) => Some(Instr::PushQuote(v.clone())),
                _ => None,
            },
            Some(RULE_QUOTE_CONS) => match &code[i] {
                Instr::Quote(v) => Some(Instr::QuoteCons(v.clone())),
                _ => None,
            },
            Some(RULE_SWAP_CONS) => Some(Instr::SwapCons),
            Some(RULE_CONS_APP) => Some(Instr::ConsApp),
            Some(RULE_ACC_APP) => Some(match &code[i] {
                Instr::Acc(n) => Instr::AccApp(*n),
                _ => Instr::AccApp(0),
            }),
            _ => None,
        };
        if let Some(f) = fused {
            out.push(f);
            changed = true;
            i += 2;
            continue 'outer;
        }
        out.push(code[i].clone());
        i += 1;
    }
    (out, changed)
}

/// Whether executing this instruction can have an observable effect
/// (so eliminating it would be wrong).
fn is_pure(i: &Instr) -> bool {
    match i {
        Instr::Id
        | Instr::Fst
        | Instr::Snd
        | Instr::Acc(_)
        | Instr::Push
        | Instr::Swap
        | Instr::ConsPair
        | Instr::Quote(_)
        | Instr::Cur(_)
        | Instr::Pack(_)
        | Instr::PushAcc(_)
        | Instr::QuoteCons(_)
        | Instr::SwapCons
        | Instr::PushQuote(_)
        // Extends the environment spine as a frame slot — an allocation,
        // like `ConsPair`, with no observable effect.
        | Instr::EnvCons => true,
        Instr::Prim(op) => matches!(
            op,
            PrimOp::Add
                | PrimOp::Sub
                | PrimOp::Mul
                | PrimOp::Neg
                | PrimOp::Eq
                | PrimOp::Ne
                | PrimOp::Lt
                | PrimOp::Le
                | PrimOp::Gt
                | PrimOp::Ge
                | PrimOp::Concat
                | PrimOp::BitAnd
                | PrimOp::Not
                | PrimOp::StrSize
                | PrimOp::IntToString
        ),
        // Exhaustive on purpose: a new instruction must be classified
        // here, not silently treated as effectful (or worse, pure).
        // `App`/`Branch`/`Switch`/`RecClos` can run arbitrary code or
        // trap; `Div`/`Mod` and the array ops can trap; the five RTCG
        // instructions and the merge family mutate arenas.
        Instr::App
        | Instr::Emit(_)
        | Instr::LiftV
        | Instr::NewArena
        | Instr::Merge
        | Instr::Call
        | Instr::Branch(_, _)
        | Instr::RecClos(_)
        | Instr::Switch(_)
        | Instr::Fail(_)
        | Instr::MergeBranch
        | Instr::MergeSwitch(_)
        | Instr::MergeRec(_)
        | Instr::ConsApp
        | Instr::AccApp(_) => false,
    }
}

fn all_pure(code: &[Instr]) -> bool {
    code.iter().all(is_pure)
}

/// Finds the extent of the operand `B` in `push; A; swap; B; cons` given
/// the index *after* `swap`: returns the index of the matching `cons`.
/// Returns `None` if the sequence is not balanced within this block.
fn find_matching_cons(code: &[Instr], start: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = start;
    while i < code.len() {
        match &code[i] {
            Instr::Push => depth += 1,
            Instr::ConsPair => {
                if depth == 0 {
                    return Some(i);
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn fold_binop(op: PrimOp, a: &Value, b: &Value) -> Option<Value> {
    let out = match (op, a, b) {
        (PrimOp::Add, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(*y)),
        (PrimOp::Sub, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_sub(*y)),
        (PrimOp::Mul, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_mul(*y)),
        // SML floor semantics, matching the machine's Div/Mod. A zero
        // divisor is left for the runtime trap.
        (PrimOp::Div, Value::Int(x), Value::Int(y)) if *y != 0 => {
            Value::Int(crate::machine::floor_div(*x, *y))
        }
        (PrimOp::Mod, Value::Int(x), Value::Int(y)) if *y != 0 => {
            Value::Int(crate::machine::floor_mod(*x, *y))
        }
        (PrimOp::BitAnd, Value::Int(x), Value::Int(y)) => Value::Int(x & y),
        (PrimOp::Lt, Value::Int(x), Value::Int(y)) => Value::Bool(x < y),
        (PrimOp::Le, Value::Int(x), Value::Int(y)) => Value::Bool(x <= y),
        (PrimOp::Gt, Value::Int(x), Value::Int(y)) => Value::Bool(x > y),
        (PrimOp::Ge, Value::Int(x), Value::Int(y)) => Value::Bool(x >= y),
        (PrimOp::Eq, a, b) => Value::Bool(a.structural_eq(b)?),
        (PrimOp::Ne, a, b) => Value::Bool(!a.structural_eq(b)?),
        _ => return None,
    };
    Some(out)
}

/// `op` with constant *left* operand `k`: is the whole expression the
/// right operand (`Some(false)`), the constant absorbing (`Some(true)`
/// meaning the result is `absorb`), or neither?
fn left_identity(op: PrimOp, k: &Value) -> Identity {
    match (op, k) {
        (PrimOp::Add, Value::Int(0)) => Identity::Pass,
        (PrimOp::Mul, Value::Int(1)) => Identity::Pass,
        (PrimOp::Mul, Value::Int(0)) => Identity::Absorb(Value::Int(0)),
        _ => Identity::No,
    }
}

fn right_identity(op: PrimOp, k: &Value) -> Identity {
    match (op, k) {
        (PrimOp::Add, Value::Int(0)) => Identity::Pass,
        (PrimOp::Sub, Value::Int(0)) => Identity::Pass,
        (PrimOp::Mul, Value::Int(1)) => Identity::Pass,
        (PrimOp::Div, Value::Int(1)) => Identity::Pass,
        (PrimOp::Mul, Value::Int(0)) => Identity::Absorb(Value::Int(0)),
        _ => Identity::No,
    }
}

enum Identity {
    /// The other operand passes through unchanged.
    Pass,
    /// The result is this constant (requires the other operand pure).
    Absorb(Value),
    /// No algebraic shortcut.
    No,
}

fn pass(seg: &CodeSeg, code: &[Instr]) -> (Vec<Instr>, bool) {
    let mut out: Vec<Instr> = Vec::with_capacity(code.len());
    let mut changed = false;
    let mut i = 0;
    'outer: while i < code.len() {
        // Window: push; <A>; swap; <B>; cons; prim op
        if matches!(code[i], Instr::Push) {
            if let Some((a_code, b_code, cons_idx)) = split_pair(code, i) {
                if let Some(Instr::Prim(op)) = code.get(cons_idx + 1) {
                    let op = *op;
                    let a_const = single_quote(a_code);
                    let b_const = single_quote(b_code);
                    // Full constant fold.
                    if let (Some(a), Some(b)) = (a_const, b_const) {
                        if let Some(v) = fold_binop(op, a, b) {
                            out.push(Instr::Quote(v));
                            changed = true;
                            i = cons_idx + 2;
                            continue 'outer;
                        }
                    }
                    // Left identity: ⟨quote k, B⟩; op
                    if let Some(k) = a_const {
                        match left_identity(op, k) {
                            Identity::Pass => {
                                out.extend(b_code.iter().cloned());
                                changed = true;
                                i = cons_idx + 2;
                                continue 'outer;
                            }
                            Identity::Absorb(v) if all_pure(b_code) => {
                                out.push(Instr::Quote(v));
                                changed = true;
                                i = cons_idx + 2;
                                continue 'outer;
                            }
                            _ => {}
                        }
                    }
                    // Right identity: ⟨A, quote k⟩; op
                    if let Some(k) = b_const {
                        match right_identity(op, k) {
                            Identity::Pass => {
                                out.extend(a_code.iter().cloned());
                                changed = true;
                                i = cons_idx + 2;
                                continue 'outer;
                            }
                            Identity::Absorb(v) if all_pure(a_code) => {
                                out.push(Instr::Quote(v));
                                changed = true;
                                i = cons_idx + 2;
                                continue 'outer;
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        // quote v; prim neg/not — unary folding.
        if let Instr::Quote(v) = &code[i] {
            if let Some(Instr::Prim(op)) = code.get(i + 1) {
                let folded = match (op, v) {
                    (PrimOp::Neg, Value::Int(n)) => Some(Value::Int(n.wrapping_neg())),
                    (PrimOp::Not, Value::Bool(b)) => Some(Value::Bool(!b)),
                    _ => None,
                };
                if let Some(v) = folded {
                    out.push(Instr::Quote(v));
                    changed = true;
                    i += 2;
                    continue 'outer;
                }
            }
        }
        // push; quote b; cons; branch — fold a constant conditional: the
        // environment copy is consumed by the branch anyway. The chosen
        // arm's instructions are inlined from its block (same segment, so
        // any block references they carry stay valid).
        if matches!(code[i], Instr::Push) {
            if let (Some(Instr::Quote(Value::Bool(b))), Some(Instr::ConsPair)) =
                (code.get(i + 1), code.get(i + 2))
            {
                if let Some(Instr::Branch(t, e)) = code.get(i + 3) {
                    let chosen = if *b { *t } else { *e };
                    out.extend(seg.block_to_vec(chosen));
                    changed = true;
                    i += 4;
                    continue 'outer;
                }
            }
        }
        // fst^k; snd (k >= 1) — access fusion: an environment spine walk
        // collapses into one `acc` dispatch. `fst^k; acc m` likewise
        // deepens an already-fused access.
        if matches!(code[i], Instr::Fst) {
            let mut k = 1;
            while matches!(code.get(i + k), Some(Instr::Fst)) {
                k += 1;
            }
            let fused = match code.get(i + k) {
                Some(Instr::Snd) => Some(k),
                Some(Instr::Acc(m)) => Some(k + m),
                _ => None,
            };
            if let Some(depth) = fused {
                out.push(Instr::Acc(depth));
                changed = true;
                i += k + 1;
                continue 'outer;
            }
        }
        // Dead id.
        if matches!(code[i], Instr::Id) && code.len() > 1 {
            changed = true;
            i += 1;
            continue 'outer;
        }
        out.push(code[i].clone());
        i += 1;
    }
    (out, changed)
}

/// For `code[push_idx] = push`, recovers the `A` and `B` operand slices of
/// a `push; A; swap; B; cons` pairing, returning `(A, B, cons_index)`.
fn split_pair(code: &[Instr], push_idx: usize) -> Option<(&[Instr], &[Instr], usize)> {
    // Find the swap at depth 0 after push, then the cons matching it.
    let mut depth = 0usize;
    let mut j = push_idx + 1;
    let swap_idx = loop {
        match code.get(j)? {
            Instr::Push => depth += 1,
            Instr::ConsPair => {
                if depth == 0 {
                    return None; // malformed for our purposes
                }
                depth -= 1;
            }
            Instr::Swap if depth == 0 => break j,
            _ => {}
        }
        j += 1;
    };
    let cons_idx = find_matching_cons(code, swap_idx + 1)?;
    Some((
        &code[push_idx + 1..swap_idx],
        &code[swap_idx + 1..cons_idx],
        cons_idx,
    ))
}

fn single_quote(code: &[Instr]) -> Option<&Value> {
    match code {
        [Instr::Quote(v)] => Some(v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn pair(a: Vec<Instr>, b: Vec<Instr>) -> Vec<Instr> {
        let mut out = vec![Instr::Push];
        out.extend(a);
        out.push(Instr::Swap);
        out.extend(b);
        out.push(Instr::ConsPair);
        out
    }

    #[test]
    fn constant_addition_folds() {
        let seg = CodeSeg::new();
        let mut code = pair(
            vec![Instr::Quote(Value::Int(2))],
            vec![Instr::Quote(Value::Int(3))],
        );
        code.push(Instr::Prim(PrimOp::Add));
        let opt = peephole(&seg, &code);
        assert_eq!(opt.len(), 1);
        assert!(matches!(&opt[0], Instr::Quote(Value::Int(5))));
    }

    #[test]
    fn add_zero_left_eliminates() {
        // 0 + snd  →  snd
        let seg = CodeSeg::new();
        let mut code = pair(vec![Instr::Quote(Value::Int(0))], vec![Instr::Snd]);
        code.push(Instr::Prim(PrimOp::Add));
        let opt = peephole(&seg, &code);
        assert!(matches!(&opt[..], [Instr::Snd]), "{opt:?}");
    }

    #[test]
    fn mul_one_right_eliminates() {
        let seg = CodeSeg::new();
        let mut code = pair(vec![Instr::Snd], vec![Instr::Quote(Value::Int(1))]);
        code.push(Instr::Prim(PrimOp::Mul));
        let opt = peephole(&seg, &code);
        assert!(matches!(&opt[..], [Instr::Snd]), "{opt:?}");
    }

    #[test]
    fn mul_zero_absorbs_pure_operand_only() {
        // snd * 0 → quote 0 (snd is pure).
        let seg = CodeSeg::new();
        let mut code = pair(vec![Instr::Snd], vec![Instr::Quote(Value::Int(0))]);
        code.push(Instr::Prim(PrimOp::Mul));
        let opt = peephole(&seg, &code);
        assert!(matches!(&opt[..], [Instr::Quote(Value::Int(0))]));
        // print "x" * 0 must NOT be eliminated (effect!).
        let mut code = pair(
            vec![Instr::Quote(Value::str("x")), Instr::Prim(PrimOp::Print)],
            vec![Instr::Quote(Value::Int(0))],
        );
        code.push(Instr::Prim(PrimOp::Mul));
        let opt = peephole(&seg, &code);
        assert!(opt.len() > 1, "effectful operand preserved: {opt:?}");
    }

    #[test]
    fn nested_operands_are_balanced() {
        // (1 + 2) + snd — inner pair folds, outer keeps snd.
        let seg = CodeSeg::new();
        let inner = {
            let mut c = pair(
                vec![Instr::Quote(Value::Int(1))],
                vec![Instr::Quote(Value::Int(2))],
            );
            c.push(Instr::Prim(PrimOp::Add));
            c
        };
        let mut code = pair(inner, vec![Instr::Snd]);
        code.push(Instr::Prim(PrimOp::Add));
        let opt = peephole(&seg, &code);
        // After folding: ⟨quote 3, snd⟩; add.
        assert!(opt.iter().any(|i| matches!(i, Instr::Quote(Value::Int(3)))));
        assert!(opt.len() < code.len());
    }

    #[test]
    fn constant_branch_folds() {
        let seg = CodeSeg::new();
        let t = seg.add_block(vec![Instr::Quote(Value::Int(1))]);
        let e = seg.add_block(vec![Instr::Quote(Value::Int(2))]);
        let code = vec![
            Instr::Push,
            Instr::Quote(Value::Bool(true)),
            Instr::ConsPair,
            Instr::Branch(t, e),
        ];
        let opt = peephole(&seg, &code);
        assert!(matches!(&opt[..], [Instr::Quote(Value::Int(1))]));
    }

    #[test]
    fn same_length_rewrite_still_reaches_fixpoint() {
        // Folding this constant branch replaces 4 instructions
        // (push; quote; cons; branch) with a 4-instruction arm, so the
        // length does not shrink on that pass; the arm must still be
        // folded by the next pass rather than the rewrite being discarded.
        let seg = CodeSeg::new();
        let arm = seg.add_block(vec![
            Instr::Quote(Value::Int(1)),
            Instr::Prim(PrimOp::Neg),
            Instr::Quote(Value::Int(2)),
            Instr::Prim(PrimOp::Neg),
        ]);
        let other = seg.add_block(vec![Instr::Fail("else".into())]);
        let code = vec![
            Instr::Push,
            Instr::Quote(Value::Bool(true)),
            Instr::ConsPair,
            Instr::Branch(arm, other),
        ];
        let opt = peephole(&seg, &code);
        assert!(
            !opt.iter().any(|i| matches!(i, Instr::Branch(_, _))),
            "branch folded: {opt:?}"
        );
        assert!(
            matches!(
                &opt[..],
                [Instr::Quote(Value::Int(-1)), Instr::Quote(Value::Int(-2))]
            ),
            "arm folded on the following pass: {opt:?}"
        );
    }

    #[test]
    fn div_and_mod_constants_fold_with_floor_semantics() {
        let seg = CodeSeg::new();
        for (op, want) in [(PrimOp::Div, -4), (PrimOp::Mod, 1)] {
            let mut code = pair(
                vec![Instr::Quote(Value::Int(-7))],
                vec![Instr::Quote(Value::Int(2))],
            );
            code.push(Instr::Prim(op));
            let opt = peephole(&seg, &code);
            assert!(
                matches!(&opt[..], [Instr::Quote(Value::Int(n))] if *n == want),
                "{op:?}: {opt:?}"
            );
        }
        // A zero divisor is left for the runtime trap.
        let mut code = pair(
            vec![Instr::Quote(Value::Int(1))],
            vec![Instr::Quote(Value::Int(0))],
        );
        code.push(Instr::Prim(PrimOp::Div));
        assert_eq!(peephole(&seg, &code).len(), code.len(), "not folded");
    }

    #[test]
    fn div_by_one_eliminates() {
        let seg = CodeSeg::new();
        let mut code = pair(vec![Instr::Snd], vec![Instr::Quote(Value::Int(1))]);
        code.push(Instr::Prim(PrimOp::Div));
        let opt = peephole(&seg, &code);
        assert!(matches!(&opt[..], [Instr::Snd]), "{opt:?}");
    }

    #[test]
    fn optimized_code_computes_the_same_value() {
        // ((4 * 1) + (0 + snd)) applied to (_, 8).
        let seg = CodeSeg::new();
        let mul = {
            let mut c = pair(
                vec![Instr::Quote(Value::Int(4))],
                vec![Instr::Quote(Value::Int(1))],
            );
            c.push(Instr::Prim(PrimOp::Mul));
            c
        };
        let add0 = {
            let mut c = pair(vec![Instr::Quote(Value::Int(0))], vec![Instr::Snd]);
            c.push(Instr::Prim(PrimOp::Add));
            c
        };
        let mut code = pair(mul, add0);
        code.push(Instr::Prim(PrimOp::Add));
        let opt = peephole(&seg, &code);
        assert!(opt.len() < code.len());
        let input = Value::pair(Value::Unit, Value::Int(8));
        let a = Machine::new().run(seg.entry(code), input.clone()).unwrap();
        let b = Machine::new().run(seg.entry(opt), input).unwrap();
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.to_string(), "12");
    }

    #[test]
    fn fst_chains_fuse_into_acc() {
        let seg = CodeSeg::new();
        let code = vec![Instr::Fst, Instr::Fst, Instr::Fst, Instr::Snd];
        let opt = peephole(&seg, &code);
        assert!(matches!(&opt[..], [Instr::Acc(3)]), "{opt:?}");
        // A bare snd (zero fsts) is left alone — same cost either way.
        let code = vec![Instr::Snd];
        assert!(matches!(&peephole(&seg, &code)[..], [Instr::Snd]));
        // Fsts not followed by snd are not an access path.
        let code = vec![Instr::Fst, Instr::Fst];
        assert_eq!(peephole(&seg, &code).len(), 2);
    }

    #[test]
    fn fst_before_acc_deepens_the_access() {
        let seg = CodeSeg::new();
        let code = vec![Instr::Fst, Instr::Acc(2)];
        let opt = peephole(&seg, &code);
        assert!(matches!(&opt[..], [Instr::Acc(3)]), "{opt:?}");
    }

    #[test]
    fn fused_access_computes_the_same_value() {
        let seg = CodeSeg::new();
        let spine = Value::pair(
            Value::pair(Value::pair(Value::Unit, Value::Int(5)), Value::Int(6)),
            Value::Int(7),
        );
        let code = vec![Instr::Fst, Instr::Fst, Instr::Snd];
        let opt = peephole(&seg, &code);
        let a = Machine::new().run(seg.entry(code), spine.clone()).unwrap();
        let b = Machine::new().run(seg.entry(opt), spine).unwrap();
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.to_string(), "5");
    }

    #[test]
    fn recurses_into_cur_bodies() {
        let seg = CodeSeg::new();
        let body = {
            let mut c = pair(
                vec![Instr::Quote(Value::Int(1))],
                vec![Instr::Quote(Value::Int(2))],
            );
            c.push(Instr::Prim(PrimOp::Add));
            c
        };
        let code = vec![Instr::Cur(seg.add_block(body))];
        let opt = peephole(&seg, &code);
        let Instr::Cur(b) = &opt[0] else { panic!() };
        assert_eq!(seg.block_bounds(*b).1, 1);
    }

    #[test]
    fn shared_blocks_are_optimized_once() {
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![Instr::Quote(Value::Int(1)), Instr::Prim(PrimOp::Neg)]);
        let code = vec![Instr::Cur(body), Instr::Cur(body)];
        let opt = peephole(&seg, &code);
        let (Instr::Cur(a), Instr::Cur(b)) = (&opt[0], &opt[1]) else {
            panic!("{opt:?}")
        };
        assert_eq!(a, b, "memoized: both references rewrite to one block");
        // And re-optimizing the result is the identity.
        assert_eq!(optimize_block(&seg, *a), *a);
    }

    #[test]
    fn fusion_rewrites_the_stereotyped_pairs() {
        let seg = CodeSeg::new();
        // ⟨acc 1, quote 3⟩; app — the CAM's function-application shape.
        let code = vec![
            Instr::Push,
            Instr::Acc(1),
            Instr::Swap,
            Instr::Quote(Value::Int(3)),
            Instr::ConsPair,
            Instr::App,
        ];
        let fused = fuse(&seg, &code);
        assert!(
            matches!(
                &fused[..],
                [
                    Instr::PushAcc(1),
                    Instr::Swap,
                    Instr::QuoteCons(Value::Int(3)),
                    Instr::App
                ]
            ),
            "{fused:?}"
        );
    }

    #[test]
    fn fusion_composes_with_access_collapse() {
        let seg = CodeSeg::new();
        // push; fst; fst; snd — fusion alone collapses the access chain
        // and then consumes the resulting acc.
        let code = vec![Instr::Push, Instr::Fst, Instr::Fst, Instr::Snd];
        let fused = fuse(&seg, &code);
        assert!(matches!(&fused[..], [Instr::PushAcc(2)]), "{fused:?}");
        // snd; app and cons; app become single transfers.
        let code = vec![Instr::Snd, Instr::App];
        assert!(matches!(&fuse(&seg, &code)[..], [Instr::AccApp(0)]));
        let code = vec![Instr::Swap, Instr::ConsPair, Instr::App];
        let fused = fuse(&seg, &code);
        assert!(
            matches!(&fused[..], [Instr::SwapCons, Instr::App]),
            "greedy left-to-right: swap;cons wins over cons;app: {fused:?}"
        );
    }

    #[test]
    fn fusion_never_folds_constants() {
        // ⟨quote 2, quote 3⟩; add — the peephole folds this to quote 5;
        // fusion must keep the arithmetic (it only merges dispatches).
        let seg = CodeSeg::new();
        let mut code = pair(
            vec![Instr::Quote(Value::Int(2))],
            vec![Instr::Quote(Value::Int(3))],
        );
        code.push(Instr::Prim(PrimOp::Add));
        let fused = fuse(&seg, &code);
        assert!(
            fused.iter().any(|i| matches!(i, Instr::Prim(PrimOp::Add))),
            "{fused:?}"
        );
        assert!(!fused
            .iter()
            .any(|i| matches!(i, Instr::Quote(Value::Int(5)))));
    }

    #[test]
    fn fused_code_computes_the_same_value() {
        // ((4 * 1) + (0 + snd)) applied to (_, 8) — same program as the
        // peephole agreement test, now fused instead of optimized.
        let seg = CodeSeg::new();
        let mul = {
            let mut c = pair(
                vec![Instr::Quote(Value::Int(4))],
                vec![Instr::Quote(Value::Int(1))],
            );
            c.push(Instr::Prim(PrimOp::Mul));
            c
        };
        let add0 = {
            let mut c = pair(vec![Instr::Quote(Value::Int(0))], vec![Instr::Snd]);
            c.push(Instr::Prim(PrimOp::Add));
            c
        };
        let mut code = pair(mul, add0);
        code.push(Instr::Prim(PrimOp::Add));
        let fused = fuse(&seg, &code);
        assert!(fused.len() < code.len(), "{fused:?}");
        let input = Value::pair(Value::Unit, Value::Int(8));
        let a = Machine::new().run(seg.entry(code), input.clone()).unwrap();
        let b = Machine::new().run(seg.entry(fused), input).unwrap();
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.to_string(), "12");
    }

    #[test]
    fn fusion_recurses_into_shared_blocks_once() {
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![Instr::Push, Instr::Snd]);
        let code = vec![Instr::Cur(body), Instr::Cur(body)];
        let fused = fuse(&seg, &code);
        let (Instr::Cur(a), Instr::Cur(b)) = (&fused[0], &fused[1]) else {
            panic!("{fused:?}")
        };
        assert_eq!(a, b, "memoized: both references rewrite to one block");
        assert!(matches!(&seg.block_to_vec(*a)[..], [Instr::PushAcc(0)]));
        // And re-fusing the result is the identity.
        assert_eq!(fuse_block(&seg, *a), *a);
    }

    #[test]
    fn rule_selection_ranks_by_local_frequency() {
        // Two swap;cons pairs but only one acc;app — top-1 fuses only the
        // more frequent pattern.
        let code = vec![
            Instr::Swap,
            Instr::ConsPair,
            Instr::Swap,
            Instr::ConsPair,
            Instr::Acc(1),
            Instr::App,
        ];
        let sel = select_rules(&code, 1);
        assert_eq!(sel.len(), 1);
        let (fused, changed) = fuse_selected(&code, &sel);
        assert!(changed);
        assert!(
            matches!(
                &fused[..],
                [Instr::SwapCons, Instr::SwapCons, Instr::Acc(1), Instr::App]
            ),
            "{fused:?}"
        );
        // A large enough k enables every rule that occurs — and only those.
        let all = select_rules(&code, FUSE_RULE_COUNT);
        assert_eq!(all.len(), 2, "absent patterns stay disabled");
        let (fused, _) = fuse_selected(&code, &all);
        assert!(
            matches!(
                &fused[..],
                [Instr::SwapCons, Instr::SwapCons, Instr::AccApp(1)]
            ),
            "{fused:?}"
        );
        // k = 0 (or an empty profile) fuses nothing.
        assert!(select_rules(&code, 0).is_empty());
        let (same, changed) = fuse_selected(&code, &FuseSelection::none());
        assert!(!changed);
        assert_eq!(same.len(), code.len());
    }

    #[test]
    fn selection_counts_accesses_before_pairs() {
        // push; fst; snd — statically there is no (push, acc) pair, but
        // after the access collapse there is; the selector must see it.
        let code = vec![Instr::Push, Instr::Fst, Instr::Snd];
        let sel = select_rules(&code, FUSE_RULE_COUNT);
        assert_eq!(sel.len(), 2, "access + push_acc: {sel:?}");
        let (fused, _) = fuse_selected(&code, &sel);
        assert!(matches!(&fused[..], [Instr::PushAcc(1)]), "{fused:?}");
    }

    #[test]
    fn selected_fusion_leaves_nested_blocks_alone() {
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![Instr::Push, Instr::Snd]);
        let code = vec![Instr::Cur(body), Instr::Push, Instr::Snd];
        let blocks_before = seg.num_blocks();
        let (fused, _) = fuse_selected(&code, &FuseSelection::all());
        assert_eq!(
            seg.num_blocks(),
            blocks_before,
            "promotion fuses one block at a time; nested bodies stay cold"
        );
        assert!(
            matches!(&fused[..], [Instr::Cur(b), Instr::PushAcc(0)] if *b == body),
            "{fused:?}"
        );
    }
}
