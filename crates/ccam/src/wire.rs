//! Byte-level encoding of portable code and values.
//!
//! [`crate::portable`] makes a frozen artifact *thread*-shareable; this
//! module makes it *process*-shareable: a hand-rolled, deterministic,
//! versionable byte rendering of a [`PortableValue`] — the portable
//! segment (block table plus instruction stream) followed by the value
//! graph — so specialized code can be written to disk, shipped across
//! processes, and rebuilt without re-running the generator.
//!
//! This is the raw *payload* codec: no header, no checksum, no
//! fingerprints. The framed artifact container (magic, format version,
//! fingerprints, section lengths, trailing checksum) lives one layer up
//! in `mlbox::wire`, which wraps these bytes; keeping the payload codec
//! here keeps the instruction/value encodings next to the types they
//! mirror, so adding an instruction without a wire rendering fails to
//! compile.
//!
//! Properties the codec guarantees:
//!
//! - **Determinism**: encoding is a pre-order walk of the value graph
//!   and block table; no hash-map iteration order leaks into the bytes.
//!   `encode(decode(bytes)) == bytes` for every accepted input.
//! - **Sharing preservation**: shared nodes (pairs, frames, closures,
//!   recursive groups) are encoded once and back-referenced by index,
//!   so hydration after a decode restores exactly the sharing the
//!   extraction saw — `instr_count` and step counts survive the disk.
//! - **Totality of decode**: every read is bounds-checked, untrusted
//!   counts never pre-allocate, block references are validated against
//!   the block table, and nesting depth is capped
//!   ([`MAX_DECODE_DEPTH`]) so a malicious input errors instead of
//!   exhausting the stack. Decode never panics.

use crate::instr::{MergeSwitchSpec, PrimOp};
use crate::portable::{
    PortableClosure, PortableFrame, PortableInstr, PortableRecGroup, PortableSegData,
    PortableSwitchArm, PortableSwitchTable, PortableVal, PortableValue,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Decode-side cap on value/instruction nesting. Adversarial inputs can
/// nest one level per byte; without a cap a few kilobytes of `pair` tags
/// would exhaust the Rust stack inside a decode that should just fail —
/// on *any* stack, including a 2 MiB test thread running an unoptimized
/// build, which is why the cap is conservative. Genuine artifacts nest
/// far shallower: code nests by block *reference* (not recursion),
/// flat-mode environments are single frames, and back-references keep
/// shared spines from re-encoding at depth.
pub const MAX_DECODE_DEPTH: usize = 512;

/// Why a byte buffer is not a valid wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a read completed.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// A structurally invalid encoding (bad tag, dangling block or
    /// back-reference, malformed UTF-8, …).
    Corrupt(&'static str),
    /// Value/instruction nesting exceeded [`MAX_DECODE_DEPTH`].
    TooDeep,
    /// Decode finished with input left over.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => write!(
                f,
                "truncated wire payload: read of {needed} byte(s) with {remaining} remaining"
            ),
            WireError::Corrupt(what) => write!(f, "corrupt wire payload: {what}"),
            WireError::TooDeep => write!(
                f,
                "wire payload nests deeper than {MAX_DECODE_DEPTH} levels"
            ),
            WireError::TrailingBytes(n) => {
                write!(f, "wire payload has {n} trailing byte(s) after the value")
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Primitive writers/readers. All integers are little-endian and
// fixed-width; strings are u32-length-prefixed UTF-8.
// ---------------------------------------------------------------------

/// An append-only byte sink for the encoder.
#[derive(Default)]
struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, b: u8) {
        self.bytes.push(b);
    }

    fn u32(&mut self, n: u32) {
        self.bytes.extend_from_slice(&n.to_le_bytes());
    }

    fn i64(&mut self, n: i64) {
        self.bytes.extend_from_slice(&n.to_le_bytes());
    }

    fn usize_u32(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("wire payload exceeds u32 count"));
    }

    fn str(&mut self, s: &str) {
        self.usize_u32(s.len());
        self.bytes.extend_from_slice(s.as_bytes());
    }
}

/// A bounds-checked cursor over the input for the decoder.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Corrupt("boolean byte is neither 0 nor 1")),
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::Corrupt("string is not UTF-8"))
    }
}

// ---------------------------------------------------------------------
// Value tags. Shared nodes (pair, frame, closure, rec group) are encoded
// inline on first encounter and as TAG_BACKREF afterwards; back-reference
// indices count shared nodes in order of first emission, which the
// decoder reproduces exactly.
// ---------------------------------------------------------------------

const TAG_UNIT: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_PAIR: u8 = 4;
const TAG_FRAME: u8 = 5;
const TAG_CLOSURE: u8 = 6;
const TAG_RECCLOSURE: u8 = 7;
const TAG_CON: u8 = 8;
const TAG_BACKREF: u8 = 9;

/// Inside `TAG_RECCLOSURE`: the group follows inline (first encounter).
const GROUP_INLINE: u8 = 0;
/// Inside `TAG_RECCLOSURE`: the group is a back-reference.
const GROUP_BACKREF: u8 = 1;

/// A decoded shared node, held in the back-reference table.
#[derive(Clone)]
enum Shared {
    Pair(Arc<(PortableVal, PortableVal)>),
    Frame(Arc<PortableFrame>),
    Closure(Arc<PortableClosure>),
    Group(Arc<PortableRecGroup>),
}

// ---------------------------------------------------------------------
// PrimOp <-> byte. An explicit exhaustive table in both directions, so a
// new primitive without a wire number fails to compile.
// ---------------------------------------------------------------------

fn prim_to_byte(op: PrimOp) -> u8 {
    match op {
        PrimOp::Add => 0,
        PrimOp::Sub => 1,
        PrimOp::Mul => 2,
        PrimOp::Div => 3,
        PrimOp::Mod => 4,
        PrimOp::Neg => 5,
        PrimOp::Eq => 6,
        PrimOp::Ne => 7,
        PrimOp::Lt => 8,
        PrimOp::Le => 9,
        PrimOp::Gt => 10,
        PrimOp::Ge => 11,
        PrimOp::Concat => 12,
        PrimOp::BitAnd => 13,
        PrimOp::Not => 14,
        PrimOp::StrSize => 15,
        PrimOp::IntToString => 16,
        PrimOp::Print => 17,
        PrimOp::Ref => 18,
        PrimOp::Deref => 19,
        PrimOp::Assign => 20,
        PrimOp::MkArray => 21,
        PrimOp::ArrSub => 22,
        PrimOp::ArrUpdate => 23,
        PrimOp::ArrLen => 24,
    }
}

fn prim_from_byte(b: u8) -> Result<PrimOp, WireError> {
    Ok(match b {
        0 => PrimOp::Add,
        1 => PrimOp::Sub,
        2 => PrimOp::Mul,
        3 => PrimOp::Div,
        4 => PrimOp::Mod,
        5 => PrimOp::Neg,
        6 => PrimOp::Eq,
        7 => PrimOp::Ne,
        8 => PrimOp::Lt,
        9 => PrimOp::Le,
        10 => PrimOp::Gt,
        11 => PrimOp::Ge,
        12 => PrimOp::Concat,
        13 => PrimOp::BitAnd,
        14 => PrimOp::Not,
        15 => PrimOp::StrSize,
        16 => PrimOp::IntToString,
        17 => PrimOp::Print,
        18 => PrimOp::Ref,
        19 => PrimOp::Deref,
        20 => PrimOp::Assign,
        21 => PrimOp::MkArray,
        22 => PrimOp::ArrSub,
        23 => PrimOp::ArrUpdate,
        24 => PrimOp::ArrLen,
        _ => return Err(WireError::Corrupt("unknown primitive opcode")),
    })
}

// ---------------------------------------------------------------------
// Instruction opcodes on the wire reuse `Instr::opcode` numbering (the
// dense index used by the per-opcode statistics tables and the
// disassembler), so the hex dump of an artifact reads against the same
// numbering every other tool prints.
// ---------------------------------------------------------------------

const OP_ID: u8 = 0;
const OP_FST: u8 = 1;
const OP_SND: u8 = 2;
const OP_PUSH: u8 = 3;
const OP_SWAP: u8 = 4;
const OP_CONSPAIR: u8 = 5;
const OP_APP: u8 = 6;
const OP_QUOTE: u8 = 7;
const OP_CUR: u8 = 8;
const OP_EMIT: u8 = 9;
const OP_LIFTV: u8 = 10;
const OP_NEWARENA: u8 = 11;
const OP_MERGE: u8 = 12;
const OP_CALL: u8 = 13;
const OP_BRANCH: u8 = 14;
const OP_RECCLOS: u8 = 15;
const OP_PACK: u8 = 16;
const OP_SWITCH: u8 = 17;
const OP_PRIM: u8 = 18;
const OP_FAIL: u8 = 19;
const OP_MERGEBRANCH: u8 = 20;
const OP_MERGESWITCH: u8 = 21;
const OP_MERGEREC: u8 = 22;
const OP_ACC: u8 = 23;
const OP_PUSHACC: u8 = 24;
const OP_QUOTECONS: u8 = 25;
const OP_SWAPCONS: u8 = 26;
const OP_CONSAPP: u8 = 27;
const OP_ACCAPP: u8 = 28;
const OP_PUSHQUOTE: u8 = 29;
const OP_ENVCONS: u8 = 30;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

#[derive(Default)]
struct Encode {
    out: Writer,
    /// Address of a shared node's allocation → its back-reference index.
    /// Addresses are stable for the duration: the value under encoding
    /// keeps every node alive.
    shared: HashMap<usize, u32>,
}

impl Encode {
    /// Registers a shared node the moment its inline encoding *starts*
    /// (pre-order), mirroring the decoder's reserve-then-fill. Returns
    /// `Some(index)` if the node was already emitted.
    fn share(&mut self, addr: usize) -> Option<u32> {
        if let Some(&idx) = self.shared.get(&addr) {
            return Some(idx);
        }
        let idx = u32::try_from(self.shared.len()).expect("wire payload exceeds u32 shared nodes");
        self.shared.insert(addr, idx);
        None
    }

    fn value(&mut self, v: &PortableVal) {
        match v {
            PortableVal::Unit => self.out.u8(TAG_UNIT),
            PortableVal::Int(n) => {
                self.out.u8(TAG_INT);
                self.out.i64(*n);
            }
            PortableVal::Bool(b) => {
                self.out.u8(TAG_BOOL);
                self.out.u8(u8::from(*b));
            }
            PortableVal::Str(s) => {
                self.out.u8(TAG_STR);
                self.out.str(s);
            }
            PortableVal::Pair(p) => {
                if let Some(idx) = self.share(Arc::as_ptr(p) as usize) {
                    self.out.u8(TAG_BACKREF);
                    self.out.u32(idx);
                    return;
                }
                self.out.u8(TAG_PAIR);
                self.value(&p.0);
                self.value(&p.1);
            }
            PortableVal::Frame(fr) => {
                if let Some(idx) = self.share(Arc::as_ptr(fr) as usize) {
                    self.out.u8(TAG_BACKREF);
                    self.out.u32(idx);
                    return;
                }
                self.out.u8(TAG_FRAME);
                self.value(&fr.link);
                self.out.usize_u32(fr.slots.len());
                for s in &fr.slots {
                    self.value(s);
                }
            }
            PortableVal::Closure(c) => {
                if let Some(idx) = self.share(Arc::as_ptr(c) as usize) {
                    self.out.u8(TAG_BACKREF);
                    self.out.u32(idx);
                    return;
                }
                self.out.u8(TAG_CLOSURE);
                self.value(&c.env);
                self.out.u32(c.body);
            }
            PortableVal::RecClosure { group, index } => {
                self.out.u8(TAG_RECCLOSURE);
                if let Some(idx) = self.share(Arc::as_ptr(group) as usize) {
                    self.out.u8(GROUP_BACKREF);
                    self.out.u32(idx);
                } else {
                    self.out.u8(GROUP_INLINE);
                    self.value(&group.env);
                    self.out.usize_u32(group.bodies.len());
                    for b in group.bodies.iter() {
                        self.out.u32(*b);
                    }
                }
                self.out.usize_u32(*index);
            }
            PortableVal::Con(tag, payload) => {
                self.out.u8(TAG_CON);
                self.out.u32(*tag);
                match payload {
                    Some(p) => {
                        self.out.u8(1);
                        self.value(p);
                    }
                    None => self.out.u8(0),
                }
            }
        }
    }

    fn instr(&mut self, i: &PortableInstr) {
        match i {
            PortableInstr::Id => self.out.u8(OP_ID),
            PortableInstr::Fst => self.out.u8(OP_FST),
            PortableInstr::Snd => self.out.u8(OP_SND),
            PortableInstr::Push => self.out.u8(OP_PUSH),
            PortableInstr::Swap => self.out.u8(OP_SWAP),
            PortableInstr::ConsPair => self.out.u8(OP_CONSPAIR),
            PortableInstr::App => self.out.u8(OP_APP),
            PortableInstr::Quote(v) => {
                self.out.u8(OP_QUOTE);
                self.value(v);
            }
            PortableInstr::Cur(b) => {
                self.out.u8(OP_CUR);
                self.out.u32(*b);
            }
            PortableInstr::Emit(inner) => {
                self.out.u8(OP_EMIT);
                self.instr(inner);
            }
            PortableInstr::LiftV => self.out.u8(OP_LIFTV),
            PortableInstr::NewArena => self.out.u8(OP_NEWARENA),
            PortableInstr::Merge => self.out.u8(OP_MERGE),
            PortableInstr::Call => self.out.u8(OP_CALL),
            PortableInstr::Branch(t, e) => {
                self.out.u8(OP_BRANCH);
                self.out.u32(*t);
                self.out.u32(*e);
            }
            PortableInstr::RecClos(bodies) => {
                self.out.u8(OP_RECCLOS);
                self.out.usize_u32(bodies.len());
                for b in bodies.iter() {
                    self.out.u32(*b);
                }
            }
            PortableInstr::Pack(tag) => {
                self.out.u8(OP_PACK);
                self.out.u32(*tag);
            }
            PortableInstr::Switch(table) => {
                self.out.u8(OP_SWITCH);
                self.out.usize_u32(table.arms.len());
                for arm in &table.arms {
                    self.out.u32(arm.tag);
                    self.out.u8(u8::from(arm.bind));
                    self.out.u32(arm.code);
                }
                match table.default {
                    Some(d) => {
                        self.out.u8(1);
                        self.out.u32(d);
                    }
                    None => self.out.u8(0),
                }
            }
            PortableInstr::Prim(op) => {
                self.out.u8(OP_PRIM);
                self.out.u8(prim_to_byte(*op));
            }
            PortableInstr::Fail(msg) => {
                self.out.u8(OP_FAIL);
                self.out.str(msg);
            }
            PortableInstr::MergeBranch => self.out.u8(OP_MERGEBRANCH),
            PortableInstr::MergeSwitch(spec) => {
                self.out.u8(OP_MERGESWITCH);
                self.out.usize_u32(spec.arms.len());
                for (tag, bind) in &spec.arms {
                    self.out.u32(*tag);
                    self.out.u8(u8::from(*bind));
                }
                self.out.u8(u8::from(spec.default));
            }
            PortableInstr::MergeRec(n) => {
                self.out.u8(OP_MERGEREC);
                self.out.usize_u32(*n);
            }
            PortableInstr::Acc(n) => {
                self.out.u8(OP_ACC);
                self.out.usize_u32(*n);
            }
            PortableInstr::PushAcc(n) => {
                self.out.u8(OP_PUSHACC);
                self.out.usize_u32(*n);
            }
            PortableInstr::QuoteCons(v) => {
                self.out.u8(OP_QUOTECONS);
                self.value(v);
            }
            PortableInstr::SwapCons => self.out.u8(OP_SWAPCONS),
            PortableInstr::ConsApp => self.out.u8(OP_CONSAPP),
            PortableInstr::AccApp(n) => {
                self.out.u8(OP_ACCAPP);
                self.out.usize_u32(*n);
            }
            PortableInstr::PushQuote(v) => {
                self.out.u8(OP_PUSHQUOTE);
                self.value(v);
            }
            PortableInstr::EnvCons => self.out.u8(OP_ENVCONS),
        }
    }

    fn seg(&mut self, seg: &PortableSegData) {
        self.out.usize_u32(seg.blocks.len());
        for b in 0..seg.blocks.len() {
            let instrs = seg.block(b as u32);
            self.out.usize_u32(instrs.len());
            for i in instrs {
                self.instr(i);
            }
        }
    }
}

/// Encodes a portable value — its segment, then its value graph — as a
/// deterministic, self-delimiting byte payload.
pub fn encode_value(v: &PortableValue) -> Vec<u8> {
    let mut e = Encode::default();
    e.seg(&v.seg);
    e.value(&v.root);
    e.out.bytes
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Decode<'a> {
    input: Reader<'a>,
    /// Shared nodes in first-emission order. `None` marks a node whose
    /// inline encoding is still being decoded (its index is reserved, but
    /// a back-reference to it would be a cycle — impossible for the DAGs
    /// extraction produces, so it is rejected as corrupt).
    shared: Vec<Option<Shared>>,
    /// Number of blocks in the segment, for validating block references.
    blocks: u32,
    /// Set when any frame decodes anywhere in the payload (value graph or
    /// `quote` immediates) — recomputed rather than trusted from the
    /// producer, because `uses_frames` gates the flat-env compatibility
    /// check at hydration time.
    uses_frames: bool,
}

impl<'a> Decode<'a> {
    fn block_ref(&mut self) -> Result<u32, WireError> {
        let b = self.input.u32()?;
        if b >= self.blocks {
            return Err(WireError::Corrupt("block reference out of range"));
        }
        Ok(b)
    }

    fn value(&mut self, depth: usize) -> Result<PortableVal, WireError> {
        if depth >= MAX_DECODE_DEPTH {
            return Err(WireError::TooDeep);
        }
        Ok(match self.input.u8()? {
            TAG_UNIT => PortableVal::Unit,
            TAG_INT => PortableVal::Int(self.input.i64()?),
            TAG_BOOL => PortableVal::Bool(self.input.bool()?),
            TAG_STR => PortableVal::Str(Arc::from(self.input.str()?)),
            TAG_PAIR => {
                let slot = self.reserve();
                let a = self.value(depth + 1)?;
                let b = self.value(depth + 1)?;
                let pair = Arc::new((a, b));
                self.shared[slot] = Some(Shared::Pair(pair.clone()));
                PortableVal::Pair(pair)
            }
            TAG_FRAME => {
                self.uses_frames = true;
                let slot = self.reserve();
                let link = self.value(depth + 1)?;
                let count = self.input.u32()? as usize;
                let mut slots = Vec::new();
                for _ in 0..count {
                    slots.push(self.value(depth + 1)?);
                }
                let frame = Arc::new(PortableFrame { link, slots });
                self.shared[slot] = Some(Shared::Frame(frame.clone()));
                PortableVal::Frame(frame)
            }
            TAG_CLOSURE => {
                let slot = self.reserve();
                let env = self.value(depth + 1)?;
                let body = self.block_ref()?;
                let closure = Arc::new(PortableClosure { env, body });
                self.shared[slot] = Some(Shared::Closure(closure.clone()));
                PortableVal::Closure(closure)
            }
            TAG_RECCLOSURE => {
                let group = match self.input.u8()? {
                    GROUP_INLINE => {
                        let slot = self.reserve();
                        let env = self.value(depth + 1)?;
                        let count = self.input.u32()? as usize;
                        let mut bodies = Vec::new();
                        for _ in 0..count {
                            bodies.push(self.block_ref()?);
                        }
                        let group = Arc::new(PortableRecGroup {
                            env,
                            bodies: Arc::new(bodies),
                        });
                        self.shared[slot] = Some(Shared::Group(group.clone()));
                        group
                    }
                    GROUP_BACKREF => match self.backref()? {
                        Shared::Group(g) => g,
                        _ => {
                            return Err(WireError::Corrupt(
                                "rec-closure back-reference is not a group",
                            ))
                        }
                    },
                    _ => return Err(WireError::Corrupt("unknown rec-group marker")),
                };
                let index = self.input.u32()? as usize;
                if index >= group.bodies.len() {
                    return Err(WireError::Corrupt("rec-closure index out of range"));
                }
                PortableVal::RecClosure { group, index }
            }
            TAG_CON => {
                let tag = self.input.u32()?;
                let payload = match self.input.u8()? {
                    0 => None,
                    1 => Some(Arc::new(self.value(depth + 1)?)),
                    _ => return Err(WireError::Corrupt("unknown constructor payload marker")),
                };
                PortableVal::Con(tag, payload)
            }
            TAG_BACKREF => match self.backref()? {
                Shared::Pair(p) => PortableVal::Pair(p),
                Shared::Frame(f) => {
                    // Already counted at its inline decode, but cheap to
                    // keep the invariant obvious.
                    self.uses_frames = true;
                    PortableVal::Frame(f)
                }
                Shared::Closure(c) => PortableVal::Closure(c),
                Shared::Group(_) => {
                    return Err(WireError::Corrupt(
                        "value back-reference resolves to a rec group",
                    ))
                }
            },
            _ => return Err(WireError::Corrupt("unknown value tag")),
        })
    }

    fn reserve(&mut self) -> usize {
        self.shared.push(None);
        self.shared.len() - 1
    }

    fn backref(&mut self) -> Result<Shared, WireError> {
        let idx = self.input.u32()? as usize;
        match self.shared.get(idx) {
            Some(Some(node)) => Ok(node.clone()),
            Some(None) => Err(WireError::Corrupt("cyclic back-reference")),
            None => Err(WireError::Corrupt("dangling back-reference")),
        }
    }

    fn instr(&mut self, depth: usize) -> Result<PortableInstr, WireError> {
        if depth >= MAX_DECODE_DEPTH {
            return Err(WireError::TooDeep);
        }
        Ok(match self.input.u8()? {
            OP_ID => PortableInstr::Id,
            OP_FST => PortableInstr::Fst,
            OP_SND => PortableInstr::Snd,
            OP_PUSH => PortableInstr::Push,
            OP_SWAP => PortableInstr::Swap,
            OP_CONSPAIR => PortableInstr::ConsPair,
            OP_APP => PortableInstr::App,
            OP_QUOTE => PortableInstr::Quote(self.value(depth + 1)?),
            OP_CUR => PortableInstr::Cur(self.block_ref()?),
            OP_EMIT => PortableInstr::Emit(Box::new(self.instr(depth + 1)?)),
            OP_LIFTV => PortableInstr::LiftV,
            OP_NEWARENA => PortableInstr::NewArena,
            OP_MERGE => PortableInstr::Merge,
            OP_CALL => PortableInstr::Call,
            OP_BRANCH => PortableInstr::Branch(self.block_ref()?, self.block_ref()?),
            OP_RECCLOS => {
                let count = self.input.u32()? as usize;
                let mut bodies = Vec::new();
                for _ in 0..count {
                    bodies.push(self.block_ref()?);
                }
                PortableInstr::RecClos(Arc::new(bodies))
            }
            OP_PACK => PortableInstr::Pack(self.input.u32()?),
            OP_SWITCH => {
                let count = self.input.u32()? as usize;
                let mut arms = Vec::new();
                for _ in 0..count {
                    let tag = self.input.u32()?;
                    let bind = self.input.bool()?;
                    let code = self.block_ref()?;
                    arms.push(PortableSwitchArm { tag, bind, code });
                }
                let default = match self.input.u8()? {
                    0 => None,
                    1 => Some(self.block_ref()?),
                    _ => return Err(WireError::Corrupt("unknown switch default marker")),
                };
                PortableInstr::Switch(Arc::new(PortableSwitchTable { arms, default }))
            }
            OP_PRIM => PortableInstr::Prim(prim_from_byte(self.input.u8()?)?),
            OP_FAIL => PortableInstr::Fail(Arc::from(self.input.str()?)),
            OP_MERGEBRANCH => PortableInstr::MergeBranch,
            OP_MERGESWITCH => {
                let count = self.input.u32()? as usize;
                let mut arms = Vec::new();
                for _ in 0..count {
                    let tag = self.input.u32()?;
                    let bind = self.input.bool()?;
                    arms.push((tag, bind));
                }
                let default = self.input.bool()?;
                PortableInstr::MergeSwitch(Arc::new(MergeSwitchSpec { arms, default }))
            }
            OP_MERGEREC => PortableInstr::MergeRec(self.input.u32()? as usize),
            OP_ACC => PortableInstr::Acc(self.input.u32()? as usize),
            OP_PUSHACC => PortableInstr::PushAcc(self.input.u32()? as usize),
            OP_QUOTECONS => PortableInstr::QuoteCons(self.value(depth + 1)?),
            OP_SWAPCONS => PortableInstr::SwapCons,
            OP_CONSAPP => PortableInstr::ConsApp,
            OP_ACCAPP => PortableInstr::AccApp(self.input.u32()? as usize),
            OP_PUSHQUOTE => PortableInstr::PushQuote(self.value(depth + 1)?),
            OP_ENVCONS => PortableInstr::EnvCons,
            _ => return Err(WireError::Corrupt("unknown instruction opcode")),
        })
    }

    fn seg(&mut self) -> Result<PortableSegData, WireError> {
        let block_count = self.input.u32()?;
        self.blocks = block_count;
        let mut instrs = Vec::new();
        let mut blocks = Vec::new();
        for _ in 0..block_count {
            let len = self.input.u32()?;
            let start = u32::try_from(instrs.len())
                .map_err(|_| WireError::Corrupt("segment exceeds u32 instructions"))?;
            for _ in 0..len {
                instrs.push(self.instr(0)?);
            }
            blocks.push((start, len));
        }
        Ok(PortableSegData { instrs, blocks })
    }
}

/// Decodes a payload produced by [`encode_value`], consuming the entire
/// input.
///
/// The `uses_frames` flag of the result is recomputed from what actually
/// decodes (never trusted from the producer), so the flat-env
/// compatibility check downstream keeps its meaning.
///
/// # Errors
///
/// Returns a [`WireError`] on truncation, unknown tags, dangling or
/// cyclic references, out-of-range block numbers, over-deep nesting, or
/// leftover bytes. Never panics.
pub fn decode_value(bytes: &[u8]) -> Result<PortableValue, WireError> {
    let mut d = Decode {
        input: Reader::new(bytes),
        shared: Vec::new(),
        blocks: 0,
        uses_frames: false,
    };
    let seg = d.seg()?;
    let root = d.value(0)?;
    if d.input.remaining() > 0 {
        return Err(WireError::TrailingBytes(d.input.remaining()));
    }
    Ok(PortableValue::from_parts(
        Arc::new(seg),
        root,
        d.uses_frames,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;
    use crate::seg::{CodeRef, CodeSeg};
    use crate::value::{Closure, Value};
    use std::rc::Rc;

    fn closure(env: Value, body: Vec<Instr>) -> Value {
        Value::Closure(Rc::new(Closure {
            env,
            body: CodeSeg::new().entry(body),
        }))
    }

    fn roundtrip(v: &Value) -> (PortableValue, Vec<u8>) {
        let p = PortableValue::extract(v).unwrap();
        let bytes = encode_value(&p);
        let back = decode_value(&bytes).unwrap();
        assert_eq!(
            encode_value(&back),
            bytes,
            "decode-encode is not the identity on bytes"
        );
        (back, bytes)
    }

    #[test]
    fn first_order_values_roundtrip() {
        let v = Value::tuple(vec![
            Value::Int(-3),
            Value::Bool(true),
            Value::str("hi"),
            Value::Con(2, Some(Rc::new(Value::Unit))),
        ]);
        let (back, _) = roundtrip(&v);
        assert_eq!(v.structural_eq(&back.hydrate()), Some(true));
    }

    #[test]
    fn closures_roundtrip_and_still_run() {
        let f = closure(
            Value::Unit,
            vec![
                Instr::Snd,
                Instr::Push,
                Instr::Quote(Value::Int(1)),
                Instr::ConsPair,
                Instr::Prim(PrimOp::Add),
            ],
        );
        let (back, _) = roundtrip(&f);
        let g = back.hydrate();
        let app: CodeRef = CodeSeg::new().entry(vec![Instr::App]);
        let out = crate::machine::Machine::new()
            .run(app, Value::pair(g, Value::Int(41)))
            .unwrap();
        assert!(matches!(out, Value::Int(42)));
    }

    #[test]
    fn sharing_survives_the_wire() {
        let seg = CodeSeg::new();
        let body = seg.add_block(vec![Instr::Snd]);
        let shared = Value::Closure(Rc::new(Closure {
            env: Value::pair(Value::Int(1), Value::Int(2)),
            body: CodeRef {
                seg: seg.clone(),
                block: body,
            },
        }));
        let v = Value::pair(shared.clone(), shared);
        let (back, _) = roundtrip(&v);
        // One closure, one block, shared pair env — instruction count and
        // block count survive, so step counts will too.
        assert_eq!(back.instr_count(), 1);
        let h = back.hydrate();
        let Value::Pair(p) = &h else { panic!("{h:?}") };
        let (Value::Closure(a), Value::Closure(b)) = (&p.0, &p.1) else {
            panic!("{h:?}")
        };
        assert!(Rc::ptr_eq(a, b), "closure sharing restored after decode");
    }

    #[test]
    fn frames_are_flagged_by_recomputation() {
        let env = Value::env_extend(Value::Unit, Value::Int(10));
        let f = closure(env, vec![Instr::Acc(1)]);
        let p = PortableValue::extract(&f).unwrap();
        assert!(p.uses_frames());
        let back = decode_value(&encode_value(&p)).unwrap();
        assert!(back.uses_frames(), "frame flag recomputed on decode");
        let plain = closure(Value::pair(Value::Unit, Value::Int(1)), vec![Instr::Snd]);
        let p = PortableValue::extract(&plain).unwrap();
        let back = decode_value(&encode_value(&p)).unwrap();
        assert!(!back.uses_frames());
    }

    #[test]
    fn every_instruction_crosses_the_wire() {
        use crate::instr::{MergeSwitchSpec, SwitchArm, SwitchTable};
        let seg = CodeSeg::new();
        let sub = seg.add_block(vec![Instr::Id]);
        let all = vec![
            Instr::Id,
            Instr::Fst,
            Instr::Snd,
            Instr::Acc(2),
            Instr::Push,
            Instr::Swap,
            Instr::ConsPair,
            Instr::App,
            Instr::Quote(Value::Int(7)),
            Instr::Cur(sub),
            Instr::Emit(Box::new(Instr::Snd)),
            Instr::LiftV,
            Instr::NewArena,
            Instr::Merge,
            Instr::Call,
            Instr::Branch(sub, sub),
            Instr::RecClos(Rc::new(vec![sub])),
            Instr::Pack(3),
            Instr::Switch(Rc::new(SwitchTable {
                arms: vec![SwitchArm {
                    tag: 0,
                    bind: true,
                    code: sub,
                }],
                default: Some(sub),
            })),
            Instr::Prim(PrimOp::Mul),
            Instr::Fail(Rc::from("boom")),
            Instr::MergeBranch,
            Instr::MergeSwitch(Rc::new(MergeSwitchSpec {
                arms: vec![(0, true)],
                default: true,
            })),
            Instr::MergeRec(2),
            Instr::PushAcc(1),
            Instr::QuoteCons(Value::Int(8)),
            Instr::SwapCons,
            Instr::ConsApp,
            Instr::AccApp(0),
            Instr::PushQuote(Value::Bool(false)),
            Instr::EnvCons,
        ];
        let code = seg.entry(all);
        let f = Value::Closure(Rc::new(Closure {
            env: Value::Unit,
            body: code.clone(),
        }));
        let p = PortableValue::extract(&f).unwrap();
        let bytes = encode_value(&p);
        let back = decode_value(&bytes).unwrap();
        assert_eq!(encode_value(&back), bytes);
        assert_eq!(back.instr_count(), p.instr_count());
    }

    #[test]
    fn truncation_always_errors_never_panics() {
        let f = closure(
            Value::pair(Value::str("abc"), Value::Int(5)),
            vec![
                Instr::Quote(Value::Int(1)),
                Instr::Prim(PrimOp::Add),
                Instr::Fail(Rc::from("nope")),
            ],
        );
        let p = PortableValue::extract(&f).unwrap();
        let bytes = encode_value(&p);
        for len in 0..bytes.len() {
            assert!(
                decode_value(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn corrupt_bytes_never_panic() {
        let f = closure(
            Value::tuple(vec![Value::Int(1), Value::str("x"), Value::Bool(true)]),
            vec![Instr::Snd, Instr::Prim(PrimOp::Add)],
        );
        let p = PortableValue::extract(&f).unwrap();
        let bytes = encode_value(&p);
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= flip;
                // Either outcome is acceptable at the payload layer (the
                // container checksum catches silent mutations); the
                // requirement is no panic.
                let _ = decode_value(&corrupt);
            }
        }
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing() {
        // A payload of nothing but pair tags: blocks=0, then pair, pair,
        // pair, ... — each level claims two children and recursion would
        // run one level per byte.
        let mut bytes = vec![0, 0, 0, 0]; // zero blocks
        bytes.extend(std::iter::repeat_n(TAG_PAIR, MAX_DECODE_DEPTH + 10));
        assert_eq!(decode_value(&bytes).unwrap_err(), WireError::TooDeep);
    }

    #[test]
    fn dangling_and_cyclic_backrefs_are_rejected() {
        // blocks=0, then a bare backref to index 0 (nothing emitted).
        let mut bytes = vec![0, 0, 0, 0, TAG_BACKREF];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_value(&bytes),
            Err(WireError::Corrupt("dangling back-reference"))
        ));
        // blocks=0, then a pair whose first child back-references the
        // pair itself (index 0, still unfilled): a cycle.
        let mut bytes = vec![0, 0, 0, 0, TAG_PAIR, TAG_BACKREF];
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(TAG_UNIT);
        assert!(matches!(
            decode_value(&bytes),
            Err(WireError::Corrupt("cyclic back-reference"))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let p = PortableValue::extract(&Value::Int(3)).unwrap();
        let mut bytes = encode_value(&p);
        bytes.push(0);
        assert_eq!(
            decode_value(&bytes).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn out_of_range_block_refs_are_rejected() {
        // blocks=0, then a closure with env=unit and body block 7.
        let mut bytes = vec![0, 0, 0, 0, TAG_CLOSURE, TAG_UNIT];
        bytes.extend_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            decode_value(&bytes),
            Err(WireError::Corrupt("block reference out of range"))
        ));
    }
}
