//! The thread-coded native tier (DESIGN.md §13).
//!
//! The interpreter decodes every instruction on every step: match on the
//! opcode, destructure the operands, then do the work. This module lowers
//! a block **once** into a flat array of [`NativeOp`]s — one pre-built
//! closure per instruction, operands decoded and captured at lowering
//! time — so the run path is an indirect call per step and nothing else.
//! It is the third execution tier of ROADMAP item 2: source interpreter,
//! CCAM interpreter, thread-coded CCAM.
//!
//! Lowering reuses the *same* per-opcode step functions the interpreter
//! dispatches to ([`crate::machine::core`]/[`env`]/[`fused`]), so the two
//! tiers cannot drift: a native op's effect is the interpreted op's
//! effect, and its pre-computed accounting triple (opcode, mnemonic, fuel
//! charge) makes step counts, traces, profiles, and fuel exhaustion
//! byte-identical by construction.
//!
//! Control transfers are lowered as their pre-cloned [`Instr`] — they end
//! the straight-line run and go through the machine's transfer dispatch
//! (they may freeze arenas or push frames, which a boxed step closure
//! over [`MachineState`] cannot do). A lowered op never captures the
//! [`CodeSeg`] it belongs to — the segment owns the lowering through its
//! per-block memo, and the runner passes the executing segment in at each
//! step (block operands like `Cur` are relative to it).
//!
//! [`env`]: crate::machine::env
//! [`fused`]: crate::machine::fused

use crate::instr::Instr;
use crate::machine::state::MachineState;
use crate::machine::{core, env, fuel_cost, fused, is_transfer, MachineError};
use crate::seg::{BlockId, CodeSeg};
use std::fmt;
use std::rc::Rc;

/// A pre-decoded straight-line op: the step function with its operands
/// already captured.
pub(crate) type NativeStep = Box<dyn Fn(&mut MachineState, &CodeSeg) -> Result<(), MachineError>>;

/// How one lowered op executes.
pub(crate) enum NativeRun {
    /// Straight-line: call the captured closure.
    Step(NativeStep),
    /// Control transfer or segment mutator: dispatch the pre-cloned
    /// instruction through the machine's transfer table. Statically known
    /// at lowering time, so the runner saves the pc before executing it.
    Transfer(Instr),
}

/// One thread-coded instruction with its pre-computed accounting triple.
pub(crate) struct NativeOp {
    /// [`Instr::opcode`] of the lowered instruction.
    pub(crate) opcode: usize,
    /// [`Instr::mnemonic`] of the lowered instruction (for traces).
    pub(crate) mnemonic: &'static str,
    /// Fuel units the instruction charges (`machine::fuel_cost`).
    pub(crate) fuel: u64,
    /// The op's effect.
    pub(crate) run: NativeRun,
}

/// A block lowered to thread code: one [`NativeOp`] per instruction, in
/// block order.
pub(crate) struct NativeBlock {
    /// The lowered ops.
    pub(crate) ops: Vec<NativeOp>,
}

impl fmt::Debug for NativeBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NativeBlock({} ops)", self.ops.len())
    }
}

/// The lowering of `block`, memoized in its segment: the first request
/// (eagerly at freeze time for frozen code, on first activation
/// otherwise) lowers and caches; every later activation is one map
/// lookup. Blocks are immutable `(start, len)` ranges of an append-only
/// segment, so a cached lowering never goes stale.
pub(crate) fn lowered(seg: &CodeSeg, block: BlockId) -> Rc<NativeBlock> {
    if let Some(nb) = seg.native_memo_get(block) {
        return nb;
    }
    let nb = Rc::new(lower_block(seg, block));
    seg.native_memo_put(block, nb.clone());
    nb
}

fn lower_block(seg: &CodeSeg, block: BlockId) -> NativeBlock {
    let instrs = seg.block_to_vec(block);
    NativeBlock {
        ops: instrs.iter().map(lower_instr).collect(),
    }
}

fn step(
    f: impl Fn(&mut MachineState, &CodeSeg) -> Result<(), MachineError> + 'static,
) -> NativeRun {
    NativeRun::Step(Box::new(f))
}

fn lower_instr(i: &Instr) -> NativeOp {
    let opcode = i.opcode();
    let run = if is_transfer(opcode) {
        NativeRun::Transfer(i.clone())
    } else {
        match i {
            Instr::Id => step(|st, _| core::id(st)),
            Instr::Fst => step(|st, _| env::fst(st)),
            Instr::Snd => step(|st, _| env::snd(st)),
            Instr::Push => step(|st, _| core::push(st)),
            Instr::Swap => step(|st, _| core::swap(st)),
            Instr::ConsPair => step(|st, _| core::cons_pair(st)),
            Instr::Quote(v) => {
                let v = v.clone();
                step(move |st, _| core::quote(st, &v))
            }
            Instr::Cur(body) => {
                let body = *body;
                step(move |st, seg| core::cur(st, seg, body))
            }
            Instr::Emit(inner) => {
                let inner = (**inner).clone();
                step(move |st, seg| core::emit(st, seg, &inner))
            }
            Instr::LiftV => step(|st, _| core::lift(st)),
            Instr::NewArena => step(core::new_arena),
            Instr::RecClos(bodies) => {
                let bodies = bodies.clone();
                step(move |st, seg| core::rec_clos(st, seg, &bodies))
            }
            Instr::Pack(tag) => {
                let tag = *tag;
                step(move |st, _| core::pack(st, tag))
            }
            Instr::Prim(op) => {
                let op = *op;
                step(move |st, _| core::prim(st, op))
            }
            Instr::Fail(msg) => {
                let msg = msg.clone();
                step(move |_st, _| core::fail(&msg))
            }
            Instr::Acc(n) => {
                let n = *n;
                step(move |st, _| env::acc(st, n))
            }
            Instr::PushAcc(n) => {
                let n = *n;
                step(move |st, _| fused::push_acc(st, n))
            }
            Instr::QuoteCons(v) => {
                let v = v.clone();
                step(move |st, _| fused::quote_cons(st, &v))
            }
            Instr::SwapCons => step(|st, _| fused::swap_cons(st)),
            Instr::PushQuote(v) => {
                let v = v.clone();
                step(move |st, _| fused::push_quote(st, &v))
            }
            Instr::EnvCons => step(|st, _| env::env_cons(st)),
            other => unreachable!("transfer {other:?} not covered by is_transfer"),
        }
    };
    NativeOp {
        opcode,
        mnemonic: i.mnemonic(),
        fuel: fuel_cost(i),
        run,
    }
}
