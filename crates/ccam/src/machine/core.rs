//! Step functions for the core opcodes: the seven CAM instructions
//! (minus the environment projections, which live in [`super::env`]),
//! constants, closures, the RTCG staging instructions that only touch an
//! arena's *staging* buffer (`emit`, `lift`, `arena`), datatype packing,
//! and the primitives.
//!
//! Every function takes the operands **already decoded** from the
//! instruction, so the same template serves the interpreter's dispatch
//! table (which decodes per step) and the thread-coded native tier
//! (which decodes once at lowering time, see `crate::native`). None of
//! these appends to a segment's instruction vector or touches the
//! control stack, so the interpreter may run them under its block
//! borrow.

use super::state::{mismatch, MachineState};
use super::MachineError;
use crate::instr::{Instr, PrimOp};
use crate::machine::{floor_div, floor_mod};
use crate::seg::{BlockId, CodeRef, CodeSeg};
use crate::value::{Arena, Closure, RecGroup, Value};
use std::cell::RefCell;
use std::rc::Rc;

/// `id`: no-op.
pub(crate) fn id(_st: &mut MachineState) -> Result<(), MachineError> {
    Ok(())
}

/// `push`: duplicate the top of the stack.
pub(crate) fn push(st: &mut MachineState) -> Result<(), MachineError> {
    let v = st.top("push")?.clone();
    st.stack.push(v);
    Ok(())
}

/// `swap`: exchange the two top stack entries.
pub(crate) fn swap(st: &mut MachineState) -> Result<(), MachineError> {
    let n = st.stack.len();
    if n < 2 {
        return Err(MachineError::StackUnderflow { instr: "swap" });
    }
    st.stack.swap(n - 1, n - 2);
    Ok(())
}

/// `cons`: pop `v` then `u`; push the pair `(u, v)`.
pub(crate) fn cons_pair(st: &mut MachineState) -> Result<(), MachineError> {
    let v = st.pop("cons")?;
    let u = st.pop("cons")?;
    st.stack.push(Value::pair(u, v));
    Ok(())
}

/// `quote v`: replace the top with a constant.
pub(crate) fn quote(st: &mut MachineState, v: &Value) -> Result<(), MachineError> {
    let _ = st.pop("quote")?;
    st.stack.push(v.clone());
    Ok(())
}

/// `cur L`: build a closure capturing the top value; the body is block
/// `L` of the executing segment.
pub(crate) fn cur(st: &mut MachineState, seg: &CodeSeg, body: BlockId) -> Result<(), MachineError> {
    let env = st.pop("cur")?;
    st.stack.push(Value::Closure(Rc::new(Closure {
        env,
        body: CodeRef {
            seg: seg.clone(),
            block: body,
        },
    })));
    Ok(())
}

/// `emit i`: append a static instruction to the arena in the top pair
/// `(v, {P})`.
pub(crate) fn emit(st: &mut MachineState, seg: &CodeSeg, i: &Instr) -> Result<(), MachineError> {
    let (v, arena) = st.pop_gen_state("emit")?;
    // Block operands are relative to the executing segment; rewrite them
    // if the arena freezes into a different one (identity in the common
    // case).
    arena.push(arena.seg().import_instr(seg, i));
    st.stats.emitted += 1;
    st.stack.push(Value::pair(v, Value::Arena(arena)));
    Ok(())
}

/// `lift`: residualize — append `Quote(v)` to the arena in the top pair
/// `(v, {P})`.
pub(crate) fn lift(st: &mut MachineState) -> Result<(), MachineError> {
    let (v, arena) = st.pop_gen_state("lift")?;
    arena.push(Instr::Quote(v.clone()));
    st.stats.emitted += 1;
    st.stack.push(Value::pair(v, Value::Arena(arena)));
    Ok(())
}

/// `arena`: replace the top with a fresh empty arena bound to the
/// executing segment, so frozen code lands in the segment's growable
/// tail.
pub(crate) fn new_arena(st: &mut MachineState, seg: &CodeSeg) -> Result<(), MachineError> {
    let _ = st.pop("arena")?;
    st.stats.arenas += 1;
    st.stack.push(Value::Arena(Arena::in_seg(seg)));
    Ok(())
}

/// `recclos [L1..Ln]`: build a recursive closure group capturing the top
/// environment and extend the environment with every member.
pub(crate) fn rec_clos(
    st: &mut MachineState,
    seg: &CodeSeg,
    bodies: &Rc<Vec<BlockId>>,
) -> Result<(), MachineError> {
    let env = st.pop("recclos")?;
    let group = Rc::new(RecGroup {
        env,
        seg: seg.clone(),
        bodies: bodies.clone(),
    });
    let mut acc = group.env.clone();
    for index in 0..bodies.len() {
        acc = Value::pair(
            acc,
            Value::RecClosure {
                group: group.clone(),
                index: index as u32,
            },
        );
    }
    st.stack.push(acc);
    Ok(())
}

/// `pack t`: wrap the top value in constructor `t`.
pub(crate) fn pack(st: &mut MachineState, tag: u32) -> Result<(), MachineError> {
    let v = st.pop("pack")?;
    st.stack.push(Value::Con(tag, Some(Rc::new(v))));
    Ok(())
}

/// `fail msg`: abort (inexhaustive match).
pub(crate) fn fail(msg: &str) -> Result<(), MachineError> {
    Err(MachineError::Fail(msg.to_string()))
}

/// `prim op`: a primitive operation on the top value (unary), top pair
/// (binary), or top right-nested triple (`ArrUpdate`).
pub(crate) fn prim(st: &mut MachineState, op: PrimOp) -> Result<(), MachineError> {
    use PrimOp::*;
    let instr = "prim";
    match op {
        Neg | Not | StrSize | IntToString | Print | Ref | Deref | ArrLen => {
            let v = st.pop(instr)?;
            let out = match (op, v) {
                (Neg, Value::Int(n)) => Value::Int(n.wrapping_neg()),
                (Not, Value::Bool(b)) => Value::Bool(!b),
                (StrSize, Value::Str(s)) => Value::Int(s.len() as i64),
                (IntToString, Value::Int(n)) => Value::str(n.to_string()),
                (Print, Value::Str(s)) => {
                    st.output.push_str(&s);
                    Value::Unit
                }
                (Ref, v) => Value::Ref(Rc::new(RefCell::new(v))),
                (Deref, Value::Ref(r)) => r.borrow().clone(),
                (ArrLen, Value::Array(a)) => Value::Int(a.borrow().len() as i64),
                (_, v) => return Err(mismatch(instr, "a valid operand", &v)),
            };
            st.stack.push(out);
            Ok(())
        }
        ArrUpdate => {
            // (a, (i, v))
            let (a, rest) = st.pop_pair(instr)?;
            let Value::Pair(iv) = rest else {
                return Err(mismatch(instr, "(array, (index, value))", &rest));
            };
            let (Value::Array(arr), Value::Int(i)) = (&a, &iv.0) else {
                return Err(mismatch(instr, "(array, (index, value))", &a));
            };
            let mut borrow = arr.borrow_mut();
            let len = borrow.len();
            let idx = usize::try_from(*i)
                .ok()
                .filter(|&u| u < len)
                .ok_or(MachineError::IndexOutOfBounds { index: *i, len })?;
            borrow[idx] = iv.1.clone();
            drop(borrow);
            st.stack.push(Value::Unit);
            Ok(())
        }
        _ => {
            // Binary.
            let (a, b) = st.pop_pair(instr)?;
            let out = match (op, &a, &b) {
                (Add, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(*y)),
                (Sub, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_sub(*y)),
                (Mul, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_mul(*y)),
                (Div, Value::Int(x), Value::Int(y)) => {
                    if *y == 0 {
                        return Err(MachineError::DivideByZero);
                    }
                    Value::Int(floor_div(*x, *y))
                }
                (Mod, Value::Int(x), Value::Int(y)) => {
                    if *y == 0 {
                        return Err(MachineError::DivideByZero);
                    }
                    Value::Int(floor_mod(*x, *y))
                }
                (Eq, a, b) => {
                    Value::Bool(a.structural_eq(b).ok_or(MachineError::EqualityUndefined)?)
                }
                (Ne, a, b) => {
                    Value::Bool(!a.structural_eq(b).ok_or(MachineError::EqualityUndefined)?)
                }
                (Lt, Value::Int(x), Value::Int(y)) => Value::Bool(x < y),
                (Le, Value::Int(x), Value::Int(y)) => Value::Bool(x <= y),
                (Gt, Value::Int(x), Value::Int(y)) => Value::Bool(x > y),
                (Ge, Value::Int(x), Value::Int(y)) => Value::Bool(x >= y),
                (Lt, Value::Str(x), Value::Str(y)) => Value::Bool(x < y),
                (Le, Value::Str(x), Value::Str(y)) => Value::Bool(x <= y),
                (Gt, Value::Str(x), Value::Str(y)) => Value::Bool(x > y),
                (Ge, Value::Str(x), Value::Str(y)) => Value::Bool(x >= y),
                (BitAnd, Value::Int(x), Value::Int(y)) => Value::Int(x & y),
                (Concat, Value::Str(x), Value::Str(y)) => {
                    let mut s = x.to_string();
                    s.push_str(y);
                    Value::str(s)
                }
                (Assign, Value::Ref(r), v) => {
                    *r.borrow_mut() = v.clone();
                    Value::Unit
                }
                (MkArray, Value::Int(n), init) => {
                    let len = usize::try_from(*n)
                        .map_err(|_| MachineError::IndexOutOfBounds { index: *n, len: 0 })?;
                    Value::Array(Rc::new(RefCell::new(vec![init.clone(); len])))
                }
                (ArrSub, Value::Array(arr), Value::Int(i)) => {
                    let borrow = arr.borrow();
                    let len = borrow.len();
                    let idx = usize::try_from(*i)
                        .ok()
                        .filter(|&u| u < len)
                        .ok_or(MachineError::IndexOutOfBounds { index: *i, len })?;
                    borrow[idx].clone()
                }
                _ => return Err(mismatch(instr, "valid binary operands", &a)),
            };
            st.stack.push(out);
            Ok(())
        }
    }
}
