//! Step functions for the straight-line fused superinstructions
//! (opcodes 24–26 and 29, DESIGN.md §11): each does the work of the
//! opcode pair it replaced in one reduction step and bumps
//! `Stats::fused`. The fused *transfers* (`cons_app`, `acc_app`) live in
//! [`super::transfer`] — they enter closures, which the straight-line
//! tier cannot do.

use super::state::{mismatch, MachineState};
use super::MachineError;
use crate::value::Value;

/// `push_acc n`: `push; acc n` without the duplicate — peek the top,
/// resolve the access, push only the result.
pub(crate) fn push_acc(st: &mut MachineState, n: usize) -> Result<(), MachineError> {
    let out = {
        let v = st
            .stack
            .last()
            .ok_or(MachineError::StackUnderflow { instr: "push_acc" })?;
        v.env_acc(n)
            .ok_or_else(|| mismatch("push_acc", "an environment spine", v))?
    };
    st.stats.fused += 1;
    st.stack.push(out);
    Ok(())
}

/// `quote_cons v`: `quote v; cons` — the quoted constant replaces the
/// top, then pairs with the value beneath.
pub(crate) fn quote_cons(st: &mut MachineState, v: &Value) -> Result<(), MachineError> {
    let _ = st.pop("quote_cons")?;
    let u = st.pop("quote_cons")?;
    st.stats.fused += 1;
    st.stack.push(Value::pair(u, v.clone()));
    Ok(())
}

/// `swap_cons`: `swap; cons` — a pair with the operands in stack order
/// (top first) instead of reversed.
pub(crate) fn swap_cons(st: &mut MachineState) -> Result<(), MachineError> {
    let t = st.pop("swap_cons")?;
    let u = st.pop("swap_cons")?;
    st.stats.fused += 1;
    st.stack.push(Value::pair(t, u));
    Ok(())
}

/// `push_quote v`: `push; quote v` — keep the top, push the constant
/// above it. A lone `push` underflows on an empty stack, so the fused
/// form must too.
pub(crate) fn push_quote(st: &mut MachineState, v: &Value) -> Result<(), MachineError> {
    if st.stack.is_empty() {
        return Err(MachineError::StackUnderflow {
            instr: "push_quote",
        });
    }
    st.stats.fused += 1;
    st.stack.push(v.clone());
    Ok(())
}
