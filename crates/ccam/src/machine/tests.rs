use super::*;
use crate::instr::{PrimOp, SwitchArm, SwitchTable};
use std::rc::Rc;

fn entry(instrs: Vec<Instr>) -> CodeRef {
    CodeSeg::new().entry(instrs)
}

fn run(instrs: Vec<Instr>, input: Value) -> Value {
    Machine::new().run(entry(instrs), input).unwrap()
}

#[test]
fn dispatch_table_covers_every_opcode() {
    // One exemplar per opcode, in numbering order; the table is indexed
    // by `Instr::opcode`, so any drift between the two breaks here.
    let exemplars = vec![
        Instr::Id,
        Instr::Fst,
        Instr::Snd,
        Instr::Push,
        Instr::Swap,
        Instr::ConsPair,
        Instr::App,
        Instr::Quote(Value::Unit),
        Instr::Cur(BlockId(0)),
        Instr::Emit(Box::new(Instr::Id)),
        Instr::LiftV,
        Instr::NewArena,
        Instr::Merge,
        Instr::Call,
        Instr::Branch(BlockId(0), BlockId(0)),
        Instr::RecClos(Rc::new(vec![])),
        Instr::Pack(0),
        Instr::Switch(Rc::new(SwitchTable {
            arms: vec![],
            default: None,
        })),
        Instr::Prim(PrimOp::Add),
        Instr::Fail(Rc::from("x")),
        Instr::MergeBranch,
        Instr::MergeSwitch(Rc::new(crate::instr::MergeSwitchSpec {
            arms: vec![],
            default: false,
        })),
        Instr::MergeRec(0),
        Instr::Acc(0),
        Instr::PushAcc(0),
        Instr::QuoteCons(Value::Unit),
        Instr::SwapCons,
        Instr::ConsApp,
        Instr::AccApp(0),
        Instr::PushQuote(Value::Unit),
        Instr::EnvCons,
    ];
    assert_eq!(exemplars.len(), OPCODE_COUNT);
    for (want, i) in exemplars.iter().enumerate() {
        assert_eq!(i.opcode(), want, "{}", i.mnemonic());
        let transfers = matches!(
            i,
            Instr::App
                | Instr::Branch(_, _)
                | Instr::Switch(_)
                | Instr::Call
                | Instr::Merge
                | Instr::MergeBranch
                | Instr::MergeSwitch(_)
                | Instr::MergeRec(_)
                | Instr::ConsApp
                | Instr::AccApp(_)
        );
        assert_eq!(
            is_transfer(i.opcode()),
            transfers,
            "{} dispatch kind",
            i.mnemonic()
        );
    }
}

#[test]
fn cam_pair_projections() {
    let p = Value::pair(Value::Int(1), Value::Int(2));
    assert!(matches!(run(vec![Instr::Fst], p.clone()), Value::Int(1)));
    assert!(matches!(run(vec![Instr::Snd], p), Value::Int(2)));
}

#[test]
fn acc_walks_the_spine_in_one_step() {
    // Spine ((((), 1), 2), 3): Acc(0) = snd, Acc(2) = fst;fst;snd.
    let spine = Value::pair(
        Value::pair(Value::pair(Value::Unit, Value::Int(1)), Value::Int(2)),
        Value::Int(3),
    );
    for (n, want) in [(0usize, 3i64), (1, 2), (2, 1)] {
        let mut m = Machine::new();
        let out = m.run(entry(vec![Instr::Acc(n)]), spine.clone()).unwrap();
        assert!(matches!(out, Value::Int(v) if v == want), "Acc({n})");
        assert_eq!(m.stats().steps, 1, "Acc({n}) is a single reduction step");
    }
}

#[test]
fn acc_agrees_with_fst_chain_and_is_cheaper() {
    let spine = Value::pair(
        Value::pair(Value::pair(Value::Unit, Value::Int(7)), Value::Int(8)),
        Value::Int(9),
    );
    let chain = vec![Instr::Fst, Instr::Fst, Instr::Snd];
    let mut m1 = Machine::new();
    let v1 = m1.run(entry(chain), spine.clone()).unwrap();
    let mut m2 = Machine::new();
    let v2 = m2.run(entry(vec![Instr::Acc(2)]), spine).unwrap();
    assert_eq!(v1.to_string(), v2.to_string());
    assert!(m2.stats().steps < m1.stats().steps);
}

#[test]
fn acc_off_the_spine_is_a_type_mismatch() {
    let err = Machine::new()
        .run(entry(vec![Instr::Acc(1)]), Value::Int(5))
        .unwrap_err();
    assert!(matches!(
        err,
        MachineError::TypeMismatch { instr: "acc", .. }
    ));
    let shallow = Value::pair(Value::Int(1), Value::Int(2));
    let err = Machine::new()
        .run(entry(vec![Instr::Acc(3)]), shallow)
        .unwrap_err();
    assert!(matches!(
        err,
        MachineError::TypeMismatch { instr: "acc", .. }
    ));
}

#[test]
fn push_swap_cons_builds_pairs() {
    // ⟨id, quote 9⟩ applied to 5 = (5, 9)
    let out = run(
        vec![
            Instr::Push,
            Instr::Id,
            Instr::Swap,
            Instr::Quote(Value::Int(9)),
            Instr::ConsPair,
        ],
        Value::Int(5),
    );
    match out {
        Value::Pair(p) => {
            assert!(matches!(p.0, Value::Int(5)));
            assert!(matches!(p.1, Value::Int(9)));
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn cur_app_is_beta() {
    // (fn x => snd x) 7 — body `snd` receives (env, 7).
    let seg = CodeSeg::new();
    let body = seg.add_block(vec![Instr::Snd]);
    let prog = seg.entry(vec![
        Instr::Push,
        Instr::Cur(body),
        Instr::Swap,
        Instr::Quote(Value::Int(7)),
        Instr::ConsPair,
        Instr::App,
    ]);
    let out = Machine::new().run(prog, Value::Unit).unwrap();
    assert!(matches!(out, Value::Int(7)));
}

#[test]
fn branch_on_bool() {
    let seg = CodeSeg::new();
    let t = seg.add_block(vec![Instr::Quote(Value::Int(1))]);
    let e = seg.add_block(vec![Instr::Quote(Value::Int(2))]);
    let prog = seg.entry(vec![
        Instr::Push,
        Instr::Quote(Value::Bool(true)),
        Instr::ConsPair,
        Instr::Branch(t, e),
    ]);
    let out = Machine::new().run(prog, Value::Unit).unwrap();
    assert!(matches!(out, Value::Int(1)));
}

#[test]
fn emit_appends_to_arena() {
    // Start with (env=(), fresh arena); emit two instructions.
    let out = run(
        vec![
            Instr::Push,
            Instr::NewArena,
            Instr::ConsPair,
            Instr::Emit(Box::new(Instr::Fst)),
            Instr::Emit(Box::new(Instr::Snd)),
        ],
        Value::Unit,
    );
    let Value::Pair(p) = out else { panic!() };
    let Value::Arena(a) = &p.1 else { panic!() };
    assert_eq!(a.len(), 2);
}

#[test]
fn machine_arenas_freeze_into_the_program_segment() {
    let seg = CodeSeg::new();
    let prog = seg.entry(vec![
        Instr::Push,
        Instr::NewArena,
        Instr::ConsPair,
        Instr::Emit(Box::new(Instr::Fst)),
    ]);
    let out = Machine::new().run(prog, Value::Unit).unwrap();
    let Value::Pair(p) = out else { panic!() };
    let Value::Arena(a) = &p.1 else { panic!() };
    let frozen = a.freeze();
    assert!(
        CodeSeg::ptr_eq(&frozen.seg, &seg),
        "generated code lands in the tail of the executing segment"
    );
}

#[test]
fn lift_residualizes_the_early_value() {
    // (42, arena) --lift--> arena holds Quote(42).
    let out = run(
        vec![
            Instr::Quote(Value::Int(42)),
            Instr::Push,
            Instr::NewArena,
            Instr::ConsPair,
            Instr::LiftV,
        ],
        Value::Unit,
    );
    let Value::Pair(p) = out else { panic!() };
    let Value::Arena(a) = &p.1 else { panic!() };
    let frozen = a.freeze().to_vec();
    assert!(matches!(&frozen[0], Instr::Quote(Value::Int(42))));
}

#[test]
fn call_runs_generated_code() {
    // Build an arena with Quote(99), then call it.
    let out = run(
        vec![
            Instr::Quote(Value::Int(99)),
            Instr::Push,
            Instr::NewArena,
            Instr::ConsPair,
            Instr::LiftV,
            Instr::Call,
        ],
        Value::Unit,
    );
    assert!(matches!(out, Value::Int(99)));
}

#[test]
fn merge_inserts_cur() {
    // inner arena [snd]; outer (v=(), {}); merge → outer holds Cur([snd]).
    let out = run(
        vec![
            // build (inner_arena, ((), outer_arena))
            Instr::NewArena, // inner on top
            Instr::Push,
            Instr::Quote(Value::Unit),
            Instr::Push,
            Instr::NewArena,
            Instr::ConsPair, // ((), outer)
            Instr::ConsPair, // (inner, ((), outer))
            Instr::Merge,
        ],
        Value::Unit,
    );
    let Value::Pair(p) = out else { panic!() };
    let Value::Arena(outer) = &p.1 else { panic!() };
    assert!(matches!(&outer.freeze().to_vec()[0], Instr::Cur(_)));
}

#[test]
fn recclos_supports_recursion() {
    // f n = if n = 0 then 0 else f (n - 1); apply to 5 → 0.
    // Body env after app: ((env0, f), n).
    let seg = CodeSeg::new();
    let then_b = seg.add_block(vec![Instr::Quote(Value::Int(0))]);
    let else_b = seg.add_block(vec![
        // f (n - 1): build (f, n-1), app.
        Instr::Push,
        Instr::Fst,
        Instr::Snd, // f
        Instr::Swap,
        Instr::Push,
        Instr::Snd, // n
        Instr::Push,
        Instr::Quote(Value::Int(1)),
        Instr::ConsPair,
        Instr::Prim(PrimOp::Sub),
        Instr::Swap,
        Instr::Fst, // discard dup'd env... (cleanup)
        Instr::Quote(Value::Int(0)),
        Instr::Swap,
        Instr::ConsPair,
        Instr::Snd,      // n-1
        Instr::ConsPair, // (f, n-1)
        Instr::App,
    ]);
    let body = seg.add_block(vec![
        Instr::Push,
        Instr::Snd, // n
        Instr::Push,
        Instr::Quote(Value::Int(0)),
        Instr::ConsPair, // (n, 0)
        Instr::Prim(PrimOp::Eq),
        Instr::ConsPair, // (fullenv, bool)
        Instr::Branch(then_b, else_b),
    ]);
    let prog = seg.entry(vec![
        Instr::RecClos(Rc::new(vec![body])),
        Instr::Snd, // the closure
        Instr::Push,
        Instr::Swap,
        Instr::Quote(Value::Int(5)),
        Instr::ConsPair,
        Instr::App,
    ]);
    let out = Machine::new().run(prog, Value::Unit).unwrap();
    assert!(matches!(out, Value::Int(0)));
}

#[test]
fn switch_dispatches_and_binds() {
    let seg = CodeSeg::new();
    let arm0 = seg.add_block(vec![Instr::Quote(Value::Int(-1))]);
    let arm1 = seg.add_block(vec![Instr::Snd]);
    let table = SwitchTable {
        arms: vec![
            SwitchArm {
                tag: 0,
                bind: false,
                code: arm0,
            },
            SwitchArm {
                tag: 1,
                bind: true,
                code: arm1,
            },
        ],
        default: None,
    };
    let scrut = Value::Con(1, Some(Rc::new(Value::Int(7))));
    let prog = seg.entry(vec![
        Instr::Push,
        Instr::Quote(scrut),
        Instr::ConsPair,
        Instr::Switch(Rc::new(table)),
    ]);
    let out = Machine::new().run(prog, Value::Unit).unwrap();
    assert!(matches!(out, Value::Int(7)));
}

#[test]
fn switch_without_match_or_default_errors() {
    let table = SwitchTable {
        arms: vec![],
        default: None,
    };
    let scrut = Value::Con(9, None);
    let err = Machine::new()
        .run(
            entry(vec![
                Instr::Push,
                Instr::Quote(scrut),
                Instr::ConsPair,
                Instr::Switch(Rc::new(table)),
            ]),
            Value::Unit,
        )
        .unwrap_err();
    assert!(matches!(err, MachineError::NoMatchingArm { tag: 9 }));
}

#[test]
fn division_by_zero_errors() {
    let err = Machine::new()
        .run(
            entry(vec![Instr::Prim(PrimOp::Div)]),
            Value::pair(Value::Int(1), Value::Int(0)),
        )
        .unwrap_err();
    assert_eq!(err, MachineError::DivideByZero);
}

#[test]
fn fuel_limits_execution() {
    // An infinite loop: f x = f x.
    let seg = CodeSeg::new();
    let body = seg.add_block(vec![
        Instr::Push,
        Instr::Fst,
        Instr::Snd, // f
        Instr::Swap,
        Instr::Snd, // x
        Instr::ConsPair,
        Instr::App,
    ]);
    let prog = seg.entry(vec![
        Instr::RecClos(Rc::new(vec![body])),
        Instr::Snd,
        Instr::Push,
        Instr::Swap,
        Instr::Quote(Value::Unit),
        Instr::ConsPair,
        Instr::App,
    ]);
    let err = Machine::with_fuel(10_000)
        .run(prog, Value::Unit)
        .unwrap_err();
    assert!(matches!(err, MachineError::OutOfFuel { .. }));
}

#[test]
fn fuel_budget_is_per_run() {
    // 4 steps per run; 5 runs under an 8-step budget must all succeed
    // even though lifetime steps (20) exceed the budget.
    let mut m = Machine::with_fuel(8);
    let prog = entry(vec![
        Instr::Push,
        Instr::Quote(Value::Int(1)),
        Instr::ConsPair,
        Instr::Prim(PrimOp::Add),
    ]);
    for _ in 0..5 {
        let out = m.run(prog.clone(), Value::Int(1)).unwrap();
        assert!(matches!(out, Value::Int(2)));
    }
    assert_eq!(m.stats().steps, 20);
}

#[test]
fn env_cons_builds_frames_acc_indexes_them() {
    // let v0 = 10 in let v1 = 20 in v0 + v1 — flat encoding: each
    // extension is env_cons, each access a single Acc.
    let prog = entry(vec![
        Instr::Push,
        Instr::Quote(Value::Int(10)),
        Instr::EnvCons,
        Instr::Push,
        Instr::Quote(Value::Int(20)),
        Instr::EnvCons,
        Instr::Push,
        Instr::Acc(1),
        Instr::Swap,
        Instr::Acc(0),
        Instr::ConsPair,
        Instr::Prim(PrimOp::Add),
    ]);
    let mut m = Machine::new();
    let out = m.run(prog, Value::Unit).unwrap();
    assert!(matches!(out, Value::Int(30)));
}

#[test]
fn fst_snd_project_frames_like_the_spine_they_denote() {
    let env = Value::env_extend(Value::env_extend(Value::Unit, Value::Int(1)), Value::Int(2));
    let out = Machine::new()
        .run(entry(vec![Instr::Snd]), env.clone())
        .unwrap();
    assert!(matches!(out, Value::Int(2)));
    let out = Machine::new()
        .run(entry(vec![Instr::Fst, Instr::Snd]), env)
        .unwrap();
    assert!(matches!(out, Value::Int(1)));
}

#[test]
fn closure_over_frame_env_binds_a_pair_and_acc_walks_the_mixed_spine() {
    // cur captures a frame env; application always binds with a
    // genuine pair (the RTCG state must stay destructurable), so the
    // body sees Pair(frame, arg): Acc(0) is the argument and Acc(1)
    // resolves through the frame.
    let seg = CodeSeg::new();
    let body = seg.add_block(vec![
        Instr::Push,
        Instr::Acc(0),
        Instr::Swap,
        Instr::Acc(1),
        Instr::ConsPair,
        Instr::Prim(PrimOp::Sub),
    ]);
    let prog = seg.entry(vec![
        Instr::Push,
        Instr::Quote(Value::Int(100)),
        Instr::EnvCons,
        Instr::Cur(body),
        Instr::Push,
        Instr::Swap,
        Instr::Quote(Value::Int(7)),
        Instr::ConsPair,
        Instr::App,
    ]);
    let out = Machine::new().run(prog, Value::Unit).unwrap();
    // arg - binding = 7 - 100
    assert!(matches!(out, Value::Int(-93)));
}

#[test]
fn fuel_charges_fused_opcodes_their_component_count() {
    // `push; acc 3` (2 steps, 2+3+1... i.e. 1 + 4 fuel) vs the fused
    // `push_acc 3` (1 step, same 5 fuel): both must exhaust the same
    // budget at the same point.
    let deep = Value::pair(
        Value::pair(
            Value::pair(Value::pair(Value::Unit, Value::Int(1)), Value::Int(2)),
            Value::Int(3),
        ),
        Value::Int(4),
    );
    let plain = vec![Instr::Push, Instr::Acc(3), Instr::ConsPair];
    let fused = vec![Instr::PushAcc(3), Instr::ConsPair];
    // Plain: push(1) + acc3(4) + cons(1) = 6 fuel; fused: 5 + 1 = 6.
    for budget in [5u64, 6] {
        let mut m1 = Machine::with_fuel(budget);
        let r1 = m1.run(entry(plain.clone()), deep.clone());
        let mut m2 = Machine::with_fuel(budget);
        let r2 = m2.run(entry(fused.clone()), deep.clone());
        assert_eq!(
            r1.is_err(),
            r2.is_err(),
            "fuel {budget}: fused and plain disagree on exhaustion"
        );
    }
    // And the spine-walk equivalent (fst;fst;fst;snd) matches Acc(3).
    let chain = vec![
        Instr::Push,
        Instr::Fst,
        Instr::Fst,
        Instr::Fst,
        Instr::Snd,
        Instr::ConsPair,
    ];
    for budget in [5u64, 6] {
        let mut m1 = Machine::with_fuel(budget);
        let r1 = m1.run(entry(chain.clone()), deep.clone());
        let mut m2 = Machine::with_fuel(budget);
        let r2 = m2.run(entry(plain.clone()), deep.clone());
        assert_eq!(r1.is_err(), r2.is_err(), "fuel {budget}");
    }
}

#[test]
fn division_primitives_floor_toward_negative_infinity() {
    // SML: ~7 div 2 = ~4, ~7 mod 2 = 1; mod takes the divisor's sign.
    let run_op = |op, x, y| {
        Machine::new()
            .run(
                entry(vec![Instr::Prim(op)]),
                Value::pair(Value::Int(x), Value::Int(y)),
            )
            .unwrap()
    };
    assert!(matches!(run_op(PrimOp::Div, -7, 2), Value::Int(-4)));
    assert!(matches!(run_op(PrimOp::Mod, -7, 2), Value::Int(1)));
    assert!(matches!(run_op(PrimOp::Div, 7, -2), Value::Int(-4)));
    assert!(matches!(run_op(PrimOp::Mod, 7, -2), Value::Int(-1)));
    assert!(matches!(run_op(PrimOp::Div, -7, -2), Value::Int(3)));
    assert!(matches!(run_op(PrimOp::Mod, -7, -2), Value::Int(-1)));
}

#[test]
fn floor_helpers_satisfy_the_division_identity() {
    let cases = [
        (7, 2),
        (-7, 2),
        (7, -2),
        (-7, -2),
        (6, 3),
        (-6, 3),
        (0, 5),
        (i64::MAX, 7),
        (i64::MIN + 1, 7),
    ];
    for (x, y) in cases {
        let (q, r) = (floor_div(x, y), floor_mod(x, y));
        assert_eq!(y.wrapping_mul(q).wrapping_add(r), x, "x={x} y={y}");
        assert!(r == 0 || (r < 0) == (y < 0), "mod sign follows divisor");
    }
    // The one wrapping case, consistent with the other primitives.
    assert_eq!(floor_div(i64::MIN, -1), i64::MIN);
    assert_eq!(floor_mod(i64::MIN, -1), 0);
}

#[test]
fn merge_branch_reports_the_offending_operand() {
    // ((((), {P}), 42), 43): the then/else slots hold ints, not arenas.
    let gen = Value::pair(Value::Unit, Value::Arena(Arena::new()));
    let bad = Value::pair(Value::pair(gen, Value::Int(42)), Value::Int(43));
    let err = Machine::new()
        .run(entry(vec![Instr::MergeBranch]), bad)
        .unwrap_err();
    let MachineError::TypeMismatch {
        expected, found, ..
    } = err
    else {
        panic!("unexpected: {err:?}")
    };
    assert!(found.contains("42"), "names the bad operand, got {found:?}");
    assert!(
        expected.contains("then"),
        "says which slot, got {expected:?}"
    );
}

#[test]
fn repeated_calls_hit_the_freeze_cache() {
    let a = Arena::new();
    a.push(Instr::Quote(Value::Int(9)));
    let gen = Value::pair(Value::Unit, Value::Arena(a));
    let mut m = Machine::new();
    let out = m
        .run(
            entry(vec![
                Instr::Quote(gen.clone()),
                Instr::Call,
                Instr::Quote(gen.clone()),
                Instr::Call,
                Instr::Quote(gen),
                Instr::Call,
            ]),
            Value::Unit,
        )
        .unwrap();
    assert!(matches!(out, Value::Int(9)));
    let stats = m.stats();
    assert_eq!(stats.calls, 3);
    assert_eq!(stats.freezes, 1, "only the first call materializes code");
    assert_eq!(stats.freeze_hits, 2);
}

#[test]
fn growth_between_calls_invalidates_the_freeze_cache() {
    let a = Arena::new();
    a.push(Instr::Quote(Value::Int(1)));
    let gen = Value::pair(Value::Unit, Value::Arena(a.clone()));
    let mut m = Machine::new();
    let out = m
        .run(
            entry(vec![Instr::Quote(gen.clone()), Instr::Call]),
            Value::Unit,
        )
        .unwrap();
    assert!(matches!(out, Value::Int(1)));
    // The generator emits one more instruction; the next call must
    // execute the extended code, not the cached snapshot.
    a.push(Instr::Quote(Value::Int(2)));
    let out = m
        .run(entry(vec![Instr::Quote(gen), Instr::Call]), Value::Unit)
        .unwrap();
    assert!(matches!(out, Value::Int(2)));
    let stats = m.stats();
    assert_eq!(stats.freezes, 2);
    assert_eq!(stats.freeze_hits, 0);
}

#[test]
fn opcode_counts_are_optional_and_accurate() {
    let mut m = Machine::new();
    assert!(m.stats().opcodes.is_none(), "off by default");
    m.set_count_opcodes(true);
    m.run(
        entry(vec![
            Instr::Push,
            Instr::Quote(Value::Int(1)),
            Instr::ConsPair,
        ]),
        Value::Unit,
    )
    .unwrap();
    let stats = m.stats();
    let counts = stats.opcodes.unwrap();
    assert_eq!(counts.get("push"), 1);
    assert_eq!(counts.get("quote"), 1);
    assert_eq!(counts.get("cons"), 1);
    assert_eq!(counts.get("app"), 0);
    assert_eq!(counts.nonzero().map(|(_, c)| c).sum::<u64>(), stats.steps);
    m.reset_stats();
    assert_eq!(m.stats().steps, 0);
    assert!(m.stats().opcodes.is_some(), "counting survives reset");
}

#[test]
fn stats_delta_since_subtracts_counters() {
    let mut m = Machine::new();
    let prog = entry(vec![
        Instr::Push,
        Instr::Quote(Value::Int(1)),
        Instr::ConsPair,
    ]);
    m.run(prog.clone(), Value::Unit).unwrap();
    let before = m.stats();
    m.run(prog, Value::Unit).unwrap();
    let delta = m.stats().delta_since(&before);
    assert_eq!(delta.steps, 3);
    assert_eq!(delta.emitted, 0);
}

#[test]
fn stats_count_steps_and_emits() {
    let mut m = Machine::new();
    m.run(
        entry(vec![
            Instr::Push,
            Instr::NewArena,
            Instr::ConsPair,
            Instr::Emit(Box::new(Instr::Id)),
        ]),
        Value::Unit,
    )
    .unwrap();
    let stats = m.stats();
    assert_eq!(stats.steps, 4);
    assert_eq!(stats.emitted, 1);
    assert_eq!(stats.arenas, 1);
}

#[test]
fn print_accumulates_output() {
    let mut m = Machine::new();
    m.run(
        entry(vec![
            Instr::Quote(Value::str("hello ")),
            Instr::Prim(PrimOp::Print),
            Instr::Quote(Value::str("world")),
            Instr::Prim(PrimOp::Print),
        ]),
        Value::Unit,
    )
    .unwrap();
    assert_eq!(m.output(), "hello world");
}

#[test]
fn arrays_allocate_index_update() {
    let mut m = Machine::new();
    // array (3, 0); update (a, 1, 5); sub (a, 1)
    let out = m
        .run(
            entry(vec![
                Instr::Quote(Value::pair(Value::Int(3), Value::Int(0))),
                Instr::Prim(PrimOp::MkArray),
                Instr::Push,
                Instr::Push,
                Instr::Quote(Value::pair(Value::Int(1), Value::Int(5))),
                Instr::ConsPair, // (a, (1, 5))
                Instr::Prim(PrimOp::ArrUpdate),
                Instr::Quote(Value::Int(1)), // drop unit, keep index
                Instr::ConsPair,             // (a, 1)
                Instr::Prim(PrimOp::ArrSub),
            ]),
            Value::Unit,
        )
        .unwrap();
    assert!(matches!(out, Value::Int(5)));
}

#[test]
fn array_out_of_bounds_errors() {
    let err = Machine::new()
        .run(
            entry(vec![
                Instr::Quote(Value::pair(Value::Int(2), Value::Int(0))),
                Instr::Prim(PrimOp::MkArray),
                Instr::Push,
                Instr::Quote(Value::Int(5)),
                Instr::ConsPair,
                Instr::Prim(PrimOp::ArrSub),
            ]),
            Value::Unit,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        MachineError::IndexOutOfBounds { index: 5, len: 2 }
    ));
}

#[test]
fn equality_on_closures_is_an_error() {
    let f = Value::Closure(Rc::new(crate::value::Closure {
        env: Value::Unit,
        body: entry(vec![]),
    }));
    let err = Machine::new()
        .run(
            entry(vec![Instr::Prim(PrimOp::Eq)]),
            Value::pair(f.clone(), f),
        )
        .unwrap_err();
    assert_eq!(err, MachineError::EqualityUndefined);
}

#[test]
fn refs_assign_and_deref() {
    let out = run(
        vec![
            Instr::Quote(Value::Int(1)),
            Instr::Prim(PrimOp::Ref),
            Instr::Push,
            Instr::Push,
            Instr::Quote(Value::Int(42)),
            Instr::ConsPair,
            Instr::Prim(PrimOp::Assign),
            Instr::Swap, // bring ref back on top, drop unit below? (unit, ref)
            Instr::Prim(PrimOp::Deref),
        ],
        Value::Unit,
    );
    assert!(matches!(out, Value::Int(42)));
}

#[test]
fn tracing_records_mnemonics() {
    let mut m = Machine::new();
    m.set_trace(2);
    m.run(
        entry(vec![
            Instr::Push,
            Instr::Quote(Value::Int(1)),
            Instr::ConsPair,
        ]),
        Value::Unit,
    )
    .unwrap();
    let t = m.trace().unwrap();
    assert_eq!(t.mnemonics(), vec!["push", "quote"], "bounded at limit");
}

#[test]
fn tracing_records_block_and_pc() {
    let seg = CodeSeg::new();
    let body = seg.add_block(vec![Instr::Snd]);
    let prog = seg.entry(vec![
        Instr::Push,
        Instr::Cur(body),
        Instr::Swap,
        Instr::Quote(Value::Int(7)),
        Instr::ConsPair,
        Instr::App,
    ]);
    let mut m = Machine::new();
    m.set_trace(16);
    m.run(prog.clone(), Value::Unit).unwrap();
    let t = m.trace().unwrap();
    // The entry block is block 1 (the body was added first), and the
    // applied closure body runs as block 0 at pc 0.
    assert_eq!(t.entries[0].block, prog.block.0);
    assert_eq!(t.entries[0].pc, 0);
    assert_eq!(t.entries[1].pc, 1);
    let last = t.entries.last().unwrap();
    assert_eq!((last.block, last.pc, last.mnemonic), (body.0, 0, "snd"));
}

#[test]
fn machine_errors_display() {
    assert!(MachineError::DivideByZero.to_string().contains("zero"));
    assert!(MachineError::Fail("m".into()).to_string().contains('m'));
}

#[test]
fn fused_opcodes_agree_with_their_pairs_and_count_as_fused() {
    // Each fused opcode computes exactly what the pair it replaces
    // computes, in one reduction step, and bumps `Stats::fused`.
    let spine = Value::pair(
        Value::pair(Value::pair(Value::Unit, Value::Int(1)), Value::Int(2)),
        Value::Int(3),
    );
    let cases: Vec<(Vec<Instr>, Vec<Instr>, Value)> = vec![
        (
            vec![
                Instr::Push,
                Instr::Acc(1),
                Instr::Swap,
                Instr::Snd,
                Instr::ConsPair,
            ],
            vec![Instr::PushAcc(1), Instr::Swap, Instr::Snd, Instr::ConsPair],
            spine.clone(),
        ),
        (
            vec![
                Instr::Push,
                Instr::Swap,
                Instr::Quote(Value::Int(9)),
                Instr::ConsPair,
            ],
            vec![Instr::Push, Instr::Swap, Instr::QuoteCons(Value::Int(9))],
            spine.clone(),
        ),
        (
            vec![
                Instr::Push,
                Instr::Snd,
                Instr::Swap,
                Instr::ConsPair,
                Instr::Fst,
            ],
            vec![Instr::PushAcc(0), Instr::SwapCons, Instr::Fst],
            spine.clone(),
        ),
        (
            vec![Instr::Push, Instr::Quote(Value::Int(4)), Instr::ConsPair],
            vec![Instr::PushQuote(Value::Int(4)), Instr::ConsPair],
            spine.clone(),
        ),
    ];
    for (plain, fused, input) in cases {
        let mut m1 = Machine::new();
        let v1 = m1.run(entry(plain.clone()), input.clone()).unwrap();
        let mut m2 = Machine::new();
        let v2 = m2.run(entry(fused.clone()), input).unwrap();
        assert_eq!(v1.to_string(), v2.to_string(), "{plain:?} vs {fused:?}");
        assert_eq!(m1.stats().fused, 0, "plain code dispatches no fused ops");
        assert!(m2.stats().fused > 0, "{fused:?}");
        assert!(m2.stats().steps < m1.stats().steps, "{fused:?}");
    }
}

#[test]
fn fused_application_transfers_like_cons_app() {
    // (fn x => snd x) 7 via ConsApp and via AccApp.
    let seg = CodeSeg::new();
    let body = seg.add_block(vec![Instr::Snd]);
    let prog = seg.entry(vec![
        Instr::Push,
        Instr::Cur(body),
        Instr::Swap,
        Instr::Quote(Value::Int(7)),
        Instr::ConsApp,
    ]);
    let mut m = Machine::new();
    let out = m.run(prog, Value::Unit).unwrap();
    assert!(matches!(out, Value::Int(7)));
    assert_eq!(m.stats().fused, 1);

    // AccApp(0): env is (_, (closure, arg)); snd; app in one step.
    let seg = CodeSeg::new();
    let body = seg.add_block(vec![Instr::Snd]);
    let mk = seg.entry(vec![Instr::Cur(body)]);
    let clos = Machine::new().run(mk, Value::Unit).unwrap();
    let env = Value::pair(Value::Unit, Value::pair(clos, Value::Int(11)));
    let seg2 = CodeSeg::new();
    let prog = seg2.entry(vec![Instr::AccApp(0)]);
    let mut m = Machine::new();
    let out = m.run(prog, env).unwrap();
    assert!(matches!(out, Value::Int(11)));
    assert_eq!(m.stats().fused, 1);
}

#[test]
fn fuse_flag_fuses_frozen_generated_code() {
    // A generator emits the stereotyped push/quote/cons/add sequence;
    // with `set_fuse` the freeze rewrites it so the call dispatches
    // fused opcodes — and the unfused machine agrees on the value.
    let a = Arena::new();
    for _ in 0..10 {
        a.push(Instr::Push);
        a.push(Instr::Quote(Value::Int(1)));
        a.push(Instr::ConsPair);
        a.push(Instr::Prim(PrimOp::Add));
    }
    let gen = Value::pair(Value::Int(0), Value::Arena(a));
    let prog = entry(vec![Instr::Call]);

    let mut plain = Machine::new();
    let v1 = plain.run(prog.clone(), gen.clone()).unwrap();
    assert_eq!(plain.stats().fused, 0);

    let mut fusing = Machine::new();
    fusing.set_fuse(true);
    let v2 = fusing.run(prog.clone(), gen.clone()).unwrap();
    assert_eq!(v1.to_string(), v2.to_string());
    assert!(fusing.stats().fused > 0, "frozen code was fused");
    assert!(
        fusing.stats().steps < plain.stats().steps,
        "fusion reduces the step count: {} vs {}",
        fusing.stats().steps,
        plain.stats().steps
    );

    // The two flavors freeze into distinct cache slots: running the
    // same generator on the plain machine again is still unfused.
    let mut plain2 = Machine::new();
    let v3 = plain2.run(prog, gen).unwrap();
    assert_eq!(v1.to_string(), v3.to_string());
    assert_eq!(plain2.stats().fused, 0, "fuse slot does not leak");
}

#[test]
fn pair_profile_counts_adjacent_dispatches() {
    let mut m = Machine::new();
    assert!(m.pair_profile().is_none(), "off by default");
    m.set_profile_pairs(true);
    m.run(
        entry(vec![
            Instr::Push,
            Instr::Quote(Value::Int(1)),
            Instr::ConsPair,
        ]),
        Value::Unit,
    )
    .unwrap();
    let hist = m.pair_profile().unwrap();
    let op = |name: &str| OPCODE_NAMES.iter().position(|n| *n == name).unwrap();
    assert_eq!(hist[op("push")][op("quote")], 1);
    assert_eq!(hist[op("quote")][op("cons")], 1);
    assert_eq!(hist[op("cons")][op("push")], 0, "no wraparound");
    let total: u64 = hist.iter().flatten().sum();
    assert_eq!(total, 2, "n instructions -> n-1 adjacent pairs");
}

// ------------------------------------------------------------------
// Thread-coded native tier (`Machine::set_native`).
// ------------------------------------------------------------------

/// An RTCG workload exercising both static and frozen code: a generator
/// that emits an add chain, called three times.
fn rtcg_program() -> (CodeRef, Value) {
    let a = Arena::new();
    for _ in 0..8 {
        a.push(Instr::Push);
        a.push(Instr::Quote(Value::Int(2)));
        a.push(Instr::ConsPair);
        a.push(Instr::Prim(PrimOp::Add));
    }
    let gen = Value::pair(Value::Int(1), Value::Arena(a));
    let prog = entry(vec![
        Instr::Call,
        Instr::Quote(gen.clone()),
        Instr::Call,
        Instr::Quote(gen.clone()),
        Instr::Call,
    ]);
    (prog, gen)
}

#[test]
fn native_tier_agrees_with_the_interpreter() {
    let (prog, gen) = rtcg_program();
    let mut interp = Machine::new();
    let v1 = interp.run(prog.clone(), gen.clone()).unwrap();
    let mut native = Machine::new();
    native.set_native(true);
    let v2 = native.run(prog, gen).unwrap();
    assert_eq!(v1.to_string(), v2.to_string());
    assert_eq!(
        interp.stats().steps,
        native.stats().steps,
        "same reduction steps in both tiers"
    );
    assert_eq!(interp.stats().emitted, native.stats().emitted);
    assert_eq!(interp.stats().calls, native.stats().calls);
}

#[test]
fn native_tier_traces_and_counts_like_the_interpreter() {
    // Fresh program per machine: the two tiers freeze through different
    // cache slots, so sharing one arena would give the second machine's
    // frozen code a later block number (same contents, different id).
    let (prog, gen) = rtcg_program();
    let mut interp = Machine::new();
    interp.set_trace(64);
    interp.set_count_opcodes(true);
    interp.run(prog, gen).unwrap();
    let (prog, gen) = rtcg_program();
    let mut native = Machine::new();
    native.set_native(true);
    native.set_trace(64);
    native.set_count_opcodes(true);
    native.run(prog, gen).unwrap();
    assert_eq!(
        interp.trace().unwrap().entries,
        native.trace().unwrap().entries,
        "identical (block, pc, mnemonic) trace"
    );
    assert_eq!(interp.stats().opcodes, native.stats().opcodes);
}

#[test]
fn native_tier_exhausts_fuel_on_the_same_step() {
    let (prog, gen) = rtcg_program();
    // Find the interpreter's total fuel, then check every budget around
    // the boundary agrees across tiers.
    let mut probe = Machine::new();
    probe.run(prog.clone(), gen.clone()).unwrap();
    let total = probe.stats().steps; // all ops here charge fuel 1
    for budget in [total - 1, total, total + 1] {
        let mut interp = Machine::with_fuel(budget);
        let r1 = interp.run(prog.clone(), gen.clone());
        let mut native = Machine::with_fuel(budget);
        native.set_native(true);
        let r2 = native.run(prog.clone(), gen.clone());
        assert_eq!(r1.is_err(), r2.is_err(), "budget {budget}");
    }
}

#[test]
fn native_freeze_lowers_eagerly_and_hits_its_own_cache_slot() {
    let a = Arena::new();
    a.push(Instr::Quote(Value::Int(9)));
    let gen = Value::pair(Value::Unit, Value::Arena(a));
    let prog = entry(vec![
        Instr::Quote(gen.clone()),
        Instr::Call,
        Instr::Quote(gen.clone()),
        Instr::Call,
    ]);
    let mut native = Machine::new();
    native.set_native(true);
    let out = native.run(prog.clone(), Value::Unit).unwrap();
    assert!(matches!(out, Value::Int(9)));
    assert_eq!(native.stats().freezes, 1, "second call hits the cache");
    assert_eq!(native.stats().freeze_hits, 1);
    // A plain machine sharing the arena freezes into its own slot.
    let mut plain = Machine::new();
    plain.run(prog, Value::Unit).unwrap();
    assert_eq!(plain.stats().freezes, 1, "native slot does not leak");
}

#[test]
fn native_tier_reports_errors_like_the_interpreter() {
    let err = |native: bool| {
        let mut m = Machine::new();
        m.set_native(native);
        m.run(entry(vec![Instr::Fst]), Value::Int(3)).unwrap_err()
    };
    assert_eq!(err(false), err(true));
}

// --- Adaptive tier controller ---

fn tier_policy(promote_after: u64, use_native: bool) -> TierPolicy {
    TierPolicy {
        promote_after,
        fuse_top_k: crate::opt::FUSE_RULE_COUNT,
        use_native,
    }
}

/// `(entry, plain steps per run)` for a little apply-a-closure program:
/// `(fn x => x + 1) 5`.
fn apply_program() -> (CodeRef, Value) {
    let seg = CodeSeg::new();
    let body = seg.add_block(vec![
        Instr::Push,
        Instr::Snd,
        Instr::Swap,
        Instr::Quote(Value::Int(1)),
        Instr::ConsPair,
        Instr::Prim(PrimOp::Add),
    ]);
    let code = seg.entry(vec![
        Instr::Push,
        Instr::Cur(body),
        Instr::Swap,
        Instr::Quote(Value::Int(5)),
        Instr::ConsPair,
        Instr::App,
    ]);
    (code, Value::Unit)
}

#[test]
fn adaptive_promotion_is_invisible_in_steps_and_verdicts() {
    let (code, input) = apply_program();
    let mut plain = Machine::new();
    let mut tiered = Machine::new();
    tiered.set_tier_policy(Some(tier_policy(2, true)), true);
    for round in 0..6 {
        let before_p = plain.stats();
        let before_t = tiered.stats();
        let vp = plain.run(code.clone(), input.clone()).unwrap();
        let vt = tiered.run(code.clone(), input.clone()).unwrap();
        assert_eq!(vp.to_string(), vt.to_string(), "round {round}");
        assert_eq!(
            plain.stats().delta_since(&before_p).steps,
            tiered.stats().delta_since(&before_t).steps,
            "round {round}: promotion must not change the step count"
        );
    }
    let stats = tiered.stats();
    assert!(stats.promotions >= 2, "entry and body promoted: {stats:?}");
    assert_eq!(
        stats.tier_steps.iter().sum::<u64>(),
        stats.steps,
        "tier steps partition the total"
    );
    assert!(
        stats.tier_steps[2] > 0,
        "hot rounds ran on the native tier: {stats:?}"
    );
    assert!(stats.tier_steps[0] > 0, "cold rounds ran interpreted");
}

#[test]
fn adaptive_promote_after_zero_promotes_before_first_execution() {
    let (code, input) = apply_program();
    let mut plain = Machine::new();
    let vp = plain.run(code.clone(), input.clone()).unwrap();
    let mut tiered = Machine::new();
    tiered.set_tier_policy(Some(tier_policy(0, false)), true);
    let vt = tiered.run(code.clone(), input.clone()).unwrap();
    assert_eq!(vp.to_string(), vt.to_string());
    assert_eq!(plain.stats().steps, tiered.stats().steps);
    assert!(tiered.stats().promotions >= 2);
    assert_eq!(
        tiered.stats().tier_steps[0],
        0,
        "nothing ran cold: {:?}",
        tiered.stats()
    );
    assert!(tiered.stats().fused > 0, "fused dispatches actually ran");
}

#[test]
fn adaptive_fuel_exhaustion_matches_plain_at_every_budget() {
    let (code, input) = apply_program();
    let mut full = Machine::new();
    full.run(code.clone(), input.clone()).unwrap();
    let total = full.stats().steps;
    for budget in 0..=total {
        let mut p = Machine::with_fuel(budget);
        let rp = p.run(code.clone(), input.clone());
        let mut t = Machine::with_fuel(budget);
        t.set_tier_policy(Some(tier_policy(0, true)), true);
        let rt = t.run(code.clone(), input.clone());
        assert_eq!(rp.is_err(), rt.is_err(), "budget {budget}");
        assert_eq!(
            p.stats().steps,
            t.stats().steps,
            "budget {budget}: abort point must be step-identical"
        );
        if let (Err(ep), Err(et)) = (rp, rt) {
            assert_eq!(ep, et, "budget {budget}");
        }
    }
}

#[test]
fn adaptive_matches_an_indexed_baseline_too() {
    // Code as an indexed-env compiler would emit it: `acc` is itself one
    // compiled instruction, so fusing `push; acc` must charge 2 — not
    // the pair-spine n + 2.
    let seg = CodeSeg::new();
    let code = seg.entry(vec![
        Instr::Push,
        Instr::Acc(1),
        Instr::Swap,
        Instr::Acc(0),
        Instr::ConsPair,
        Instr::Prim(PrimOp::Add),
    ]);
    let spine = Value::pair(Value::pair(Value::Unit, Value::Int(3)), Value::Int(4));
    let mut plain = Machine::new();
    let vp = plain.run(code.clone(), spine.clone()).unwrap();
    let mut tiered = Machine::new();
    tiered.set_tier_policy(Some(tier_policy(0, true)), false);
    let vt = tiered.run(code.clone(), spine.clone()).unwrap();
    assert_eq!(vp.to_string(), vt.to_string());
    assert_eq!(vp.to_string(), "7");
    assert_eq!(plain.stats().steps, tiered.stats().steps);
    assert!(tiered.stats().promotions > 0);
    // And fuel exhaustion agrees at every budget (fuel stays in
    // pair-spine units in both machines).
    for budget in 0..plain.stats().steps + 2 {
        let mut p = Machine::with_fuel(budget);
        let rp = p.run(code.clone(), spine.clone());
        let mut t = Machine::with_fuel(budget);
        t.set_tier_policy(Some(tier_policy(0, true)), false);
        let rt = t.run(code.clone(), spine.clone());
        assert_eq!(rp.is_err(), rt.is_err(), "budget {budget}");
        assert_eq!(p.stats().steps, t.stats().steps, "budget {budget}");
    }
}

#[test]
fn tracing_suppresses_promotion_and_observes_the_cold_rendering() {
    let (code, input) = apply_program();
    let mut plain = Machine::new();
    plain.set_trace(64);
    plain.run(code.clone(), input.clone()).unwrap();
    let want = plain.trace().unwrap().mnemonics();
    let mut tiered = Machine::new();
    tiered.set_tier_policy(Some(tier_policy(0, true)), true);
    tiered.set_trace(64);
    for _ in 0..3 {
        tiered.run(code.clone(), input.clone()).unwrap();
    }
    assert_eq!(tiered.stats().promotions, 0, "no promotion while tracing");
    assert_eq!(
        tiered.trace().unwrap().mnemonics()[..want.len()],
        want[..],
        "trace shows the cold rendering"
    );
}

#[test]
fn adaptive_promotes_generated_code_frozen_by_call() {
    let a = Arena::new();
    a.push(Instr::Quote(Value::Int(9)));
    let gen = Value::pair(Value::Unit, Value::Arena(a));
    let prog = entry(vec![Instr::Quote(gen), Instr::Call]);
    let mut plain = Machine::new();
    let vp = plain.run(prog.clone(), Value::Unit).unwrap();
    let plain_steps = plain.stats().steps;
    let mut tiered = Machine::new();
    tiered.set_tier_policy(Some(tier_policy(1, true)), true);
    for round in 0..4 {
        let before = tiered.stats();
        let vt = tiered.run(prog.clone(), Value::Unit).unwrap();
        assert_eq!(vp.to_string(), vt.to_string(), "round {round}");
        assert_eq!(
            tiered.stats().delta_since(&before).steps,
            plain_steps,
            "round {round}"
        );
    }
    assert!(tiered.stats().promotions > 0);
    // An adaptive machine freezes plainly (flavor 0): it shares the
    // plain machine's snapshot slot, so every call here is a hit and
    // the generated block earns its tier at run time instead.
    assert_eq!(tiered.stats().freezes, 0);
    assert_eq!(tiered.stats().freeze_hits, 4);
}

#[test]
fn refreezes_count_stale_snapshot_rerenders() {
    let a = Arena::new();
    a.push(Instr::Quote(Value::Int(1)));
    let gen = Value::pair(Value::Unit, Value::Arena(a.clone()));
    let prog = entry(vec![Instr::Quote(gen), Instr::Call]);
    let mut m = Machine::new();
    let v = m.run(prog.clone(), Value::Unit).unwrap();
    assert_eq!(v.to_string(), "1");
    assert_eq!(m.stats().freezes, 1);
    assert_eq!(m.stats().refreezes, 0, "first freeze is not a refreeze");
    // The generator keeps emitting: the next freeze re-renders.
    a.push(Instr::Prim(PrimOp::Neg));
    let v = m.run(prog, Value::Unit).unwrap();
    assert_eq!(v.to_string(), "-1");
    assert_eq!(m.stats().freezes, 2);
    assert_eq!(m.stats().refreezes, 1);
}
