//! The mutable execution state shared by every opcode's step function.

use super::{MachineError, Stats};
use crate::value::{Arena, Value};
use std::rc::Rc;

/// The state a straight-line opcode operates on: the value stack, the
/// accumulated statistics, the per-run fuel account, and the `print`
/// output buffer. Control (the frame stack) and the dispatch-policy flags
/// stay on [`super::Machine`] — no straight-line opcode touches them — so
/// the per-opcode step functions in [`super::core`], [`super::env`], and
/// [`super::fused`] can be called both from the interpreter's dispatch
/// table and from the thread-coded native tier (`crate::native`) without
/// borrowing the whole machine.
#[derive(Debug, Default)]
pub(crate) struct MachineState {
    /// The value stack `S`.
    pub(crate) stack: Vec<Value>,
    /// Execution statistics, the paper's measurement surface.
    pub(crate) stats: Stats,
    /// The per-run step budget, if any.
    pub(crate) fuel: Option<u64>,
    /// Fuel units spent by the current `run` (the budget is per run, not
    /// the machine's lifetime total). Distinct from `stats.steps`: a
    /// fused superinstruction counts one *step* but charges fuel for
    /// every component it replaced, so a fuel budget bounds the same
    /// amount of work in every execution mode (`indexed_env`, `fuse`,
    /// flat environments, the native tier) — no dispatch encoding can be
    /// used to smuggle extra work past a per-run limit.
    pub(crate) fuel_spent: u64,
    /// Everything `print` has written.
    pub(crate) output: String,
}

/// A [`MachineError::TypeMismatch`] naming the offending instruction and
/// operand.
pub(crate) fn mismatch(instr: &'static str, expected: &'static str, found: &Value) -> MachineError {
    MachineError::TypeMismatch {
        instr,
        expected,
        found: found.to_string(),
    }
}

impl MachineState {
    /// The top of the stack, mutable.
    pub(crate) fn top(&mut self, instr: &'static str) -> Result<&mut Value, MachineError> {
        self.stack
            .last_mut()
            .ok_or(MachineError::StackUnderflow { instr })
    }

    /// Pops the top of the stack.
    pub(crate) fn pop(&mut self, instr: &'static str) -> Result<Value, MachineError> {
        self.stack
            .pop()
            .ok_or(MachineError::StackUnderflow { instr })
    }

    /// Pops the top of the stack, which must be a pair.
    pub(crate) fn pop_pair(&mut self, instr: &'static str) -> Result<(Value, Value), MachineError> {
        let v = self.pop(instr)?;
        match v {
            Value::Pair(p) => match Rc::try_unwrap(p) {
                Ok(pair) => Ok(pair),
                Err(p) => Ok((p.0.clone(), p.1.clone())),
            },
            other => Err(mismatch(instr, "a pair", &other)),
        }
    }

    /// Destructures `(v, arena)` from the top of stack, leaving nothing.
    pub(crate) fn pop_gen_state(
        &mut self,
        instr: &'static str,
    ) -> Result<(Value, Rc<Arena>), MachineError> {
        let (v, a) = self.pop_pair(instr)?;
        match a {
            Value::Arena(a) => Ok((v, a)),
            other => Err(mismatch(instr, "(value, arena)", &other)),
        }
    }

    /// Raises the stack high-water mark if the stack has grown past it.
    #[inline]
    pub(crate) fn note_stack_depth(&mut self) {
        if self.stack.len() > self.stats.max_stack {
            self.stats.max_stack = self.stack.len();
        }
    }
}
