//! The control-transfer and segment-mutating instructions: application,
//! branching, `call`, and the merge family. These push control frames or
//! freeze arena contents into a segment, so the dispatch loop must not
//! run them under its instruction borrow — it saves the pc, releases the
//! borrow, and calls one of these with the whole [`Machine`] (control
//! stack and freeze cache included). `seg` is always the segment of the
//! frame the instruction came from: block operands are relative to it.

use super::state::mismatch;
use super::{Machine, MachineError};
use crate::instr::{Instr, MergeSwitchSpec, SwitchArm, SwitchTable};
use crate::seg::{BlockId, CodeRef, CodeSeg};
use crate::value::Value;
use std::rc::Rc;

/// `app`: pop the `(closure, argument)` pair and enter the closure body.
pub(crate) fn app(m: &mut Machine) -> Result<(), MachineError> {
    let (f, arg) = m.state.pop_pair("app")?;
    apply_to(m, f, arg)
}

/// Fused `cons; app`: apply without materializing the (closure,
/// argument) pair on the stack.
pub(crate) fn cons_app(m: &mut Machine) -> Result<(), MachineError> {
    let arg = m.state.pop("cons_app")?;
    let f = m.state.pop("cons_app")?;
    m.state.stats.fused += 1;
    apply_to(m, f, arg)
}

/// Fused `acc n; app` (`snd; app` when n = 0): fetch the (closure,
/// argument) pair from the environment and apply it in one dispatch.
pub(crate) fn acc_app(m: &mut Machine, n: usize) -> Result<(), MachineError> {
    let v = m.state.pop("acc_app")?;
    let w = v
        .env_acc(n)
        .ok_or_else(|| mismatch("acc_app", "an environment spine", &v))?;
    let Value::Pair(p) = w else {
        return Err(mismatch("acc_app", "a (closure, argument) pair", &w));
    };
    let (f, arg) = match Rc::try_unwrap(p) {
        Ok(pair) => pair,
        Err(p) => (p.0.clone(), p.1.clone()),
    };
    m.state.stats.fused += 1;
    apply_to(m, f, arg)
}

/// Enters `f` applied to `arg` (the shared tail of every application
/// form).
pub(crate) fn apply_to(m: &mut Machine, f: Value, arg: Value) -> Result<(), MachineError> {
    match f {
        Value::Closure(c) => {
            // Always a genuine pair, even over a frame environment:
            // generating extensions are applied to arenas and their
            // state `(lenv, A)` is destructured as a literal pair by
            // the RTCG instructions. Frames are built only by
            // `env_cons`; `acc` walks mixed pair/frame spines.
            m.state.stack.push(Value::pair(c.env.clone(), arg));
            m.enter(c.body.clone());
            Ok(())
        }
        Value::RecClosure { group, index } => {
            // env' = ((env, f1), ..., fn), then (env', arg).
            let mut acc = group.env.clone();
            for i in 0..group.bodies.len() {
                acc = Value::pair(
                    acc,
                    Value::RecClosure {
                        group: group.clone(),
                        index: i as u32,
                    },
                );
            }
            m.state.stack.push(Value::pair(acc, arg));
            m.enter(CodeRef {
                seg: group.seg.clone(),
                block: group.bodies[index as usize],
            });
            Ok(())
        }
        other => Err(mismatch("app", "a closure", &other)),
    }
}

/// `branch L1 L2`: pop `(env, bool)`, push `env`, enter the chosen block.
pub(crate) fn branch(
    m: &mut Machine,
    seg: &CodeSeg,
    then_b: BlockId,
    else_b: BlockId,
) -> Result<(), MachineError> {
    let (env, b) = m.state.pop_pair("branch")?;
    let Value::Bool(b) = b else {
        return Err(mismatch("branch", "(env, bool)", &b));
    };
    m.state.stack.push(env);
    m.enter(CodeRef {
        seg: seg.clone(),
        block: if b { then_b } else { else_b },
    });
    Ok(())
}

/// `switch`: pop `(env, constructor)`, dispatch on the tag, optionally
/// binding the payload.
pub(crate) fn switch(
    m: &mut Machine,
    seg: &CodeSeg,
    table: &SwitchTable,
) -> Result<(), MachineError> {
    let (env, scrut) = m.state.pop_pair("switch")?;
    let Value::Con(tag, payload) = scrut else {
        return Err(mismatch("switch", "(env, constructor)", &scrut));
    };
    let arm = table.arms.iter().find(|a| a.tag == tag);
    match arm {
        Some(SwitchArm { bind, code, .. }) => {
            if *bind {
                let payload = payload.map(|p| (*p).clone()).unwrap_or(Value::Unit);
                m.state.stack.push(Value::pair(env, payload));
            } else {
                m.state.stack.push(env);
            }
            m.enter(CodeRef {
                seg: seg.clone(),
                block: *code,
            });
            Ok(())
        }
        None => match table.default {
            Some(code) => {
                m.state.stack.push(env);
                m.enter(CodeRef {
                    seg: seg.clone(),
                    block: code,
                });
                Ok(())
            }
            None => Err(MachineError::NoMatchingArm { tag }),
        },
    }
}

/// `call`: freeze the arena in the top `(v, {P})` and enter the frozen
/// block.
pub(crate) fn call(m: &mut Machine) -> Result<(), MachineError> {
    let (v, arena) = m.state.pop_gen_state("call")?;
    m.state.stack.push(v);
    m.state.stats.calls += 1;
    let code = m.freeze(&arena);
    m.enter(code);
    Ok(())
}

/// `merge`: freeze the inner arena and append `Cur` of it to the outer
/// one.
pub(crate) fn merge(m: &mut Machine) -> Result<(), MachineError> {
    let (first, second) = m.state.pop_pair("merge")?;
    let Value::Arena(inner) = first else {
        return Err(mismatch("merge", "(arena, (value, arena))", &first));
    };
    let (v, outer) = match second {
        Value::Pair(p) => match (&p.0, &p.1) {
            (v, Value::Arena(outer)) => (v.clone(), outer.clone()),
            _ => {
                return Err(mismatch(
                    "merge",
                    "(arena, (value, arena))",
                    &Value::Pair(p.clone()),
                ))
            }
        },
        other => return Err(mismatch("merge", "(arena, (value, arena))", &other)),
    };
    let body = m.freeze(&inner);
    let block = outer.seg().import_block(&body.seg, body.block);
    outer.push(Instr::Cur(block));
    m.state.stats.emitted += 1;
    m.state.stack.push(Value::pair(v, Value::Arena(outer)));
    Ok(())
}

/// `merge_branch`: freeze the then/else arenas and append `Branch` to the
/// outer one. Stack shape: `(((v,{P}), {A_then}), {A_else})`.
pub(crate) fn merge_branch(m: &mut Machine) -> Result<(), MachineError> {
    let (rest, else_a) = m.state.pop_pair("merge_branch")?;
    let Value::Pair(rest) = rest else {
        return Err(mismatch("merge_branch", "nested arenas", &rest));
    };
    let (gen_state, then_a) = (rest.0.clone(), rest.1.clone());
    // Name the operand that is actually wrong, not the (usually
    // well-formed) generation state beneath it.
    let Value::Arena(then_a) = then_a else {
        return Err(mismatch(
            "merge_branch",
            "an arena for the then-branch",
            &then_a,
        ));
    };
    let Value::Arena(else_a) = else_a else {
        return Err(mismatch(
            "merge_branch",
            "an arena for the else-branch",
            &else_a,
        ));
    };
    let Value::Pair(gp) = gen_state else {
        return Err(mismatch("merge_branch", "(value, arena)", &gen_state));
    };
    let (v, outer) = (gp.0.clone(), gp.1.clone());
    let Value::Arena(outer) = outer else {
        return Err(mismatch("merge_branch", "(value, arena)", &outer));
    };
    let (then_c, else_c) = (m.freeze(&then_a), m.freeze(&else_a));
    let then_b = outer.seg().import_block(&then_c.seg, then_c.block);
    let else_b = outer.seg().import_block(&else_c.seg, else_c.block);
    outer.push(Instr::Branch(then_b, else_b));
    m.state.stats.emitted += 1;
    m.state.stack.push(Value::pair(v, Value::Arena(outer)));
    Ok(())
}

/// `merge_switch`: pop the per-arm arenas (default last), freeze each,
/// and append `Switch` to the outer arena.
pub(crate) fn merge_switch(m: &mut Machine, spec: &MergeSwitchSpec) -> Result<(), MachineError> {
    let count = spec.arms.len() + usize::from(spec.default);
    let mut arenas = Vec::with_capacity(count);
    let mut cur = m.state.pop("merge_switch")?;
    for _ in 0..count {
        let Value::Pair(p) = cur else {
            return Err(mismatch("merge_switch", "stacked arenas", &cur));
        };
        let (rest, a) = (p.0.clone(), p.1.clone());
        let Value::Arena(a) = a else {
            return Err(mismatch("merge_switch", "an arena", &a));
        };
        arenas.push(a);
        cur = rest;
    }
    arenas.reverse(); // now in arm order, default last
    let Value::Pair(gp) = cur else {
        return Err(mismatch("merge_switch", "(value, arena)", &cur));
    };
    let (v, outer) = (gp.0.clone(), gp.1.clone());
    let Value::Arena(outer) = outer else {
        return Err(mismatch("merge_switch", "(value, arena)", &outer));
    };
    let default = if spec.default {
        let a = arenas.pop().expect("default arena present");
        let c = m.freeze(&a);
        Some(outer.seg().import_block(&c.seg, c.block))
    } else {
        None
    };
    let arms = spec
        .arms
        .iter()
        .zip(arenas)
        .map(|(&(tag, bind), a)| {
            let c = m.freeze(&a);
            SwitchArm {
                tag,
                bind,
                code: outer.seg().import_block(&c.seg, c.block),
            }
        })
        .collect();
    outer.push(Instr::Switch(Rc::new(SwitchTable { arms, default })));
    m.state.stats.emitted += 1;
    m.state.stack.push(Value::pair(v, Value::Arena(outer)));
    Ok(())
}

/// `merge_rec n`: pop `n` body arenas, freeze each, and append `RecClos`
/// to the outer arena.
pub(crate) fn merge_rec(m: &mut Machine, n: usize) -> Result<(), MachineError> {
    let mut bodies_rev = Vec::with_capacity(n);
    let mut cur = m.state.pop("merge_rec")?;
    for _ in 0..n {
        let Value::Pair(p) = cur else {
            return Err(mismatch("merge_rec", "stacked arenas", &cur));
        };
        let (rest, a) = (p.0.clone(), p.1.clone());
        let Value::Arena(a) = a else {
            return Err(mismatch("merge_rec", "an arena", &a));
        };
        bodies_rev.push(a);
        cur = rest;
    }
    bodies_rev.reverse();
    let Value::Pair(gp) = cur else {
        return Err(mismatch("merge_rec", "(value, arena)", &cur));
    };
    let (v, outer) = (gp.0.clone(), gp.1.clone());
    let Value::Arena(outer) = outer else {
        return Err(mismatch("merge_rec", "(value, arena)", &outer));
    };
    let bodies = bodies_rev
        .iter()
        .map(|a| {
            let c = m.freeze(a);
            outer.seg().import_block(&c.seg, c.block)
        })
        .collect();
    outer.push(Instr::RecClos(Rc::new(bodies)));
    m.state.stats.emitted += 1;
    m.state.stack.push(Value::pair(v, Value::Arena(outer)));
    Ok(())
}
