//! Step functions for the environment projections: the CAM's `fst`/`snd`
//! spine walks, the indexed `acc n` access, and the flat-mode `env_cons`
//! frame extension. All of them are total over mixed pair/frame spines —
//! `Value::env_fst`/`env_snd`/`env_acc`/`env_extend` hold the single
//! definition of what a frame denotes.

use super::state::{mismatch, MachineState};
use super::MachineError;
use crate::value::Value;
use std::rc::Rc;

/// `fst`: project the left half of the top pair (or the frame minus its
/// innermost slot).
pub(crate) fn fst(st: &mut MachineState) -> Result<(), MachineError> {
    let v = st.pop("fst")?;
    match v {
        Value::Pair(p) => {
            let a = match Rc::try_unwrap(p) {
                Ok(pair) => pair.0,
                Err(p) => p.0.clone(),
            };
            st.stack.push(a);
        }
        v @ Value::Frame(_) => {
            let a = v.env_fst().expect("frame has a first component");
            st.stack.push(a);
        }
        other => return Err(mismatch("fst", "a pair", &other)),
    }
    Ok(())
}

/// `snd`: project the right half of the top pair (or the frame's
/// innermost slot).
pub(crate) fn snd(st: &mut MachineState) -> Result<(), MachineError> {
    let v = st.pop("snd")?;
    match v {
        Value::Pair(p) => {
            let b = match Rc::try_unwrap(p) {
                Ok(pair) => pair.1,
                Err(p) => p.1.clone(),
            };
            st.stack.push(b);
        }
        v @ Value::Frame(_) => {
            let b = v.env_snd().expect("frame has a second component");
            st.stack.push(b);
        }
        other => return Err(mismatch("snd", "a pair", &other)),
    }
    Ok(())
}

/// `acc n`: fused `fst^n; snd` — one dispatch, one reduction step, and no
/// intermediate spine values pushed. Pair nodes are walked one link per
/// cell; frame nodes (flat environments) answer with a single
/// bounds-checked index.
pub(crate) fn acc(st: &mut MachineState, n: usize) -> Result<(), MachineError> {
    let v = st.pop("acc")?;
    let out = v
        .env_acc(n)
        .ok_or_else(|| mismatch("acc", "an environment spine", &v))?;
    st.stack.push(out);
    Ok(())
}

/// `env_cons`: flat-mode environment extension — like `cons`, but the
/// result is a contiguous frame, appended in place when the environment
/// is uniquely owned, chained otherwise.
pub(crate) fn env_cons(st: &mut MachineState) -> Result<(), MachineError> {
    let v = st.pop("env_cons")?;
    let env = st.pop("env_cons")?;
    st.stack.push(Value::env_extend(env, v));
    Ok(())
}
